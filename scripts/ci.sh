#!/usr/bin/env bash
# CI entrypoint: the exact checks a PR must pass, in fail-fast order.
#
#   scripts/ci.sh                 # full run: lint --deep, shims, tier-1 pytest
#   CI_JOBS=8 scripts/ci.sh       # parallel lint fan-out
#   CI_SKIP_TESTS=1 scripts/ci.sh # lint + shims only (used by the ci.sh test
#                                 # itself, which already runs under pytest)
#
# Documented in README.md; tests/test_flowcheck.py asserts this script
# stays executable and green.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "ci: reprolint (--deep, whole-program flow rules)"
python -m repro.analysis lint --deep --jobs "${CI_JOBS:-4}"

echo "ci: doc + instrumentation shims"
python scripts/check_docs.py
python scripts/check_instrumentation.py

if [ -z "${CI_SKIP_TESTS:-}" ]; then
    echo "ci: tier-1 pytest"
    python -m pytest -x -q

    echo "ci: chaos smoke (one sharded cell under kill/stall/message faults)"
    python -m repro.analysis chaos --quick --events 300 --no-journal --strict
fi

echo "ci: OK"
