#!/usr/bin/env python
"""Documentation lint shim over the reprolint framework.

Historically a standalone regex checker; the checks now live as
AST-based rules in ``repro.check`` (docs/LINTING.md):

* ``module-docstring`` — every module under ``src/repro/`` has a
  module docstring;
* ``doc-links`` — every relative link in the tracked markdown docs
  resolves to an existing file;
* ``package-doc-link`` — every ``src/repro`` package ``__init__``
  docstring names an existing documentation page, so a stale or
  missing doc reference fails tier-1 (docs/KERNELS.md grew out of
  this workflow).

This entry point remains for muscle memory and CI wiring
(``tests/test_docs.py``); it is equivalent to::

    python -m repro.analysis lint \
        --rules module-docstring,doc-links,package-doc-link

Exits non-zero listing each problem on stderr.
"""

from __future__ import annotations

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.check import run_lint  # noqa: E402
from repro.check.builtin_rules import DOCS  # noqa: E402
from repro.check.findings import format_finding  # noqa: E402

RULES = ("module-docstring", "doc-links", "package-doc-link")


def main() -> int:
    report = run_lint(root=ROOT, rules=RULES)
    for finding in report.findings:
        print(format_finding(finding), file=sys.stderr)
    if not report.ok:
        print(f"check_docs: {len(report.errors)} problem(s)",
              file=sys.stderr)
        return 1
    n_modules = sum(1 for _ in (ROOT / "src" / "repro").rglob("*.py"))
    print(f"check_docs: OK ({n_modules} modules, {len(DOCS)} docs)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
