#!/usr/bin/env python
"""Documentation lint: module docstrings + internal markdown links.

Checks two invariants, and is wired into the test run via
``tests/test_docs.py``:

1. every module under ``src/repro/`` has a module docstring;
2. every relative link in the top-level markdown docs (README.md,
   DESIGN.md, EXPERIMENTS.md, docs/RUNNER.md) resolves to an existing
   file.

Usage::

    python scripts/check_docs.py

Exits non-zero listing each problem on stderr.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path
from typing import List

ROOT = Path(__file__).resolve().parent.parent

#: Markdown files whose relative links must resolve.
DOCS = ("README.md", "DESIGN.md", "EXPERIMENTS.md", "docs/RUNNER.md",
        "docs/OBSERVABILITY.md")

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE = re.compile(r"```.*?```", re.DOTALL)
_EXTERNAL = ("http://", "https://", "mailto:", "#")


def check_docstrings() -> List[str]:
    """Every module under src/repro/ must open with a docstring."""
    problems = []
    for path in sorted((ROOT / "src" / "repro").rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        if not ast.get_docstring(tree):
            problems.append(
                f"{path.relative_to(ROOT)}: missing module docstring")
    return problems


def check_links() -> List[str]:
    """Relative markdown links in DOCS must point at existing files."""
    problems = []
    for doc in DOCS:
        path = ROOT / doc
        if not path.exists():
            problems.append(f"{doc}: file missing")
            continue
        # Fenced code blocks can contain bracket/paren sequences that
        # look like links (table output, list comprehensions) — skip.
        text = _FENCE.sub("", path.read_text())
        for match in _LINK.finditer(text):
            target = match.group(1)
            if target.startswith(_EXTERNAL):
                continue
            target = target.split("#", 1)[0]
            if target and not (path.parent / target).exists():
                problems.append(f"{doc}: broken link -> {target}")
    return problems


def main() -> int:
    problems = check_docstrings() + check_links()
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"check_docs: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    n_modules = sum(1 for _ in (ROOT / "src" / "repro").rglob("*.py"))
    print(f"check_docs: OK ({n_modules} modules, {len(DOCS)} docs)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
