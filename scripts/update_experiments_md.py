#!/usr/bin/env python
"""Refresh the ``<!-- MEASURED -->`` section of EXPERIMENTS.md.

Two modes.  The legacy mode inserts the recorded bench_output.txt
summaries, produced by ``pytest benchmarks/ --benchmark-only -s >
bench_output.txt``::

    python scripts/update_experiments_md.py

``--regenerate`` instead recomputes the experiments directly through
the parallel runner (:mod:`repro.runner`, see docs/RUNNER.md) — fanned
out over ``--jobs`` workers and memoized in ``.repro_cache/``, so a
re-run only recomputes cells invalidated by a config or code change::

    python scripts/update_experiments_md.py --regenerate --jobs 4
    python scripts/update_experiments_md.py --regenerate --scale quick \
        --filter fig10 --no-cache

Either way it extracts each experiment's summary block (the lines
between the dashed rule and the ``paper reports:`` marker) and replaces
the ``<!-- MEASURED -->`` section of EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def extract_summaries(bench_text: str) -> str:
    """Pull the per-experiment summary blocks out of the bench log."""
    blocks = []
    pattern = re.compile(r"^== (\w+): (.+) ==$", re.MULTILINE)
    matches = list(pattern.finditer(bench_text))
    for index, match in enumerate(matches):
        end = (matches[index + 1].start()
               if index + 1 < len(matches) else len(bench_text))
        section = bench_text[match.start():end]
        lines = section.splitlines()
        # Keep everything from the last dashed rule to 'paper reports:'.
        rules = [i for i, line in enumerate(lines)
                 if set(line.strip()) == {"-"} and line.strip()]
        try:
            stop = next(i for i, line in enumerate(lines)
                        if line.startswith("paper reports:"))
        except StopIteration:
            stop = len(lines)
        start = rules[-1] + 1 if rules and rules[-1] < stop else 1
        summary = [line.rstrip() for line in lines[start:stop]
                   if line.strip()]
        blocks.append(f"### {match.group(1)} — {match.group(2)}\n\n```\n"
                      + "\n".join(summary) + "\n```\n")
    return "\n".join(blocks)


def regenerate_text(jobs: int, scale_name: str, filters, use_cache: bool,
                    journal_path: str) -> str:
    """Recompute experiments through the runner; return rendered text."""
    sys.path.insert(0, str(ROOT / "src"))
    from repro.analysis import render
    from repro.analysis.__main__ import RUNNERS, SCALES, _invoke
    from repro.runner import ResultCache, RunJournal, Runner

    names = list(RUNNERS)
    if filters:
        names = [name for name in names
                 if any(pattern in name for pattern in filters)]
    runner = Runner(
        jobs=jobs,
        cache=ResultCache() if use_cache else None,
        journal=RunJournal(journal_path) if journal_path else None,
        progress=True,
    )
    scale = SCALES[scale_name]
    return "\n".join(render(_invoke(name, scale, runner)) + "\n"
                     for name in names)


def update_doc(measured: str) -> int:
    doc_path = ROOT / "EXPERIMENTS.md"
    doc = doc_path.read_text()
    marker = "<!-- MEASURED -->"
    if marker not in doc:
        print("EXPERIMENTS.md is missing the MEASURED marker",
              file=sys.stderr)
        return 1
    head, _, tail = doc.partition(marker)
    # Drop any previously inserted content up to the next heading.
    tail_lines = tail.splitlines()
    keep_from = next((i for i, line in enumerate(tail_lines)
                      if line.startswith("## ")), len(tail_lines))
    doc = head + marker + "\n\n" + measured + "\n" + \
        "\n".join(tail_lines[keep_from:]) + "\n"
    doc_path.write_text(doc)
    print(f"EXPERIMENTS.md updated with {measured.count('###')} summaries")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--regenerate", action="store_true",
                        help="recompute via the parallel runner instead of "
                             "reading bench_output.txt")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for --regenerate (default 1)")
    parser.add_argument("--scale", choices=("quick", "default", "full"),
                        default="default",
                        help="problem size for --regenerate")
    parser.add_argument("--filter", action="append", default=[],
                        metavar="PATTERN",
                        help="restrict --regenerate to matching experiments "
                             "(the MEASURED section then holds only those)")
    parser.add_argument("--no-cache", dest="cache", action="store_false",
                        help="bypass .repro_cache/ when regenerating")
    parser.add_argument("--journal", default="runs.jsonl",
                        help="run-journal path for --regenerate "
                             "(default runs.jsonl; '' disables)")
    args = parser.parse_args(argv)

    if args.regenerate:
        text = regenerate_text(args.jobs, args.scale, args.filter,
                               args.cache, args.journal)
    else:
        bench_path = ROOT / "bench_output.txt"
        if not bench_path.exists():
            print("bench_output.txt not found; run the benchmark harness "
                  "first (or use --regenerate)", file=sys.stderr)
            return 1
        text = bench_path.read_text()
    return update_doc(extract_summaries(text))


if __name__ == "__main__":
    sys.exit(main())
