#!/usr/bin/env python
"""Insert the recorded bench_output.txt summaries into EXPERIMENTS.md.

Run after ``pytest benchmarks/ --benchmark-only -s > bench_output.txt``:

    python scripts/update_experiments_md.py

It extracts each experiment's summary block (the lines between the
dashed rule and the ``paper reports:`` marker) and replaces the
``<!-- MEASURED -->`` section of EXPERIMENTS.md.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def extract_summaries(bench_text: str) -> str:
    """Pull the per-experiment summary blocks out of the bench log."""
    blocks = []
    pattern = re.compile(r"^== (\w+): (.+) ==$", re.MULTILINE)
    matches = list(pattern.finditer(bench_text))
    for index, match in enumerate(matches):
        end = (matches[index + 1].start()
               if index + 1 < len(matches) else len(bench_text))
        section = bench_text[match.start():end]
        lines = section.splitlines()
        # Keep everything from the last dashed rule to 'paper reports:'.
        rules = [i for i, line in enumerate(lines)
                 if set(line.strip()) == {"-"} and line.strip()]
        try:
            stop = next(i for i, line in enumerate(lines)
                        if line.startswith("paper reports:"))
        except StopIteration:
            stop = len(lines)
        start = rules[-1] + 1 if rules and rules[-1] < stop else 1
        summary = [line.rstrip() for line in lines[start:stop]
                   if line.strip()]
        blocks.append(f"### {match.group(1)} — {match.group(2)}\n\n```\n"
                      + "\n".join(summary) + "\n```\n")
    return "\n".join(blocks)


def main() -> int:
    bench_path = ROOT / "bench_output.txt"
    doc_path = ROOT / "EXPERIMENTS.md"
    if not bench_path.exists():
        print("bench_output.txt not found; run the benchmark harness first",
              file=sys.stderr)
        return 1
    measured = extract_summaries(bench_path.read_text())
    doc = doc_path.read_text()
    marker = "<!-- MEASURED -->"
    if marker not in doc:
        print("EXPERIMENTS.md is missing the MEASURED marker",
              file=sys.stderr)
        return 1
    head, _, tail = doc.partition(marker)
    # Drop any previously inserted content up to the next heading.
    tail_lines = tail.splitlines()
    keep_from = next((i for i, line in enumerate(tail_lines)
                      if line.startswith("## ")), len(tail_lines))
    doc = head + marker + "\n\n" + measured + "\n" + \
        "\n".join(tail_lines[keep_from:]) + "\n"
    doc_path.write_text(doc)
    print(f"EXPERIMENTS.md updated with {measured.count('###')} summaries")
    return 0


if __name__ == "__main__":
    sys.exit(main())
