#!/usr/bin/env python
"""Instrumentation lint shim over the reprolint framework.

Historically a standalone regex checker; the checks now live as
AST-based rules in ``repro.check`` (docs/LINTING.md):

* ``stats-emit`` — every ``stats.<counter> += ...`` in
  ``src/repro/core/`` has a ``.emit(`` or ``.tick(`` call within a few
  surrounding lines, so trace timelines reconcile with the counters;
* ``emit-registered`` — every event name passed as a string literal to
  ``.emit(`` is registered in ``repro.obs.tracer.EVENT_SOURCES``.

This entry point remains for muscle memory and CI wiring
(``tests/test_instrumentation.py``); it is equivalent to::

    python -m repro.analysis lint --rules stats-emit,emit-registered

Exits non-zero listing each problem on stderr.
"""

from __future__ import annotations

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.check import run_lint  # noqa: E402
from repro.check.findings import format_finding  # noqa: E402
from repro.obs.tracer import EVENT_SOURCES  # noqa: E402

RULES = ("stats-emit", "emit-registered")


def main() -> int:
    report = run_lint(root=ROOT, rules=RULES)
    for finding in report.findings:
        print(format_finding(finding), file=sys.stderr)
    if not report.ok:
        print(f"check_instrumentation: {len(report.errors)} problem(s)",
              file=sys.stderr)
        return 1
    print(f"check_instrumentation: OK ({report.n_files} files, "
          f"{len(EVENT_SOURCES)} known events)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
