#!/usr/bin/env python
"""Instrumentation lint: stats counters must emit trace events.

The observability layer (``repro.obs``, docs/OBSERVABILITY.md) relies
on every ``ControllerStats`` increment in the hot paths having a
matching tracer call, so that trace timelines reconcile exactly with
the aggregate counters.  This lint enforces two invariants over the
``src/repro/core/`` modules, and is wired into the test run via
``tests/test_instrumentation.py``:

1. every ``stats.<counter> += ...`` statement has a ``.emit(`` or
   ``.tick(`` call within a few surrounding lines (``tick`` covers the
   demand counters, which advance the trace clock rather than record
   an event);
2. every event name passed as a string literal to ``.emit(`` is
   registered in ``repro.obs.tracer.EVENT_SOURCES`` — an unregistered
   name would silently drop out of the per-source timeline.

Usage::

    python scripts/check_instrumentation.py

Exits non-zero listing each problem on stderr.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.obs.tracer import EVENT_SOURCES  # noqa: E402

#: Directory whose stats increments must be instrumented.
CORE = ROOT / "src" / "repro" / "core"

#: How many lines around an increment may hold its tracer call.
NEIGHBORHOOD = 4

_INCREMENT = re.compile(r"\bstats\.(\w+)\s*\+=")
_TRACER_CALL = re.compile(r"\.(emit|tick)\(")
_EMIT_NAME = re.compile(r"\.emit\(\s*[\"']([a-z_]+)[\"']")


def check_increments() -> List[str]:
    """Every stats increment needs a nearby emit/tick."""
    problems = []
    for path in sorted(CORE.glob("*.py")):
        lines = path.read_text().splitlines()
        for number, line in enumerate(lines, start=1):
            match = _INCREMENT.search(line)
            if not match:
                continue
            low = max(0, number - 1 - NEIGHBORHOOD)
            high = min(len(lines), number + NEIGHBORHOOD)
            window = "\n".join(lines[low:high])
            if not _TRACER_CALL.search(window):
                problems.append(
                    f"{path.relative_to(ROOT)}:{number}: "
                    f"stats.{match.group(1)} += has no tracer emit/tick "
                    f"within {NEIGHBORHOOD} lines")
    return problems


def check_event_names() -> List[str]:
    """Every emitted string-literal event name must be registered."""
    problems = []
    for path in sorted(CORE.glob("*.py")):
        for number, line in enumerate(
                path.read_text().splitlines(), start=1):
            for match in _EMIT_NAME.finditer(line):
                name = match.group(1)
                if name not in EVENT_SOURCES:
                    problems.append(
                        f"{path.relative_to(ROOT)}:{number}: "
                        f"emit({name!r}) is not registered in "
                        f"repro.obs.tracer.EVENT_SOURCES")
    return problems


def main() -> int:
    problems = check_increments() + check_event_names()
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"check_instrumentation: {len(problems)} problem(s)",
              file=sys.stderr)
        return 1
    n_increments = sum(
        len(_INCREMENT.findall(path.read_text()))
        for path in CORE.glob("*.py"))
    n_names = sum(
        len(_EMIT_NAME.findall(path.read_text()))
        for path in CORE.glob("*.py"))
    print(f"check_instrumentation: OK ({n_increments} stats increments, "
          f"{n_names} emit sites, {len(EVENT_SOURCES)} known events)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
