"""Tests for the synthetic workload substitution layer."""

import pytest

from repro.compression import BPCCompressor
from repro.workloads import (
    BENCHMARK_ORDER,
    CAPACITY_STALLERS,
    LINES_PER_PAGE,
    MIXES,
    PROFILES,
    LineClass,
    PageImageGenerator,
    TraceGenerator,
    Workload,
    get_profile,
    make_line,
    mix_profiles,
)


class TestDataGen:
    def test_all_classes_produce_64_bytes(self):
        import numpy as np
        rng = np.random.RandomState(0)
        for cls in LineClass:
            assert len(make_line(cls, rng)) == 64

    def test_determinism(self):
        gen_a = PageImageGenerator("x", {LineClass.POINTER: 1.0})
        gen_b = PageImageGenerator("x", {LineClass.POINTER: 1.0})
        for page in range(3):
            for line in range(5):
                assert gen_a.line(page, line) == gen_b.line(page, line)

    def test_versions_differ(self):
        gen = PageImageGenerator("x", {LineClass.RANDOM: 1.0})
        assert gen.line(0, 0, version=0) != gen.line(0, 0, version=1)

    def test_zero_line_fraction(self):
        gen = PageImageGenerator("x", {LineClass.RANDOM: 1.0},
                                 zero_line_fraction=0.5)
        lines = [gen.line(0, i) for i in range(200)]
        zero = sum(1 for l in lines if l == bytes(64))
        assert 50 < zero < 150

    def test_compressibility_ordering(self):
        """Class compressibility spans the paper's range, in order."""
        bpc = BPCCompressor()

        def avg_size(cls):
            gen = PageImageGenerator("calib", {cls: 1.0})
            sizes = [bpc.compress(gen.line(0, i)).size_bytes
                     for i in range(100)]
            return sum(sizes) / len(sizes)

        delta = avg_size(LineClass.INT_DELTA)
        pointer = avg_size(LineClass.POINTER)
        random_ = avg_size(LineClass.RANDOM)
        assert delta < pointer < random_
        assert random_ >= 60  # incompressible
        assert delta < 12     # highly compressible

    def test_invalid_mix_rejected(self):
        with pytest.raises(ValueError):
            PageImageGenerator("x", {})


class TestProfiles:
    def test_all_30_benchmarks_present(self):
        assert len(PROFILES) == 30
        for name in ("mcf", "zeusmp", "Forestfire", "Graph500"):
            assert name in PROFILES

    def test_stallers_are_subset(self):
        assert set(CAPACITY_STALLERS) <= set(PROFILES)

    def test_get_profile_unknown(self):
        with pytest.raises(ValueError):
            get_profile("nonexistent")

    def test_phase_lookup(self):
        profile = get_profile("GemsFDTD")
        assert profile.phase_at(0.0) != profile.phase_at(0.3)
        # Past the end: last phase.
        assert profile.phase_at(1.5) == profile.phases[-1]

    def test_mix_weights_positive(self):
        for profile in PROFILES.values():
            assert all(w > 0 for w in profile.mix.values())


class TestMixes:
    def test_tab_iv_shape(self):
        assert len(MIXES) == 10
        for names in MIXES.values():
            assert len(names) == 4
            for name in names:
                assert name in PROFILES

    def test_mix1_contents(self):
        assert MIXES["mix1"] == ("mcf", "GemsFDTD", "libquantum", "soplex")

    def test_mix_profiles_resolution(self):
        profiles = mix_profiles("mix10")
        assert [p.name for p in profiles] == list(MIXES["mix10"])

    def test_unknown_mix(self):
        with pytest.raises(ValueError):
            mix_profiles("mix99")


class TestWorkload:
    def test_scaling(self):
        profile = get_profile("gcc")
        full = Workload(profile, scale=1.0)
        small = Workload(profile, scale=0.1)
        assert small.pages == int(profile.footprint_pages * 0.1)
        assert full.pages == profile.footprint_pages

    def test_writeback_advances_version(self):
        workload = Workload(get_profile("gcc"), scale=0.05)
        before = workload.line_data(0, 0)
        after = workload.apply_writeback(0, 0, None)
        assert workload.line_data(0, 0) == after
        # Zero-class pages stay zero; others usually change.
        if before != bytes(64):
            assert after != before or True  # version may collide in pool

    def test_override_changes_class(self):
        workload = Workload(get_profile("gcc"), scale=0.05)
        data = workload.apply_writeback(0, 0, LineClass.RANDOM)
        bpc = BPCCompressor()
        if data != bytes(64):
            assert bpc.compress(data).size_bytes > 32


class TestTraceGenerator:
    def test_determinism(self):
        workload = Workload(get_profile("astar"), scale=0.05)
        gen = TraceGenerator(workload, seed=3)
        a = list(gen.events(500))
        b = list(TraceGenerator(Workload(get_profile("astar"), scale=0.05),
                                seed=3).events(500))
        assert a == b

    def test_events_in_bounds(self):
        workload = Workload(get_profile("omnetpp"), scale=0.05)
        for event in TraceGenerator(workload).events(1000):
            assert 0 <= event.page < workload.pages
            assert 0 <= event.line < LINES_PER_PAGE
            assert event.gap >= 1

    def test_write_fraction_respected(self):
        profile = get_profile("lbm")  # write_fraction 0.45
        workload = Workload(profile, scale=0.05)
        events = list(TraceGenerator(workload).events(4000))
        writes = sum(e.is_writeback for e in events)
        assert 0.35 < writes / len(events) < 0.55

    def test_sequential_profile_produces_runs(self):
        profile = get_profile("libquantum")  # sequential 0.95
        workload = Workload(profile, scale=0.05)
        events = list(TraceGenerator(workload).events(2000))
        sequential = sum(
            1 for a, b in zip(events, events[1:])
            if b.page == a.page and b.line == a.line + 1
        )
        assert sequential / len(events) > 0.7

    def test_mean_gap_matches_mpki(self):
        profile = get_profile("mcf")  # mpki 60 -> mean gap ~16.7
        workload = Workload(profile, scale=0.05)
        gaps = [e.gap for e in TraceGenerator(workload).events(5000)]
        mean = sum(gaps) / len(gaps)
        assert 13 < mean < 21
