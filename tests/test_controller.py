"""Integration tests for the compressed-memory controller (§III–§V)."""

import struct

import pytest

from repro.core import (
    CompressedMemoryController,
    compresso_config,
    lcp_align_config,
    lcp_config,
)
from repro.memory import AccessCategory, AccessKind, MemoryGeometry


def make_controller(config=None, installed_mb=32):
    geometry = MemoryGeometry(installed_bytes=installed_mb * 1024 * 1024)
    return CompressedMemoryController(config or compresso_config(), geometry)


def int_line(seed: int) -> bytes:
    """A compressible line (small deltas)."""
    return struct.pack("<16I", *[(seed * 97 + i) & 0xFFFFFFFF for i in range(16)])


def random_line(seed: int) -> bytes:
    """An incompressible line."""
    import random
    rng = random.Random(seed)
    return bytes(rng.getrandbits(8) for _ in range(64))


class TestReadWriteBasics:
    def test_read_of_untouched_page_is_zero(self):
        ctrl = make_controller()
        result = ctrl.read_line(5, 10)
        assert result.data == bytes(64)
        assert result.served_by_metadata
        assert not result.accesses or all(
            a.category is AccessCategory.METADATA for a in result.accesses
        )

    def test_write_then_read_roundtrip(self):
        ctrl = make_controller()
        data = int_line(3)
        ctrl.write_line(7, 12, data)
        assert ctrl.read_line(7, 12).data == data

    def test_all_lines_roundtrip(self):
        ctrl = make_controller()
        lines = [int_line(i) if i % 3 else random_line(i) for i in range(64)]
        for i, line in enumerate(lines):
            ctrl.write_line(2, i, line)
        for i, line in enumerate(lines):
            assert ctrl.read_line(2, i).data == line

    def test_overwrite_changes_data(self):
        ctrl = make_controller()
        ctrl.write_line(1, 1, int_line(1))
        ctrl.write_line(1, 1, random_line(1))
        assert ctrl.read_line(1, 1).data == random_line(1)

    def test_address_bounds(self):
        ctrl = make_controller()
        with pytest.raises(ValueError):
            ctrl.read_line(-1, 0)
        with pytest.raises(ValueError):
            ctrl.read_line(0, 64)
        with pytest.raises(ValueError):
            ctrl.write_line(10**9, 0, bytes(64))

    def test_wrong_line_size_rejected(self):
        ctrl = make_controller()
        with pytest.raises(ValueError):
            ctrl.write_line(0, 0, bytes(32))


class TestZeroHandling:
    def test_zero_write_to_zero_page_is_free(self):
        ctrl = make_controller()
        result = ctrl.write_line(3, 5, bytes(64))
        assert result.served_by_metadata
        assert ctrl.stats.zero_line_writes == 1
        assert ctrl.used_bytes() == 0  # page stays unmapped

    def test_zero_read_costs_nothing(self):
        ctrl = make_controller()
        ctrl.read_line(4, 0)
        assert ctrl.stats.zero_line_reads == 1

    def test_zero_page_has_no_allocation(self):
        ctrl = make_controller()
        for line in range(64):
            ctrl.write_line(9, line, bytes(64))
        assert ctrl.used_bytes() == 0

    def test_first_nonzero_write_allocates_min_512(self):
        ctrl = make_controller()
        ctrl.write_line(0, 0, int_line(1))
        assert ctrl.used_bytes() == 512


class TestCompressionRatio:
    def test_compressible_pages_use_fewer_chunks(self):
        ctrl = make_controller()
        for page in range(8):
            for line in range(64):
                ctrl.write_line(page, line, int_line(page * 64 + line))
        assert ctrl.compression_ratio() > 2.0

    def test_incompressible_pages_stay_near_one(self):
        ctrl = make_controller()
        for page in range(4):
            for line in range(64):
                ctrl.write_line(page, line, random_line(page * 64 + line))
        assert ctrl.compression_ratio() <= 1.1


class TestInstallPage:
    def test_install_matches_write_content(self):
        ctrl = make_controller()
        lines = [int_line(i) for i in range(64)]
        ctrl.install_page(11, lines)
        for i, line in enumerate(lines):
            assert ctrl.read_line(11, i).data == line

    def test_install_counts_no_stats(self):
        ctrl = make_controller()
        ctrl.install_page(11, [int_line(i) for i in range(64)])
        assert ctrl.stats.demand_writes == 0

    def test_install_zero_page_stays_unmapped(self):
        ctrl = make_controller()
        ctrl.install_page(11, [bytes(64)] * 64)
        assert ctrl.used_bytes() == 0

    def test_double_install_rejected(self):
        ctrl = make_controller()
        ctrl.install_page(11, [int_line(i) for i in range(64)])
        with pytest.raises(ValueError):
            ctrl.install_page(11, [int_line(i) for i in range(64)])

    def test_incompressible_page_installs_uncompressed(self):
        ctrl = make_controller()
        ctrl.install_page(11, [random_line(i) for i in range(64)])
        assert not ctrl.pages[11].meta.compressed
        assert ctrl.pages[11].meta.size_chunks == 8


class TestLineOverflow:
    def test_overflow_goes_to_inflation_room(self):
        ctrl = make_controller()
        ctrl.install_page(0, [int_line(i) for i in range(64)])
        before = ctrl.stats.line_overflows
        ctrl.write_line(0, 5, random_line(5))
        assert ctrl.stats.line_overflows == before + 1
        assert 5 in ctrl.pages[0].meta.inflated_lines
        assert ctrl.read_line(0, 5).data == random_line(5)

    def test_inflated_line_rewrite_is_cheap(self):
        ctrl = make_controller()
        ctrl.install_page(0, [int_line(i) for i in range(64)])
        ctrl.write_line(0, 5, random_line(5))
        overflows = ctrl.stats.line_overflows
        ctrl.write_line(0, 5, random_line(99))
        assert ctrl.stats.line_overflows == overflows  # no new overflow

    def test_ir_expansion_allocates_chunk(self):
        config = compresso_config()
        ctrl = make_controller(config)
        # A page full of 8-byte lines packs into exactly one chunk with
        # zero slack, so the first overflow must expand the IR.
        ctrl.install_page(0, [int_line(i) for i in range(64)])
        chunks_before = ctrl.pages[0].meta.size_chunks
        ctrl.write_line(0, 9, random_line(9))
        assert ctrl.pages[0].meta.size_chunks >= chunks_before

    def test_ir_expansion_disabled_forces_recompress(self):
        config = compresso_config(enable_ir_expansion=False)
        ctrl = make_controller(config)
        ctrl.install_page(0, [int_line(i) for i in range(64)])
        # Fill beyond what the slack IR can take; expect recompression
        # (overflow accesses) rather than chunk-by-chunk IR growth.
        for line in range(20):
            ctrl.write_line(0, line, random_line(line))
        assert ctrl.stats.overflow_accesses > 0

    def test_inflation_pointer_cap_respected(self):
        ctrl = make_controller()
        ctrl.install_page(0, [int_line(i) for i in range(64)])
        for line in range(30):
            ctrl.write_line(0, line, random_line(line))
        meta = ctrl.pages[0].meta
        assert len(meta.inflated_lines) <= 17
        meta.check(ctrl.config)


class TestPredictorIntegration:
    def test_streaming_incompressible_inflates_pages(self):
        ctrl = make_controller()
        for page in range(12):
            ctrl.install_page(page, [int_line(i) for i in range(64)])
        # Stream random data over everything: pages overflow, the global
        # counter heats up, and later pages get predicted uncompressed.
        for page in range(12):
            for line in range(64):
                ctrl.write_line(page, line, random_line(page * 64 + line))
        assert ctrl.stats.predictor_inflations > 0

    def test_disabled_predictor_never_inflates(self):
        config = compresso_config(enable_overflow_prediction=False)
        ctrl = make_controller(config)
        for page in range(12):
            ctrl.install_page(page, [int_line(i) for i in range(64)])
        for page in range(12):
            for line in range(64):
                ctrl.write_line(page, line, random_line(page * 64 + line))
        assert ctrl.stats.predictor_inflations == 0


class TestRepacking:
    def test_eviction_repacks_compressible_page(self):
        ctrl = make_controller()
        ctrl.install_page(0, [random_line(i) for i in range(64)])
        assert ctrl.pages[0].meta.size_chunks == 8
        # Data becomes compressible again.
        for line in range(64):
            ctrl.write_line(0, line, int_line(line))
        ctrl.flush_metadata()  # eviction triggers the repack check
        assert ctrl.pages[0].meta.size_chunks < 8
        assert ctrl.stats.repack_events >= 1
        for line in range(0, 64, 7):
            assert ctrl.read_line(0, line).data == int_line(line)

    def test_repack_frees_all_zero_page(self):
        ctrl = make_controller()
        ctrl.install_page(0, [int_line(i) for i in range(64)])
        for line in range(64):
            ctrl.write_line(0, line, bytes(64))
        ctrl.flush_metadata()
        assert ctrl.pages[0].meta.zero
        assert ctrl.pages[0].meta.size_chunks == 0

    def test_repack_disabled_squanders_space(self):
        config = compresso_config(enable_repacking=False)
        ctrl = make_controller(config)
        ctrl.install_page(0, [random_line(i) for i in range(64)])
        for line in range(64):
            ctrl.write_line(0, line, int_line(line))
        ctrl.flush_metadata()
        assert ctrl.pages[0].meta.size_chunks == 8  # still bloated
        assert ctrl.stats.repack_events == 0

    def test_repack_only_when_chunk_reclaimable(self):
        ctrl = make_controller()
        lines = [int_line(i) for i in range(64)]
        ctrl.install_page(0, lines)
        chunks = ctrl.pages[0].meta.size_chunks
        ctrl.flush_metadata()  # nothing changed: no repack
        assert ctrl.stats.repack_events == 0
        assert ctrl.pages[0].meta.size_chunks == chunks


class TestMetadataTraffic:
    def test_metadata_miss_costs_one_access(self):
        ctrl = make_controller()
        ctrl.write_line(0, 0, int_line(0))
        misses_before = ctrl.stats.metadata_misses
        far_page = 4000  # maps to a different set / not resident
        result = ctrl.read_line(far_page, 0)
        assert ctrl.stats.metadata_misses == misses_before + 1

    def test_metadata_hit_after_access(self):
        ctrl = make_controller()
        ctrl.read_line(123, 0)
        hits_before = ctrl.stats.metadata_hits
        ctrl.read_line(123, 1)
        assert ctrl.stats.metadata_hits == hits_before + 1


class TestLCPSystems:
    @pytest.mark.parametrize("config_factory", [lcp_config, lcp_align_config])
    def test_roundtrip(self, config_factory):
        ctrl = make_controller(config_factory())
        lines = [int_line(i) if i % 4 else random_line(i) for i in range(64)]
        for i, line in enumerate(lines):
            ctrl.write_line(0, i, line)
        for i, line in enumerate(lines):
            assert ctrl.read_line(0, i).data == line

    def test_page_overflow_raises_os_fault(self):
        ctrl = make_controller(lcp_config())
        ctrl.install_page(0, [int_line(i) for i in range(64)])
        for line in range(64):
            ctrl.write_line(0, line, random_line(line))
        assert ctrl.stats.page_overflows > 0
        assert ctrl.stats.os_page_faults == ctrl.stats.page_overflows

    def test_compresso_never_takes_os_faults(self):
        ctrl = make_controller()
        ctrl.install_page(0, [int_line(i) for i in range(64)])
        for line in range(64):
            ctrl.write_line(0, line, random_line(line))
        assert ctrl.stats.os_page_faults == 0


class TestSplitAccesses:
    def test_no_splits_for_uncompressed_pages(self):
        ctrl = make_controller()
        ctrl.install_page(0, [random_line(i) for i in range(64)])
        before = ctrl.stats.split_accesses
        for line in range(64):
            ctrl.read_line(0, line)
        assert ctrl.stats.split_accesses == before

    def test_prior_bins_split_more(self):
        """0/22/44/64 bins straddle 64 B boundaries (§IV-B1)."""
        aligned = make_controller(compresso_config())
        from repro.core.config import PRIOR_WORK_LINE_BINS
        prior = make_controller(
            compresso_config(line_bins=PRIOR_WORK_LINE_BINS)
        )
        lines = [struct.pack("<16I", *[i * 7 + j * 1000 + (1 << 20)
                                       for j in range(16)])
                 for i in range(64)]
        for ctrl in (aligned, prior):
            ctrl.install_page(0, lines)
            for line in range(64):
                ctrl.read_line(0, line)
        assert prior.stats.split_accesses > aligned.stats.split_accesses


class TestConservation:
    def test_chunk_accounting_after_churn(self):
        """Allocator accounting stays exact through heavy churn."""
        ctrl = make_controller()
        import random
        rng = random.Random(0)
        for _ in range(800):
            page = rng.randrange(16)
            line = rng.randrange(64)
            if rng.random() < 0.3:
                ctrl.write_line(page, line, bytes(64))
            elif rng.random() < 0.6:
                ctrl.write_line(page, line, int_line(rng.randrange(1000)))
            else:
                ctrl.write_line(page, line, random_line(rng.randrange(1000)))
        ctrl.flush_metadata()
        allocator = ctrl.memory.allocator
        assert allocator.used_chunks + allocator.free_chunks == allocator.total_chunks
        expected = sum(
            state.meta.size_chunks for state in ctrl.pages.values()
        )
        assert allocator.used_chunks == expected

    def test_metadata_invariants_after_churn(self):
        ctrl = make_controller()
        import random
        rng = random.Random(1)
        for _ in range(500):
            page = rng.randrange(8)
            line = rng.randrange(64)
            data = (int_line(rng.randrange(100)) if rng.random() < 0.5
                    else random_line(rng.randrange(100)))
            ctrl.write_line(page, line, data)
        for state in ctrl.pages.values():
            state.meta.check(ctrl.config)

    def test_layout_fits_allocation_after_churn(self):
        ctrl = make_controller()
        import random
        rng = random.Random(2)
        for _ in range(500):
            ctrl.write_line(rng.randrange(8), rng.randrange(64),
                            random_line(rng.randrange(50))
                            if rng.random() < 0.5
                            else int_line(rng.randrange(50)))
        for state in ctrl.pages.values():
            if state.meta.valid and state.meta.compressed:
                layout = ctrl._layout(state)
                assert layout.total_bytes <= state.allocation_bytes


class TestFreePage:
    def test_free_releases_storage(self):
        ctrl = make_controller()
        ctrl.install_page(3, [random_line(i) for i in range(64)])
        assert ctrl.used_bytes() > 0
        ctrl.free_page(3)
        assert ctrl.used_bytes() == 0
        assert ctrl.read_line(3, 0).data == bytes(64)
