"""Tests for the cross-run results index, stats and compare gate.

Covers the docs/RESULTS.md contract: idempotent SQLite ingestion of
journals and bench trajectories, the dependency-free statistics
against known distributions, and the ``analysis compare`` exit-code
gate — including the tier-1 smoke check (fixture-journal ingest plus
self-compare) the acceptance criteria call for.
"""

import json
import math

import pytest

from repro.analysis.__main__ import main as analysis_main
from repro.results import (
    Comparison,
    METRIC_DIRECTIONS,
    ResultsIndex,
    bootstrap_ci,
    compare_runs,
    flatten_metrics,
    mann_whitney,
    mean,
    metric_direction,
    min_achievable_p,
    permutation_test,
    render_comparison,
    significance,
    stddev,
    welch_t,
)
from repro.runner import RunJournal

#: Two clearly separated samples (used by every significance test).
LOW = [10.0, 10.5, 9.5, 10.2, 9.8]
HIGH = [20.0, 20.5, 19.5, 20.2, 19.8]


def _write_journal(path, run_id, ratios, extra=100, experiment="fig4",
                   unit="fig4/gcc", base_seed=42):
    """Journal one multi-seed run; ``ratios[i]`` is seed i's ratio."""
    journal = RunJournal(path, run_id=run_id)
    journal.event("run_start", jobs=1, cache_enabled=True,
                  seeds=len(ratios), base_seed=base_seed)
    for offset, ratio in enumerate(ratios):
        seed = base_seed + offset
        journal.event("unit_start", unit=unit, experiment=experiment,
                      key=f"k{offset}", cached=False, seed=seed)
        journal.event("unit_end", unit=unit, experiment=experiment,
                      key=f"k{offset}", cached=False, wall_s=0.1,
                      ok=True, seed=seed,
                      stats={"compression_ratio": ratio,
                             "extra_accesses": extra + offset},
                      sanitizer={"violations": 0})
    journal.event("run_end", wall_s=1.0, units=len(ratios), cache_hits=0)
    return path


def _write_bench(path, generated="2026-08-08T00:00:00Z", speed=1e6):
    from repro.analysis.bench import BENCH_SCHEMA
    doc = {
        "schema": BENCH_SCHEMA, "generated": generated, "lines": 4096,
        "seed": 42,
        "algorithms": {
            "bdi": {"scalar_lines_per_s": speed / 14,
                    "vector_lines_per_s": speed, "speedup": 14.0,
                    "match": True},
        },
    }
    path.write_text(json.dumps(doc))
    return path


# ---------------------------------------------------------------------------
# statistics vs known distributions
# ---------------------------------------------------------------------------

class TestStats:
    def test_moments(self):
        assert mean([1, 2, 3, 4]) == 2.5
        assert mean([]) == 0.0
        assert stddev([2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(
            math.sqrt(32 / 7))
        assert stddev([5]) == 0.0

    def test_bootstrap_ci_brackets_the_mean(self):
        lo, hi = bootstrap_ci(LOW, seed=1)
        assert lo <= mean(LOW) <= hi
        assert hi - lo < 1.0            # tight sample, tight interval
        assert bootstrap_ci(LOW, seed=1) == bootstrap_ci(LOW, seed=1)
        assert bootstrap_ci([7.0]) == (7.0, 7.0)
        with pytest.raises(ValueError):
            bootstrap_ci(LOW, confidence=1.5)

    def test_welch_t_known_value(self):
        t, df = welch_t(LOW, HIGH)
        # Separation of ~10 with stddev ~0.4: |t| is enormous.
        assert t < -30
        assert 0 < df <= len(LOW) + len(HIGH) - 2
        assert welch_t([1.0], [2.0, 3.0]) == (0.0, 0.0)
        assert welch_t([5.0, 5.0], [5.0, 5.0]) == (0.0, 0.0)

    def test_permutation_exact_separated(self):
        # n=5+5 <= 12 -> exact: only the observed split (and mirror)
        # reaches the observed difference, p = 2/C(10,5).
        p = permutation_test(LOW, HIGH)
        assert p == pytest.approx(2 / 252)

    def test_permutation_identical_groups(self):
        assert permutation_test([3.0, 3.0, 3.0], [3.0, 3.0, 3.0]) == 1.0
        assert permutation_test([1.0], [2.0, 3.0]) == 1.0

    def test_permutation_sampled_path(self):
        # 7+7 > 12 -> seeded Monte-Carlo; deterministic and small.
        a, b = LOW + [10.1, 9.9], HIGH + [20.1, 19.9]
        p1 = permutation_test(a, b, n_resamples=500, seed=3)
        p2 = permutation_test(a, b, n_resamples=500, seed=3)
        assert p1 == p2
        assert p1 <= 0.01               # +1/+1-corrected floor
        assert p1 >= 1 / 501

    def test_min_achievable_p_floor(self):
        assert min_achievable_p(1, 5) == 1.0
        assert min_achievable_p(5, 0) == 1.0
        assert min_achievable_p(2, 2) == pytest.approx(2 / 6)
        assert min_achievable_p(3, 3) == pytest.approx(2 / 20)
        assert min_achievable_p(5, 5) == pytest.approx(2 / 252)
        # The exact permutation test actually attains the floor.
        assert permutation_test([1.0, 1.1], [9.0, 9.1]) == \
            pytest.approx(min_achievable_p(2, 2))

    def test_mann_whitney_known_values(self):
        u, p = mann_whitney(LOW, HIGH)
        assert u == 0.0                 # complete separation
        assert p < 0.02
        _, p_same = mann_whitney([1.0, 2.0, 3.0], [1.0, 2.0, 3.0])
        assert p_same > 0.9
        _, p_tiny = mann_whitney([1.0], [2.0])
        assert p_tiny == 1.0
        _, p_ties = mann_whitney([5.0, 5.0], [5.0, 5.0])
        assert p_ties == 1.0            # zero variance -> no evidence

    def test_significance_verdicts(self):
        verdict = significance(LOW, HIGH)
        assert verdict.significant and verdict.test == "permutation"
        assert verdict.diff == pytest.approx(10.0, abs=0.2)
        assert verdict.relative == pytest.approx(1.0, abs=0.05)
        single = significance([1.0], [2.0])
        assert not single.significant and single.test == "none"
        assert single.p_value == 1.0
        ranked = significance(LOW, HIGH, method="mann-whitney")
        assert ranked.significant and ranked.test == "mann-whitney"
        with pytest.raises(ValueError):
            significance(LOW, HIGH, method="t-test")


# ---------------------------------------------------------------------------
# index: ingestion, idempotency, queries
# ---------------------------------------------------------------------------

class TestIndex:
    def test_flatten_metrics(self):
        digest = {"a": 1, "b": 2.5, "skip": True, "null": None,
                  "nested": {"x": 3}, "text": "no"}
        assert dict(flatten_metrics(digest)) == {
            "a": 1.0, "b": 2.5, "nested.x": 3.0}

    def test_journal_ingest_and_reingest_is_idempotent(self, tmp_path):
        journal = _write_journal(tmp_path / "runs.jsonl", "runone00",
                                 [1.5, 1.51, 1.52])
        with ResultsIndex(tmp_path / "idx.sqlite") as index:
            first = index.ingest_journal(journal)
            assert first["runs"] == 1
            assert first["units"] == 3
            assert first["metrics"] == 9   # 3 seeds x (2 stats + violations)
            assert first["skipped"] == 0
            second = index.ingest_journal(journal)
            assert {k: v for k, v in second.items() if k != "skipped"} \
                == {"runs": 0, "units": 0, "metrics": 0, "bench": 0}

    def test_invalid_records_are_skipped_not_half_ingested(self, tmp_path):
        path = _write_journal(tmp_path / "runs.jsonl", "runone00", [1.5])
        with path.open("a") as handle:
            handle.write(json.dumps({"event": "unit_end",
                                     "run_id": "runone00", "ts": 1.0,
                                     "unit": "bad", "experiment": "e",
                                     "key": None, "cached": False,
                                     "wall_s": 0.1, "ok": True,
                                     "stats": {"x": "not a number"}})
                         + "\n")
            handle.write("{torn line\n")
        with ResultsIndex(tmp_path / "idx.sqlite") as index:
            inserted = index.ingest_journal(path)
            assert inserted["skipped"] == 1
            assert [u["unit"] for u in index.units_for("runone00")] \
                == ["fig4/gcc"]

    def test_run_row_merges_start_and_end(self, tmp_path):
        journal = _write_journal(tmp_path / "runs.jsonl", "runone00",
                                 [1.5, 1.6])
        with ResultsIndex(tmp_path / "idx.sqlite") as index:
            index.ingest_journal(journal)
            (row,) = index.runs()
            assert row["seeds"] == 2 and row["base_seed"] == 42
            assert row["units"] == 2 and row["finished"] is not None

    def test_bench_ingest_idempotent_and_mirrored(self, tmp_path):
        bench = _write_bench(tmp_path / "BENCH_kernels.json")
        with ResultsIndex(tmp_path / "idx.sqlite") as index:
            first = index.ingest_bench_file(bench)
            assert first["bench"] == 1 and first["runs"] == 1
            assert first["metrics"] > 0
            second = index.ingest_bench_file(bench)
            assert second == {"runs": 0, "units": 0, "metrics": 0,
                              "bench": 0}
            history = index.bench_history("bdi")
            assert len(history) == 1
            assert history[0]["speedup"] == 14.0
            # Mirrored as a synthetic run the compare gate can use.
            samples = index.metric_samples(
                index.resolve_run("bench:"))
            assert ("kernels/bdi", "speedup") in samples

    def test_bench_rejects_foreign_documents(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"schema": "something-else"}))
        with ResultsIndex(tmp_path / "idx.sqlite") as index:
            with pytest.raises(ValueError):
                index.ingest_bench_file(path)

    def test_resolve_run_prefix(self, tmp_path):
        journal = tmp_path / "runs.jsonl"
        _write_journal(journal, "abcdef000001", [1.5])
        _write_journal(journal, "abzzzz000002", [1.5])
        with ResultsIndex(tmp_path / "idx.sqlite") as index:
            index.ingest_journal(journal)
            assert index.resolve_run("abc") == "abcdef000001"
            with pytest.raises(KeyError, match="ambiguous"):
                index.resolve_run("ab")
            with pytest.raises(KeyError, match="no indexed run"):
                index.resolve_run("zzz")

    def test_metric_samples_grouped_across_seeds(self, tmp_path):
        journal = _write_journal(tmp_path / "runs.jsonl", "runone00",
                                 [1.5, 1.6, 1.7])
        with ResultsIndex(tmp_path / "idx.sqlite") as index:
            index.ingest_journal(journal)
            samples = index.metric_samples("runone00")
            assert samples[("fig4/gcc", "compression_ratio")] \
                == [1.5, 1.6, 1.7]
            only = index.metric_samples("runone00",
                                        ["compression_ratio"])
            assert set(only) == {("fig4/gcc", "compression_ratio")}


# ---------------------------------------------------------------------------
# compare: directions, verdicts, gate
# ---------------------------------------------------------------------------

class TestCompare:
    def _indexed(self, tmp_path, a_ratios, b_ratios, **kwargs):
        journal = tmp_path / "runs.jsonl"
        _write_journal(journal, "baseline0001", a_ratios)
        _write_journal(journal, "candidate001", b_ratios, **kwargs)
        index = ResultsIndex(tmp_path / "idx.sqlite")
        index.ingest_journal(journal)
        return index

    def test_directions(self):
        assert metric_direction("compression_ratio") == "higher"
        assert metric_direction("extra_accesses") == "lower"
        assert metric_direction("timeline.by_source.split") == "lower"
        assert metric_direction("wall_s") is None
        assert set(METRIC_DIRECTIONS.values()) == {"higher", "lower"}

    def test_significant_drop_is_a_regression(self, tmp_path):
        with self._indexed(tmp_path, [1.50, 1.51, 1.52, 1.53, 1.54],
                           [1.20, 1.21, 1.22, 1.23, 1.24]) as index:
            comparison = compare_runs(index, "baseline", "candidate")
            regressed = {v.metric for v in comparison.regressions}
            assert "compression_ratio" in regressed
            text = render_comparison(comparison)
            assert "REGRESSION" in text

    def test_self_compare_is_clean(self, tmp_path):
        with self._indexed(tmp_path, [1.5, 1.51, 1.52],
                           [1.5, 1.51, 1.52]) as index:
            comparison = compare_runs(index, "baseline", "baseline")
            assert comparison.regressions == []
            assert "VERDICT: ok" in render_comparison(comparison)

    def test_improvement_direction(self, tmp_path):
        with self._indexed(tmp_path, [1.20, 1.21, 1.22, 1.23, 1.24],
                           [1.50, 1.51, 1.52, 1.53, 1.54]) as index:
            comparison = compare_runs(index, "baseline", "candidate")
            assert comparison.regressions == []
            improved = {v.metric for v in comparison.improvements}
            assert "compression_ratio" in improved

    def test_small_drift_below_min_effect_passes(self, tmp_path):
        # Statistically clean separation but only ~0.3% relative.
        with self._indexed(tmp_path,
                           [1.5000, 1.5001, 1.5002, 1.5003, 1.5004],
                           [1.4950, 1.4951, 1.4952, 1.4953, 1.4954]
                           ) as index:
            comparison = compare_runs(index, "baseline", "candidate",
                                      min_effect=0.01)
            assert comparison.regressions == []

    def test_single_seed_threshold_fallback(self, tmp_path):
        with self._indexed(tmp_path, [1.5], [1.2]) as index:
            comparison = compare_runs(index, "baseline", "candidate")
            (verdict,) = [v for v in comparison.regressions
                          if v.metric == "compression_ratio"]
            assert verdict.stats.test == "threshold"
            small = compare_runs(index, "baseline", "candidate",
                                 single_sample_effect=0.5)
            assert not any(v.metric == "compression_ratio"
                           for v in small.regressions)

    def test_powerless_two_seed_gate_falls_back_to_threshold(
            self, tmp_path):
        # At 2 seeds/side the exact permutation floor is 0.333 > alpha,
        # so a 20% drop must gate via the threshold fallback, not pass
        # as "worse (n.s.)".
        with self._indexed(tmp_path, [1.50, 1.51],
                           [1.20, 1.21]) as index:
            comparison = compare_runs(index, "baseline", "candidate")
            (verdict,) = [v for v in comparison.regressions
                          if v.metric == "compression_ratio"]
            assert verdict.stats.test == "threshold"

    def test_powerless_gate_small_drift_still_passes(self, tmp_path):
        # Same powerless seed count, but drift below the
        # single-sample threshold: no regression.
        with self._indexed(tmp_path, [1.500, 1.510],
                           [1.470, 1.480]) as index:
            comparison = compare_runs(index, "baseline", "candidate")
            assert not any(v.metric == "compression_ratio"
                           for v in comparison.regressions)

    def test_disjoint_metrics_reported_not_gated(self, tmp_path):
        journal = tmp_path / "runs.jsonl"
        _write_journal(journal, "baseline0001", [1.5, 1.6],
                       unit="fig4/gcc")
        _write_journal(journal, "candidate001", [1.5, 1.6],
                       unit="fig4/mcf")
        with ResultsIndex(tmp_path / "idx.sqlite") as index:
            index.ingest_journal(journal)
            comparison = compare_runs(index, "baseline", "candidate")
            assert comparison.verdicts == []
            assert comparison.only_in_a and comparison.only_in_b
            assert isinstance(comparison, Comparison)


# ---------------------------------------------------------------------------
# CLI: exit codes, journaling, tier-1 smoke check
# ---------------------------------------------------------------------------

class TestCli:
    def _populate(self, tmp_path, monkeypatch, b_ratios):
        monkeypatch.chdir(tmp_path)
        journal = tmp_path / "runs.jsonl"
        _write_journal(journal, "baseline0001",
                       [1.50, 1.51, 1.52, 1.53, 1.54])
        _write_journal(journal, "candidate001", b_ratios)
        _write_bench(tmp_path / "BENCH_kernels.json")
        assert analysis_main(["index"]) == 0

    def test_smoke_ingest_idempotent_and_self_compare_clean(
            self, tmp_path, monkeypatch, capsys):
        """The tier-1 smoke check: fixture journal + bench trajectory
        ingest twice (second pass inserts nothing), and a run compared
        against itself reports no regressions."""
        self._populate(tmp_path, monkeypatch,
                       [1.50, 1.51, 1.52, 1.53, 1.54])
        capsys.readouterr()
        # Second ingest: idempotent even though the first `index` run
        # appended its own `index` event to the journal.
        assert analysis_main(["index"]) == 0
        out = capsys.readouterr().out
        assert "0 new row(s)" in out
        assert analysis_main(
            ["compare", "baseline0001", "baseline0001"]) == 0
        out = capsys.readouterr().out
        assert "0 regression(s)" in out and "VERDICT: ok" in out
        # Two distinct same-config runs are also self-consistent.
        assert analysis_main(
            ["compare", "baseline0001", "candidate001"]) == 0
        assert "VERDICT: ok" in capsys.readouterr().out

    def test_compare_exits_nonzero_on_seeded_regression(
            self, tmp_path, monkeypatch, capsys):
        self._populate(tmp_path, monkeypatch,
                       [1.20, 1.21, 1.22, 1.23, 1.24])
        assert analysis_main(["compare", "baseline", "candidate"]) == 1
        out = capsys.readouterr().out
        assert "VERDICT: REGRESSION" in out
        # The comparison itself was journaled as a typed event.
        from repro.runner import read_journal, validate_event
        events = [e for e in read_journal(tmp_path / "runs.jsonl")
                  if e["event"] == "compare"]
        assert events and events[-1]["regressions"] >= 1
        assert validate_event(events[-1]) == []

    def test_index_event_journaled(self, tmp_path, monkeypatch):
        self._populate(tmp_path, monkeypatch,
                       [1.50, 1.51, 1.52, 1.53, 1.54])
        from repro.runner import read_journal, validate_event
        events = [e for e in read_journal(tmp_path / "runs.jsonl")
                  if e["event"] == "index"]
        assert events and events[-1]["inserted"] > 0
        assert validate_event(events[-1]) == []

    def test_index_runs_listing(self, tmp_path, monkeypatch, capsys):
        self._populate(tmp_path, monkeypatch,
                       [1.50, 1.51, 1.52, 1.53, 1.54])
        capsys.readouterr()
        assert analysis_main(["index", "--runs"]) == 0
        out = capsys.readouterr().out
        assert "baseline0001" in out and "candidate001" in out
        assert "bench:" in out

    def test_index_rebuild(self, tmp_path, monkeypatch, capsys):
        self._populate(tmp_path, monkeypatch,
                       [1.50, 1.51, 1.52, 1.53, 1.54])
        capsys.readouterr()
        assert analysis_main(["index", "--rebuild", "--no-journal"]) == 0
        out = capsys.readouterr().out
        assert "0 new row(s)" not in out    # fresh database, real inserts

    def test_compare_unknown_run_errors(self, tmp_path, monkeypatch,
                                        capsys):
        self._populate(tmp_path, monkeypatch,
                       [1.50, 1.51, 1.52, 1.53, 1.54])
        with pytest.raises(SystemExit) as excinfo:
            analysis_main(["compare", "nosuchrun", "baseline"])
        assert excinfo.value.code == 2

    def test_runner_seeds_flag_fans_out(self, tmp_path, monkeypatch,
                                        capsys):
        """`run --seeds N` journals N seeded unit_end events per cell
        and the index groups them into one N-sample metric group."""
        import repro.analysis.__main__ as cli
        from repro.analysis import ExperimentScale
        tiny = ExperimentScale(n_events=400, scale=0.02,
                               capacity_touches=2000,
                               capacity_footprint_cap=60, fig2_pages=6,
                               benchmarks=("gcc",), mixes=("mix2",))
        monkeypatch.setitem(cli.SCALES, "quick", tiny)
        monkeypatch.chdir(tmp_path)
        assert analysis_main(
            ["run", "--seeds", "2", "--filter", "fig4", "--scale",
             "quick", "--no-cache", "--jobs", "1"]) == 0
        capsys.readouterr()
        assert analysis_main(["index", "--no-journal"]) == 0
        with ResultsIndex(tmp_path / "results_index.sqlite") as index:
            (row,) = index.runs()
            assert row["seeds"] == 2 and row["base_seed"] == tiny.seed
            samples = index.metric_samples(row["run_id"])
            ratio_groups = {k: v for k, v in samples.items()
                            if k[1] == "compression_ratio"}
            assert ratio_groups
            assert all(len(v) == 2 for v in ratio_groups.values())
