"""Tests for the full-hierarchy simulation mode."""

import pytest

from repro.simulation import SimulationConfig, simulate_full_hierarchy
from repro.workloads import get_profile

SIM = SimulationConfig(n_events=3000, scale=0.02, seed=6)


class TestFullHierarchy:
    @pytest.fixture(scope="class")
    def result(self):
        return simulate_full_hierarchy(get_profile("gcc"), "compresso", SIM)

    def test_caches_filter_the_stream(self, result):
        """Only a fraction of core accesses reach memory."""
        assert 0 < result.llc_fills < result.core_accesses

    def test_writebacks_occur(self, result):
        assert result.llc_writebacks > 0

    def test_controller_saw_the_llc_stream(self, result):
        stats = result.controller_stats
        assert stats.demand_reads == result.llc_fills
        assert stats.demand_writes == result.llc_writebacks

    def test_cache_stats_present(self, result):
        assert result.cache_stats["l1"].accesses == result.core_accesses
        assert result.cache_stats["l1"].hit_rate() > 0.3

    def test_compression_happens(self, result):
        assert result.final_ratio > 1.0

    def test_speedup_comparison(self):
        base = simulate_full_hierarchy(get_profile("gcc"), "uncompressed",
                                       SIM)
        comp = simulate_full_hierarchy(get_profile("gcc"), "compresso", SIM)
        assert 0.3 < comp.speedup_over(base) < 3.0

    def test_determinism(self):
        a = simulate_full_hierarchy(get_profile("astar"), "compresso", SIM)
        b = simulate_full_hierarchy(get_profile("astar"), "compresso", SIM)
        assert a.cycles == b.cycles
        assert a.llc_fills == b.llc_fills
