"""Tests for the cycle-based simulation driver."""

import pytest

from repro.core.config import compresso_config
from repro.simulation import (
    SimulationConfig,
    run_benchmark_systems,
    simulate,
    system_config,
)
from repro.workloads import get_profile

SIM = SimulationConfig(n_events=600, scale=0.02, seed=3)


class TestSystemConfigs:
    def test_named_systems(self):
        assert system_config("uncompressed") is None
        assert system_config("lcp").packing == "lcp"
        assert system_config("lcp").speculative_access
        assert system_config("compresso").packing == "linepack"
        assert system_config("compresso").os_transparent

    def test_unknown_system(self):
        with pytest.raises(ValueError):
            system_config("zram")

    def test_lcp_align_bins(self):
        from repro.core.config import ALIGNMENT_FRIENDLY_LINE_BINS
        assert system_config("lcp+align").line_bins == \
            ALIGNMENT_FRIENDLY_LINE_BINS


class TestSimulate:
    def test_runs_all_systems(self):
        profile = get_profile("gcc")
        results = run_benchmark_systems(
            profile, ["uncompressed", "lcp", "compresso"], SIM)
        assert set(results) == {"uncompressed", "lcp", "compresso"}
        for result in results.values():
            assert result.cycles > 0
            assert result.instructions > 0

    def test_speedup_requires_same_trace(self):
        a = simulate(get_profile("gcc"), "compresso", SIM)
        other = SimulationConfig(n_events=500, scale=0.02, seed=3)
        b = simulate(get_profile("gcc"), "uncompressed", other)
        with pytest.raises(ValueError):
            a.speedup_over(b)

    def test_determinism(self):
        a = simulate(get_profile("astar"), "compresso", SIM)
        b = simulate(get_profile("astar"), "compresso", SIM)
        assert a.cycles == b.cycles
        assert a.ratio_timeline == b.ratio_timeline

    def test_compressible_workload_has_ratio_above_one(self):
        result = simulate(get_profile("zeusmp"), "compresso", SIM)
        assert result.final_ratio > 1.3

    def test_custom_config_override(self):
        config = compresso_config(enable_repacking=False)
        result = simulate(get_profile("gcc"), "custom", SIM, config=config)
        assert result.controller_stats.repack_events == 0

    def test_uncompressed_accesses_match_events(self):
        result = simulate(get_profile("povray"), "uncompressed", SIM)
        assert result.dram_stats.accesses == SIM.n_events

    def test_compresso_beats_lcp_on_mcf(self):
        """The paper's ordering on a split/metadata-bound benchmark:
        plain LCP pays splits and page faults that Compresso avoids."""
        profile = get_profile("mcf")
        results = run_benchmark_systems(
            profile, ["uncompressed", "lcp", "compresso"],
            SimulationConfig(n_events=2000, scale=0.02, seed=3))
        base = results["uncompressed"]
        lcp = results["lcp"].speedup_over(base)
        compresso = results["compresso"].speedup_over(base)
        assert compresso > lcp - 0.05

    def test_zero_heavy_workload_saves_accesses(self):
        result = simulate(get_profile("leslie3d"), "compresso", SIM)
        stats = result.controller_stats
        assert stats.saved_accesses > 0
