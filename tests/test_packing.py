"""Tests for LinePack and LCP packing (§II-C, §IV-B1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ALIGNMENT_FRIENDLY_LINE_BINS, PRIOR_WORK_LINE_BINS
from repro.core.lcp import LCPPack
from repro.core.linepack import LinePack, split_access_fraction
from repro.core.packing import blocks_spanned, choose_bin


class TestChooseBin:
    @pytest.mark.parametrize("size,expected_bin", [
        (0, 0), (1, 1), (8, 1), (9, 2), (32, 2), (33, 3), (64, 3),
    ])
    def test_alignment_bins(self, size, expected_bin):
        assert choose_bin(size, ALIGNMENT_FRIENDLY_LINE_BINS) == expected_bin

    def test_oversized_clamps_to_raw(self):
        assert choose_bin(100, ALIGNMENT_FRIENDLY_LINE_BINS) == 3


class TestBlocksSpanned:
    @pytest.mark.parametrize("offset,size,expected", [
        (0, 0, 0),
        (0, 64, 1),
        (0, 65, 2),
        (32, 32, 1),
        (32, 33, 2),
        (40, 32, 2),     # straddles the 64 B boundary
        (8, 8, 1),
        (60, 8, 2),
        (128, 64, 1),
    ])
    def test_counts(self, offset, size, expected):
        assert blocks_spanned(offset, size) == expected


class TestLinePack:
    def test_offsets_are_prefix_sums(self):
        pack = LinePack(ALIGNMENT_FRIENDLY_LINE_BINS)
        layout = pack.pack([8, 32, 0, 64, 8] + [0] * 59)
        assert layout.slot_offsets[:5] == (0, 8, 40, 40, 104)
        assert layout.data_bytes == 112

    def test_no_slot_overlap(self):
        pack = LinePack(ALIGNMENT_FRIENDLY_LINE_BINS)
        layout = pack.pack([7, 30, 64, 1, 0, 33] * 10 + [5] * 4)
        for i in range(len(layout.slot_sizes) - 1):
            end = layout.slot_offsets[i] + layout.slot_sizes[i]
            assert end <= layout.slot_offsets[i + 1]

    def test_inflation_room_above_data(self):
        pack = LinePack(ALIGNMENT_FRIENDLY_LINE_BINS)
        layout = pack.layout_from_bins([1] * 64, inflated_lines=(3, 9))
        base = layout.inflation_base
        assert base % 64 == 0
        assert base >= layout.data_bytes
        loc3 = layout.locate(3)
        loc9 = layout.locate(9)
        assert loc3.inflated and loc3.offset == base
        assert loc9.inflated and loc9.offset == base + 64
        assert layout.total_bytes == base + 128

    def test_inflated_lines_never_split(self):
        pack = LinePack(ALIGNMENT_FRIENDLY_LINE_BINS)
        layout = pack.layout_from_bins([2] * 64, inflated_lines=(5,))
        assert layout.locate(5).accesses() == 1

    def test_offset_calc_is_one_cycle(self):
        assert LinePack(ALIGNMENT_FRIENDLY_LINE_BINS).offset_calc_cycles == 1

    @given(st.lists(st.integers(min_value=0, max_value=64),
                    min_size=64, max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_pack_property(self, sizes):
        """Every slot holds its line; data bytes equal sum of slots."""
        pack = LinePack(ALIGNMENT_FRIENDLY_LINE_BINS)
        layout = pack.pack(sizes)
        assert layout.data_bytes == sum(layout.slot_sizes)
        for line, size in enumerate(sizes):
            assert layout.slot_sizes[line] >= size


class TestSplitAccessFraction:
    def test_paper_bin_comparison(self):
        """Alignment-friendly bins slash split accesses (§IV-B1).

        The paper reports 30.9% -> 3.2%.  Real pages are largely
        homogeneous (one data class per page), so 8 B and 32 B runs
        stay self-aligned under 0/8/32/64 bins, while 22/44 B runs
        cycle through boundary-crossing offsets under 0/22/44/64.
        """
        import random
        rng = random.Random(3)
        sizes = []
        for _ in range(60):  # 60 pages, each dominated by one size class
            dominant = rng.choice([6, 20, 30])
            page = [dominant if rng.random() < 0.98 else rng.randint(1, 64)
                    for _ in range(64)]
            sizes.extend(page)
        prior = split_access_fraction(sizes, PRIOR_WORK_LINE_BINS)
        aligned = split_access_fraction(sizes, ALIGNMENT_FRIENDLY_LINE_BINS)
        assert prior > 0.2
        assert aligned < 0.1
        assert aligned < prior / 3


class TestLCPPack:
    def test_uniform_slots(self):
        pack = LCPPack(PRIOR_WORK_LINE_BINS)
        layout = pack.pack([20] * 64)
        assert set(layout.slot_sizes) == {22}
        assert layout.slot_offsets == tuple(22 * i for i in range(64))
        assert not layout.inflated_lines

    def test_exceptions_for_outliers(self):
        pack = LCPPack(PRIOR_WORK_LINE_BINS)
        sizes = [20] * 60 + [64] * 4
        layout = pack.pack(sizes)
        assert set(layout.slot_sizes) == {22}
        assert set(layout.inflated_lines) == {60, 61, 62, 63}
        # Exceptions live in the exception region, stored raw.
        for line in layout.inflated_lines:
            assert layout.locate(line).size == 64

    def test_too_many_exceptions_grows_target(self):
        pack = LCPPack(PRIOR_WORK_LINE_BINS, max_exceptions=17)
        sizes = [20] * 40 + [64] * 24  # 24 > 17 exceptions at target 22
        layout = pack.pack(sizes)
        assert layout.slot_sizes[0] == 64  # must fall back to raw target

    def test_mixed_bin_metadata_rejected(self):
        pack = LCPPack(PRIOR_WORK_LINE_BINS)
        with pytest.raises(ValueError):
            pack.layout_from_bins([1, 2] * 32, ())

    def test_candidates_cover_feasible_targets(self):
        pack = LCPPack(PRIOR_WORK_LINE_BINS)
        sizes = [20] * 63 + [64]
        candidates = pack.pack_candidates(sizes)
        targets = {layout.slot_sizes[0] for layout in candidates}
        assert 22 in targets and 64 in targets

    def test_offset_calc_is_free(self):
        assert LCPPack(PRIOR_WORK_LINE_BINS).offset_calc_cycles == 0

    @given(st.lists(st.integers(min_value=0, max_value=64),
                    min_size=64, max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_pack_property(self, sizes):
        """Non-exception lines fit the target; exceptions are bounded."""
        pack = LCPPack(PRIOR_WORK_LINE_BINS)
        layout = pack.pack(sizes)
        target = layout.slot_sizes[0]
        assert len(layout.inflated_lines) <= pack.max_exceptions
        for line, size in enumerate(sizes):
            if line not in layout.inflated_lines:
                assert size <= target


class TestCompressionComparison:
    def test_linepack_beats_lcp_on_variable_data(self):
        """LCP trades compression for simple offsets (§II-C, Fig. 2)."""
        import random
        rng = random.Random(11)
        linepack = LinePack(ALIGNMENT_FRIENDLY_LINE_BINS)
        lcp = LCPPack(ALIGNMENT_FRIENDLY_LINE_BINS)
        lp_total = lcp_total = 0
        for _ in range(30):
            sizes = [rng.choice([4, 6, 20, 30, 60, 64]) for _ in range(64)]
            lp_total += linepack.pack(sizes).total_bytes
            lcp_total += lcp.pack(sizes).total_bytes
        assert lp_total < lcp_total
