"""Tests for CSV/JSON export of experiment results."""

import json

from repro.analysis import to_csv, to_json, write_result
from repro.analysis.report import ExperimentResult


def sample_result() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="demo",
        title="Demo experiment",
        columns=["benchmark", "ratio"],
        paper_values={"claim": "about 2x"},
        notes=["a note"],
    )
    result.add_row(benchmark="gcc", ratio=1.9)
    result.add_row(benchmark="mcf", ratio=1.3, _stalled=True)
    result.summary["mean"] = 1.6
    return result


class TestJson:
    def test_roundtrips_through_json(self):
        payload = json.loads(to_json(sample_result()))
        assert payload["experiment_id"] == "demo"
        assert payload["rows"][0]["ratio"] == 1.9
        assert payload["summary"]["mean"] == 1.6
        assert payload["paper_values"]["claim"] == "about 2x"

    def test_private_keys_stripped(self):
        payload = json.loads(to_json(sample_result()))
        assert "_stalled" not in payload["rows"][1]


class TestCsv:
    def test_header_and_rows(self):
        text = to_csv(sample_result())
        lines = text.strip().splitlines()
        assert lines[0] == "benchmark,ratio"
        assert lines[1] == "gcc,1.9"
        assert len(lines) == 3


class TestWrite:
    def test_writes_both_files(self, tmp_path):
        paths = write_result(sample_result(), tmp_path)
        assert paths["json"].exists()
        assert paths["csv"].exists()
        payload = json.loads(paths["json"].read_text())
        assert payload["title"] == "Demo experiment"
