"""Scalar-vs-vector equivalence for the numpy batch kernels.

The contract (docs/KERNELS.md) is byte-identity: element i of
``batch_compress(lines)`` equals the scalar ``compress(lines[i])`` —
same algorithm tag, same ``size_bits``, same payload bit stream — for
every algorithm with a vector kernel, on adversarial fixtures and
hypothesis-random lines alike.
"""

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import (
    BDICompressor,
    BPCCompressor,
    BatchCompressor,
    BestOfCompressor,
    FPCCompressor,
    ZeroCompressor,
    batch_compressor_for,
    make_batch_compressor,
    vectorized_algorithms,
)
from repro.compression.vector import lines_to_array, zero_mask
from repro.compression.vector.bdi import BDIKernel
from repro.compression.vector.bpc import BPCKernel
from repro.compression.vector.fpc import FPCKernel
from repro.compression.vector.zero import ZeroKernel

VECTORIZED = vectorized_algorithms()


def adversarial_lines():
    """Fixtures aimed at every kernel's decision boundaries."""
    yield bytes(64)                                        # all zero
    yield b"\xff" * 64                                     # all ones
    yield bytes(range(64))                                 # byte ramp
    yield struct.pack("<16I", *[7] * 16)                   # repeated word
    yield struct.pack("<16I", *range(100, 116))            # small deltas
    yield struct.pack("<16i", *[-1] * 16)                  # negative small
    yield struct.pack("<8Q", *[0x7F0000000000 + i * 64 for i in range(8)])
    yield struct.pack("<16I", *[0xDEADBEEF] * 16)          # rep word
    yield struct.pack("<16I", *([0] * 8 + [0xFFFFFFFF] * 8))
    yield (b"hello world! " * 5)[:64]                      # text
    yield struct.pack("<16I", *[1 << 31] * 16)             # sign boundary
    yield struct.pack("<16I", 0xFFFFFFFF, *[0] * 15)       # big then zeros
    # BDI delta-width boundaries: exactly fits / just misses each width.
    for width in (1, 2, 4):
        fit = (1 << (8 * width - 1)) - 1
        yield struct.pack("<16I", 1000, *([1000 + fit] * 15))
        yield struct.pack("<16I", 1000, *([1000 + fit + 1] * 15))
    # FPC prefix boundaries: 4/8/16-bit sign-extension edges, half-zero,
    # two halfword SE8, repeated bytes, zero runs of exactly 8.
    yield struct.pack("<16i", *([7, -8, 127, -128] * 4))
    yield struct.pack("<16i", *([32767, -32768] * 8))
    yield struct.pack("<16I", *([0x00012300] * 16))        # half zero low
    yield struct.pack("<16I", *([0x007F00FF] * 16))        # two SE8 halves
    yield b"\xab" * 64                                     # repeated bytes
    yield struct.pack("<16I", *([0] * 8 + [1] + [0] * 7))  # 8-zero run
    # BPC plane shapes: single-one and two-consecutive-ones DBX planes.
    yield struct.pack("<16I", *[1 << i for i in range(16)])
    yield struct.pack("<16I", *[3 << i for i in range(16)])


def mixed_corpus(n=256, seed=0):
    rng = np.random.RandomState(seed)
    fixtures = list(adversarial_lines())
    corpus = list(fixtures)
    while len(corpus) < n:
        kind = len(corpus) % 4
        if kind == 0:
            corpus.append(rng.bytes(64))
        elif kind == 1:
            corpus.append(bytes(rng.randint(0, 4, 64, dtype=np.uint8)))
        elif kind == 2:
            base = int(rng.randint(0, 1 << 24))
            corpus.append(struct.pack(
                "<16I", *[(base + i) & 0xFFFFFFFF for i in range(16)]))
        else:
            corpus.append(bytes(64))
    return corpus


@pytest.mark.parametrize("algorithm", VECTORIZED)
class TestEquivalence:
    def test_adversarial_payloads(self, algorithm):
        batch = BatchCompressor(algorithm)
        scalar = batch._scalar
        lines = list(adversarial_lines())
        for line, encoded in zip(lines, batch.batch_compress(lines)):
            assert encoded == scalar.compress(line)

    def test_mixed_corpus_payloads(self, algorithm):
        batch = BatchCompressor(algorithm)
        scalar = batch._scalar
        lines = mixed_corpus()
        for line, encoded in zip(lines, batch.batch_compress(lines)):
            assert encoded == scalar.compress(line)

    def test_sizes_match_scalar(self, algorithm):
        batch = BatchCompressor(algorithm)
        scalar = batch._scalar
        lines = mixed_corpus()
        sizes = batch.batch_size_bits(lines)
        assert sizes.tolist() == [scalar.compress(line).size_bits
                                  for line in lines]

    def test_round_trip(self, algorithm):
        batch = BatchCompressor(algorithm)
        lines = mixed_corpus(64)
        assert batch.batch_decompress(batch.batch_compress(lines)) == lines

    def test_all_zero_batch(self, algorithm):
        batch = BatchCompressor(algorithm)
        lines = [bytes(64)] * 5
        for encoded in batch.batch_compress(lines):
            assert encoded == batch._scalar.compress(bytes(64))


@pytest.mark.parametrize("algorithm", VECTORIZED)
@settings(max_examples=40, deadline=None)
@given(data=st.binary(min_size=64, max_size=64))
def test_random_line_equivalence(algorithm, data):
    """Property: the batch of one random line equals the scalar result."""
    batch = BatchCompressor(algorithm)
    encoded = batch.batch_compress([data])[0]
    assert encoded == batch._scalar.compress(data)
    assert batch.batch_decompress([encoded]) == [data]


@settings(max_examples=20, deadline=None)
@given(lines=st.lists(st.binary(min_size=64, max_size=64),
                      min_size=1, max_size=12))
def test_random_batch_best_of(lines):
    """The selector's batch fast path matches per-line scalar min()."""
    best = BestOfCompressor([BPCCompressor(), BDICompressor(),
                             FPCCompressor(), ZeroCompressor()])
    assert best.batch_compress(lines) == [best.compress(line)
                                          for line in lines]


def test_scalar_fallback_algorithms():
    """cpack/lz get the uniform API via a scalar loop."""
    for name in ("cpack", "lz"):
        batch = make_batch_compressor(name)
        assert not batch.vectorized
        lines = mixed_corpus(16)
        assert batch.batch_compress(lines) == [
            batch._scalar.compress(line) for line in lines]


def test_batch_compressor_for_shares_instance():
    scalar = BPCCompressor(transform_only=True)
    batch = batch_compressor_for(scalar)
    assert batch is not None and batch.vectorized
    assert batch._scalar is scalar
    line = struct.pack("<16I", *range(16))
    assert batch.batch_compress([line])[0] == scalar.compress(line)


def test_default_batch_compress_is_scalar_loop():
    scalar = BDICompressor()
    lines = mixed_corpus(8)
    from repro.compression.base import Compressor
    assert Compressor.batch_compress(scalar, lines) == [
        scalar.compress(line) for line in lines]


def test_layout_round_trip_and_zero_mask():
    lines = mixed_corpus(32)
    arr = lines_to_array(lines)
    assert arr.shape == (32, 64)
    assert zero_mask(arr).tolist() == [not any(line) for line in lines]


def test_kernel_classes_direct():
    """The per-algorithm kernels are usable on raw arrays."""
    lines = mixed_corpus(48)
    arr = lines_to_array(lines)
    for kernel, scalar in [
        (BPCKernel(), BPCCompressor()),
        (BPCKernel(transform_only=True), BPCCompressor(transform_only=True)),
        (BDIKernel(), BDICompressor()),
        (FPCKernel(), FPCCompressor()),
        (ZeroKernel(), ZeroCompressor()),
    ]:
        sizes = kernel.size_bits(arr)
        assert sizes.tolist() == [scalar.compress(line).size_bits
                                  for line in lines]


def test_prime_size_cache_matches_demand_path():
    from repro.core.config import CompressoConfig
    from repro.core.controller import CompressedMemoryController, _SizeCache
    from repro.memory.physical import MemoryGeometry

    lines = mixed_corpus(64)
    geometry = MemoryGeometry(installed_bytes=32 << 20, advertised_ratio=2.0)
    controller = CompressedMemoryController(CompressoConfig(), geometry)
    _SizeCache._shared.clear()
    try:
        added = controller.prime_size_cache(lines)
        assert added == len({bytes(l) for l in lines if any(l)})
        primed = dict(_SizeCache._shared)
        _SizeCache._shared.clear()
        for line in lines:
            if any(line):
                controller._sizes.size_bytes(line)
        for key, size in _SizeCache._shared.items():
            assert primed[key] == size
        # Idempotent: a second prime adds nothing.
        assert controller.prime_size_cache(lines) == 0
    finally:
        _SizeCache._shared.clear()


def test_batch_install_simulation_identical():
    from repro.core.controller import _SizeCache
    from repro.simulation.simulator import SimulationConfig, simulate
    from repro.workloads.profiles import PROFILES

    profile = PROFILES[sorted(PROFILES)[0]]
    base = SimulationConfig(n_events=500, scale=0.02)
    _SizeCache._shared.clear()
    plain = simulate(profile, "compresso", base)
    _SizeCache._shared.clear()
    batched = simulate(profile, "compresso",
                       SimulationConfig(n_events=500, scale=0.02,
                                        batch_install=True))
    assert plain.cycles == batched.cycles
    assert plain.final_ratio == batched.final_ratio
    assert (plain.controller_stats.demand_reads
            == batched.controller_stats.demand_reads)


def test_unknown_algorithm_rejected():
    with pytest.raises(ValueError):
        BatchCompressor("nope")
