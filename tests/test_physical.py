"""Tests for machine-memory geometry and capacity accounting."""

import pytest

from repro.memory.physical import MemoryGeometry, PhysicalMemory


class TestGeometry:
    def test_advertised_capacity(self):
        geo = MemoryGeometry(installed_bytes=1 << 30, advertised_ratio=2.0)
        assert geo.advertised_bytes == 2 << 30
        assert geo.ospa_pages == (2 << 30) // 4096

    def test_metadata_region_is_1_6_percent_of_advertised(self):
        geo = MemoryGeometry(installed_bytes=1 << 30)
        # 64 B per advertised 4 KB page.
        assert geo.metadata_region_bytes == geo.ospa_pages * 64
        assert geo.metadata_overhead == pytest.approx(
            2 * 64 / 4096, rel=0.01
        )

    def test_data_region_smaller_than_installed(self):
        geo = MemoryGeometry(installed_bytes=1 << 30)
        assert geo.data_region_bytes < geo.installed_bytes


class TestPhysicalMemory:
    def test_metadata_addresses_above_data(self):
        memory = PhysicalMemory(MemoryGeometry(64 << 20))
        data_top = memory.allocator.total_chunks * 512
        assert memory.metadata_address(0) == data_top
        assert memory.metadata_address(1) == data_top + 64

    def test_metadata_address_bounds(self):
        memory = PhysicalMemory(MemoryGeometry(64 << 20))
        with pytest.raises(ValueError):
            memory.metadata_address(-1)
        with pytest.raises(ValueError):
            memory.metadata_address(10**9)

    def test_utilization_tracks_allocation(self):
        memory = PhysicalMemory(MemoryGeometry(64 << 20))
        assert memory.utilization() == 0.0
        memory.allocator.allocate(100)
        assert memory.utilization() > 0.0
        assert memory.used_bytes == 100 * 512

    def test_variable_allocation_backend(self):
        memory = PhysicalMemory(MemoryGeometry(64 << 20),
                                allocation="variable")
        base = memory.allocator.allocate_region(2048)
        assert memory.used_bytes == 2048

    def test_unknown_allocation_rejected(self):
        with pytest.raises(ValueError):
            PhysicalMemory(MemoryGeometry(64 << 20), allocation="slab")

    def test_metadata_cannot_eat_all_memory(self):
        with pytest.raises(ValueError):
            # Absurd advertised ratio: metadata region exceeds installed.
            PhysicalMemory(MemoryGeometry(1 << 20, advertised_ratio=100.0))
