"""Tests for the metadata cache and half-entry optimization (§IV-B5)."""

import pytest

from repro.core.metadata_cache import MetadataCache


def small_cache(**kwargs) -> MetadataCache:
    """2 sets x 4 ways, so eviction behaviour is easy to provoke."""
    defaults = dict(capacity_bytes=2 * 4 * 64, assoc=4, half_entries=True)
    defaults.update(kwargs)
    return MetadataCache(**defaults)


class TestBasics:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert not cache.access(10)
        assert cache.access(10)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_capacity_shape(self):
        cache = MetadataCache(96 * 1024, 8)
        assert cache.n_sets == 192
        assert cache.slots_per_set == 16

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            MetadataCache(1000, 8)

    def test_lru_eviction_order(self):
        cache = small_cache()
        # Fill one set (pages congruent mod n_sets land together).
        pages = [0, 2, 4, 6]  # n_sets=2: all even pages share set 0
        for page in pages:
            cache.access(page)
        cache.access(0)          # 0 becomes MRU
        cache.access(8)          # evicts LRU = 2
        assert cache.contains(0)
        assert not cache.contains(2)

    def test_flush_evicts_all(self):
        evicted = []
        cache = small_cache(on_evict=lambda p, d: evicted.append(p))
        for page in range(6):
            cache.access(page)
        cache.flush()
        assert sorted(evicted) == list(range(6))
        assert not cache.resident_pages()

    def test_invalidate_skips_callback(self):
        evicted = []
        cache = small_cache(on_evict=lambda p, d: evicted.append(p))
        cache.access(5)
        cache.invalidate(5)
        assert not evicted
        assert not cache.contains(5)


class TestDirtyTracking:
    def test_dirty_eviction_reported(self):
        dirty_evictions = []
        cache = small_cache(on_evict=lambda p, d: dirty_evictions.append((p, d)))
        cache.access(0, make_dirty=True)
        for page in (2, 4, 6, 8):
            cache.access(page)
        assert (0, True) in dirty_evictions
        assert cache.stats.dirty_evictions == 1

    def test_mark_dirty(self):
        cache = small_cache()
        cache.access(0)
        cache.mark_dirty(0)
        victims = []
        cache.on_evict = lambda p, d: victims.append((p, d))
        cache.flush()
        assert (0, True) in victims


class TestHalfEntries:
    def test_half_entries_double_capacity(self):
        """8 half entries fit where only 4 full entries would (§IV-B5)."""
        cache = small_cache()
        pages = [2 * i for i in range(8)]  # all in set 0
        for page in pages:
            cache.access(page, half=True)
        assert all(cache.contains(p) for p in pages)
        # A 9th half entry evicts exactly one.
        cache.access(16, half=True)
        resident = [p for p in pages if cache.contains(p)]
        assert len(resident) == 7

    def test_full_entry_costs_two_slots(self):
        cache = small_cache()
        for page in (0, 2, 4, 6, 8, 10, 12, 14):  # 8 halves = 8 slots
            cache.access(page, half=True)
        cache.access(16, half=False)  # needs 2 slots -> evicts 0 and 2
        assert not cache.contains(0)
        assert not cache.contains(2)
        assert cache.contains(16)

    def test_disabled_half_entries(self):
        cache = small_cache(half_entries=False)
        pages = [2 * i for i in range(5)]
        for page in pages:
            cache.access(page, half=True)
        # Without the optimization only 4 fit.
        assert sum(cache.contains(p) for p in pages) == 4

    def test_reshape_half_to_full_can_evict(self):
        cache = small_cache()
        pages = [2 * i for i in range(8)]
        for page in pages:
            cache.access(page, half=True)
        cache.reshape(0, half=False)
        assert cache.contains(0)
        # One other entry had to go to make room.
        assert sum(cache.contains(p) for p in pages) == 7

    def test_refill_reshapes_existing_entry(self):
        cache = small_cache()
        cache.access(0, half=True)
        cache.fill(0, half=False)
        # Fill the set with half entries: only 6 more fit (2+6*1=8).
        for page in (2, 4, 6, 8, 10, 12):
            cache.access(page, half=True)
        assert cache.stats.evictions == 0
        cache.access(14, half=True)
        assert cache.stats.evictions == 1
