"""Tests for the DDR4 timing model."""

import pytest

from repro.memory.dram import DDR4Channel, DRAMSystem, DRAMTimings
from repro.memory.request import AccessCategory, AccessKind, MemAccess


def read(address, category=AccessCategory.DEMAND, critical=True):
    return MemAccess(AccessKind.READ, category, address, critical)


def write(address):
    return MemAccess(AccessKind.WRITE, AccessCategory.DEMAND, address, False)


class TestTimings:
    def test_cpu_cycle_conversion(self):
        t = DRAMTimings()
        # 3 GHz CPU / 1333 MHz DRAM: ~2.25 CPU cycles per DRAM clock.
        assert t.cycles_per_dram_clock == pytest.approx(2.2505, abs=0.01)
        assert t.row_hit_latency == round(18 * t.cycles_per_dram_clock)
        assert t.row_miss_latency > t.row_hit_latency
        assert t.row_conflict_latency > t.row_miss_latency

    def test_burst_occupancy(self):
        t = DRAMTimings()
        assert t.burst_cycles == round(4 * t.cycles_per_dram_clock)


class TestChannel:
    def test_row_hit_faster_than_conflict(self):
        channel = DDR4Channel()
        first = channel.access(0, read(0))
        # Same bank, same row: hit.
        hit_done = channel.access(first, read(64)) - first
        # Same bank (same stripe alignment), different row: conflict.
        far = 8192 * channel.n_banks  # same bank index, different row
        conflict_done = channel.access(first, read(far)) - first
        assert hit_done < conflict_done

    def test_banks_overlap(self):
        """Two accesses to different banks overlap; same bank serializes."""
        same = DDR4Channel()
        t1 = same.access(0, read(0))
        t2 = same.access(0, read(8192 * same.n_banks))  # same bank
        serial = t2

        other = DDR4Channel()
        other.access(0, read(0))
        t4 = other.access(0, read(256))  # neighbouring bank stripe
        assert t4 < serial

    def test_stream_engages_all_banks(self):
        channel = DDR4Channel()
        banks = {channel._map(64 * i)[0] for i in range(64)}
        assert len(banks) == channel.n_banks

    def test_stats_accumulate(self):
        channel = DDR4Channel()
        channel.access(0, read(0))
        channel.access(0, write(64))
        assert channel.stats.reads == 1
        assert channel.stats.writes == 1
        assert channel.stats.accesses == 2

    def test_metadata_reads_are_prioritized(self):
        """A metadata read bypasses the bank backlog (§III latency)."""
        channel = DDR4Channel()
        # Pile work onto every bank.
        for i in range(64):
            channel.access(0, read(i * 64))
        busy_now = 0
        demand_done = channel.access(busy_now, read(0))
        md = read(0, category=AccessCategory.METADATA)
        md_done = channel.access(busy_now, md)
        assert md_done - busy_now < demand_done - busy_now

    def test_invalid_bank_count(self):
        with pytest.raises(ValueError):
            DDR4Channel(n_banks=12)

    def test_utilization_bounded(self):
        channel = DDR4Channel()
        for i in range(10):
            channel.access(0, read(i * 64))
        assert 0.0 < channel.utilization(10_000) <= 1.0


class TestSystem:
    def test_channel_interleave(self):
        system = DRAMSystem(n_channels=2)
        system.access(0, read(0))
        system.access(0, read(64))
        assert system.channels[0].stats.reads == 1
        assert system.channels[1].stats.reads == 1

    def test_aggregate_stats(self):
        system = DRAMSystem(n_channels=2)
        for i in range(8):
            system.access(0, read(i * 64))
        assert system.stats.reads == 8

    def test_invalid_channels(self):
        with pytest.raises(ValueError):
            DRAMSystem(n_channels=0)
