"""Tests for runner crash tolerance, cache quarantine and journal
crash-safety (docs/ROBUSTNESS.md).

Worker-process faults are real: units below crash with ``os._exit``,
hang with ``sleep``, or raise, and the scheduler must kill, retry and
account for them without losing the rest of the sweep.
"""

import json
import multiprocessing
import os
import time

import pytest

from repro.runner import (
    ResultCache,
    RunJournal,
    Runner,
    UnitFailureError,
    WorkUnit,
    find_interrupted,
    read_journal,
)
from repro.runner.cache import QUARANTINE_DIR, payload_checksum


# -- module-level unit functions (picklable across the fork) -------------

def _ok_unit(value):
    return {"value": value}


def _crash_unit():
    os._exit(7)


def _raise_unit():
    raise RuntimeError("boom")


def _hang_unit():
    time.sleep(60)


def _crash_once_unit(sentinel, value):
    """Crash on the first attempt, succeed on the retry."""
    if not os.path.exists(sentinel):
        open(sentinel, "w").close()
        os._exit(3)
    return {"value": value}


def _hang_once_unit(sentinel, value):
    """Hang on the first attempt, succeed on the retry."""
    if not os.path.exists(sentinel):
        open(sentinel, "w").close()
        time.sleep(60)
    return {"value": value}


def _echo_child(value, queue):
    queue.put(value * 10)


def _spawning_unit(value):
    """A unit that hosts a subprocess of its own, like the sharded
    simulation's supervisor does."""
    ctx = multiprocessing.get_context()
    queue = ctx.Queue()
    proc = ctx.Process(target=_echo_child, args=(value, queue))
    proc.start()
    result = queue.get(timeout=30)
    proc.join()
    return {"value": result}


def _unit(fn, label="u", **params):
    return WorkUnit(experiment="robust", label=label, fn=fn, params=params)


class TestCrashTolerantScheduler:
    def test_crash_retried_to_success(self, tmp_path):
        sentinel = str(tmp_path / "crashed")
        journal = RunJournal(tmp_path / "runs.jsonl")
        runner = Runner(jobs=2, retries=2, backoff=0.01, journal=journal)
        results = runner.map([
            _unit(_ok_unit, "ok", value=1),
            _unit(_crash_once_unit, "crashy", sentinel=sentinel, value=2),
        ])
        assert results == [{"value": 1}, {"value": 2}]
        assert runner.failures == []
        retries = [r for r in read_journal(journal.path)
                   if r["event"] == "unit_retry"]
        assert len(retries) == 1
        assert "worker died" in retries[0]["reason"]

    def test_crash_and_hang_sweep_completes(self, tmp_path):
        """The acceptance sweep: one crasher, one hanger, both recover."""
        journal = RunJournal(tmp_path / "runs.jsonl")
        runner = Runner(jobs=2, timeout=1.0, retries=2, backoff=0.01,
                        journal=journal)
        results = runner.map([
            _unit(_ok_unit, "ok", value=1),
            _unit(_crash_once_unit, "crashy",
                  sentinel=str(tmp_path / "c"), value=2),
            _unit(_hang_once_unit, "hangy",
                  sentinel=str(tmp_path / "h"), value=3),
        ])
        assert results == [{"value": 1}, {"value": 2}, {"value": 3}]
        events = read_journal(journal.path)
        reasons = [r["reason"] for r in events
                   if r["event"] == "unit_retry"]
        assert any("worker died" in reason for reason in reasons)
        assert any("timeout" in reason for reason in reasons)
        ends = [r for r in events if r["event"] == "unit_end"]
        assert len(ends) == 3 and all(r["ok"] for r in ends)

    def test_hang_without_retries_fails_permanently(self, tmp_path):
        journal = RunJournal(tmp_path / "runs.jsonl")
        runner = Runner(jobs=1, timeout=0.5, retries=0, strict=False,
                        journal=journal)
        results = runner.map([_unit(_hang_unit, "hangy"),
                              _unit(_ok_unit, "ok", value=9)])
        assert results == [None, {"value": 9}]
        assert len(runner.failures) == 1
        assert "timeout" in runner.failures[0].reason
        ends = {r["unit"]: r["ok"] for r in read_journal(journal.path)
                if r["event"] == "unit_end"}
        assert ends == {"hangy": False, "ok": True}

    def test_strict_mode_raises_on_permanent_failure(self):
        runner = Runner(jobs=1, retries=0, timeout=0.5)
        with pytest.raises(UnitFailureError, match="crashy"):
            runner.map([_unit(_crash_unit, "crashy")])

    def test_raising_unit_reports_the_exception(self):
        runner = Runner(jobs=1, retries=1, backoff=0.01, strict=False)
        results = runner.map([_unit(_raise_unit, "raisy")])
        assert results == [None]
        assert runner.failures[0].attempts == 2
        assert "RuntimeError: boom" in runner.failures[0].reason

    def test_timeout_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Runner(timeout=0)
        with pytest.raises(ValueError):
            Runner(retries=-1)

    def test_allow_children_lets_units_spawn_subprocesses(self):
        """Sharded units host a supervisor with worker subprocesses;
        the default daemonic unit processes refuse to have children."""
        units = [_unit(_spawning_unit, "a", value=1),
                 _unit(_spawning_unit, "b", value=2)]
        runner = Runner(jobs=2, strict=False)
        assert runner.map(units) == [None, None]
        assert all("daemonic" in f.reason for f in runner.failures)
        runner = Runner(jobs=2, allow_children=True)
        assert runner.map(units) == [{"value": 10}, {"value": 20}]

    def test_allow_children_refuses_timeout(self):
        with pytest.raises(ValueError, match="allow_children"):
            Runner(allow_children=True, timeout=1.0)

    def test_isolated_path_stores_to_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        runner = Runner(jobs=1, retries=1, backoff=0.01, cache=cache)
        unit = _unit(_ok_unit, "ok", value=5)
        assert runner.map([unit]) == [{"value": 5}]
        assert cache.get(unit.key()) == {"value": 5}


class TestCacheQuarantine:
    def _cached_unit(self, cache):
        unit = _unit(_ok_unit, "ok", value=1)
        cache.put(unit.key(), unit, {"value": 1})
        return unit

    def test_roundtrip_carries_checksum(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        unit = self._cached_unit(cache)
        payload = json.loads((cache.root / f"{unit.key()}.json").read_text())
        assert payload["checksum"] == payload_checksum(payload)
        assert cache.get(unit.key()) == {"value": 1}

    def test_unparsable_cell_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        unit = self._cached_unit(cache)
        path = cache.root / f"{unit.key()}.json"
        path.write_text("{not json")
        assert cache.get(unit.key()) is None
        assert not path.exists()
        assert (cache.root / QUARANTINE_DIR / path.name).exists()
        assert cache.quarantined == 1

    def test_bitflipped_cell_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        unit = self._cached_unit(cache)
        path = cache.root / f"{unit.key()}.json"
        # Valid JSON, wrong content: the checksum must catch it.
        payload = json.loads(path.read_text())
        payload["result"] = {"value": 999}
        path.write_text(json.dumps(payload, sort_keys=True))
        assert cache.get(unit.key()) is None
        assert (cache.root / QUARANTINE_DIR / path.name).exists()

    def test_missing_checksum_is_rejected(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        unit = self._cached_unit(cache)
        path = cache.root / f"{unit.key()}.json"
        payload = json.loads(path.read_text())
        del payload["checksum"]
        path.write_text(json.dumps(payload, sort_keys=True))
        assert cache.get(unit.key()) is None

    def test_plain_miss_is_not_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.get("0" * 64) is None
        assert cache.quarantined == 0


class TestCrashSafeJournal:
    def test_torn_trailing_line_repaired(self, tmp_path):
        journal = RunJournal(tmp_path / "runs.jsonl")
        journal.event("run_start", jobs=1, cache_enabled=False)
        intact = journal.path.read_bytes()
        with journal.path.open("a") as handle:
            handle.write('{"event": "unit_sta')     # torn mid-crash
        with pytest.warns(RuntimeWarning, match="torn final line"):
            records = read_journal(journal.path)
        assert [r["event"] for r in records] == ["run_start"]
        # the torn bytes are truncated away, not left to trip the
        # next reader
        assert journal.path.read_bytes() == intact
        records = read_journal(journal.path, skip_invalid=True)
        assert [r["event"] for r in records] == ["run_start"]

    def test_find_interrupted_reports_open_units(self, tmp_path):
        journal = RunJournal(tmp_path / "runs.jsonl")
        journal.event("run_start", jobs=1, cache_enabled=True)
        journal.event("unit_start", unit="a", experiment="e",
                      key="k1", cached=False)
        journal.event("unit_end", unit="a", experiment="e", key="k1",
                      cached=False, wall_s=0.1, ok=True)
        journal.event("unit_start", unit="b", experiment="e",
                      key="k2", cached=False)
        # No unit_end for b, no run_end: the process died here.
        interrupted = find_interrupted(journal.path)
        assert interrupted["runs"] == [journal.run_id]
        assert [u["unit"] for u in interrupted["units"]] == ["b"]

    def test_find_interrupted_keys_units_by_seed(self, tmp_path):
        """A unit_end for seed 0 must not close seed 1's open start:
        multi-seed sweeps run the same unit label once per seed."""
        journal = RunJournal(tmp_path / "runs.jsonl")
        journal.event("run_start", jobs=1, cache_enabled=True)
        journal.event("unit_start", unit="a", experiment="e",
                      key="k1", seed=0, cached=False)
        journal.event("unit_start", unit="a", experiment="e",
                      key="k1", seed=1, cached=False)
        journal.event("unit_end", unit="a", experiment="e", key="k1",
                      seed=0, cached=False, wall_s=0.1, ok=True)
        interrupted = find_interrupted(journal.path)
        assert [(u["unit"], u["seed"])
                for u in interrupted["units"]] == [("a", 1)]
        journal.event("unit_end", unit="a", experiment="e", key="k1",
                      seed=1, cached=False, wall_s=0.1, ok=True)
        assert find_interrupted(journal.path)["units"] == []

    def test_completed_run_reports_nothing(self, tmp_path):
        journal = RunJournal(tmp_path / "runs.jsonl")
        journal.event("run_start", jobs=1, cache_enabled=True)
        journal.event("unit_start", unit="a", experiment="e",
                      key="k1", cached=False)
        journal.event("unit_end", unit="a", experiment="e", key="k1",
                      cached=False, wall_s=0.1, ok=True)
        journal.event("run_end", wall_s=0.2, units=1, cache_hits=0)
        interrupted = find_interrupted(journal.path)
        assert interrupted == {"runs": [], "units": []}

    def test_interrupted_sweep_resumes_from_cache(self, tmp_path):
        """Rerunning after a crash recomputes only the open units."""
        cache = ResultCache(tmp_path / "cache")
        journal = RunJournal(tmp_path / "runs.jsonl")
        units = [_unit(_ok_unit, "a", value=1), _unit(_ok_unit, "b", value=2)]
        journal.event("run_start", jobs=1, cache_enabled=True)
        runner = Runner(jobs=1, cache=cache, journal=journal)
        runner.map([units[0]])
        journal.event("unit_start", unit="b", experiment="robust",
                      key=units[1].key(), cached=False)
        # Crash here (no unit_end for b, no run_end).  Resume:
        open_units = {u["unit"] for u in
                      find_interrupted(journal.path)["units"]}
        assert open_units == {"b"}
        resumed = Runner(jobs=1, cache=cache,
                         journal=RunJournal(journal.path))
        assert resumed.map(units) == [{"value": 1}, {"value": 2}]
        assert resumed.cache_hits == 1      # unit a came from the cache
