"""Tests for the capacity-impact evaluation (§VI-A, Tab. II)."""

import pytest

from repro.simulation import (
    CapacityConfig,
    capacity_impact,
    multicore_capacity_impact,
)
from repro.workloads import get_profile, mix_profiles

CONFIG = CapacityConfig(memory_fraction=0.7, n_touches=15000,
                        footprint_pages=300)


class TestCapacityImpact:
    def test_ordering_constrained_le_compressed_le_unconstrained(self):
        profile = get_profile("soplex")
        result = capacity_impact(profile, {"compresso": [2.4]}, CONFIG)
        assert result.relative("compresso") >= 1.0
        assert (result.relative("compresso")
                <= result.relative("unconstrained") + 1e-9)

    def test_better_ratio_helps_more(self):
        profile = get_profile("milc")
        result = capacity_impact(
            profile, {"weak": [1.2], "strong": [2.5]}, CONFIG)
        assert result.relative("strong") >= result.relative("weak")

    def test_stallers_flagged(self):
        profile = get_profile("mcf")
        result = capacity_impact(
            profile, {"compresso": [1.3]},
            CapacityConfig(memory_fraction=0.6, n_touches=15000,
                           footprint_pages=300))
        assert result.stalled

    def test_insensitive_benchmark_flat(self):
        profile = get_profile("gamess")
        result = capacity_impact(profile, {"compresso": [1.7]}, CONFIG)
        assert result.relative("unconstrained") < 1.15

    def test_timeline_is_used(self):
        """A ratio that collapses mid-run must hurt vs a steady one."""
        profile = get_profile("soplex")
        steady = capacity_impact(profile, {"c": [2.0] * 10}, CONFIG)
        collapsing = capacity_impact(
            profile, {"c": [2.0] * 5 + [1.0] * 5}, CONFIG)
        assert collapsing.relative("c") <= steady.relative("c") + 1e-9


class TestMulticoreCapacity:
    def test_shared_budget_run(self):
        profiles = mix_profiles("mix2")
        result = multicore_capacity_impact(
            profiles, {"compresso": [1.8]},
            CapacityConfig(memory_fraction=0.7, n_touches=12000,
                           footprint_pages=200))
        assert result.relative("compresso") >= 1.0
        assert (result.relative("compresso")
                <= result.relative("unconstrained") + 1e-9)

    def test_mix_name(self):
        profiles = mix_profiles("mix9")
        result = multicore_capacity_impact(
            profiles, {"compresso": [1.8]},
            CapacityConfig(memory_fraction=0.7, n_touches=8000,
                           footprint_pages=150))
        assert "Forestfire" in result.benchmark
