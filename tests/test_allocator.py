"""Tests for the MPA allocators (§II-D)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocator import ChunkAllocator, OutOfMemoryError, VariableAllocator


class TestChunkAllocator:
    def test_basic_alloc_free(self):
        alloc = ChunkAllocator(8 * 512)
        chunks = alloc.allocate(3)
        assert len(chunks) == 3
        assert len(set(chunks)) == 3
        assert alloc.used_chunks == 3
        alloc.free(chunks)
        assert alloc.used_chunks == 0

    def test_exhaustion(self):
        alloc = ChunkAllocator(4 * 512)
        alloc.allocate(4)
        with pytest.raises(OutOfMemoryError):
            alloc.allocate(1)

    def test_double_free_rejected(self):
        alloc = ChunkAllocator(4 * 512)
        chunks = alloc.allocate(1)
        alloc.free(chunks)
        with pytest.raises(ValueError):
            alloc.free(chunks)

    def test_negative_count_rejected(self):
        alloc = ChunkAllocator(4 * 512)
        with pytest.raises(ValueError):
            alloc.allocate(-1)

    def test_misaligned_memory_rejected(self):
        with pytest.raises(ValueError):
            ChunkAllocator(1000)

    def test_stats(self):
        alloc = ChunkAllocator(10 * 512)
        alloc.allocate(4)
        stats = alloc.stats()
        assert stats.total_chunks == 10
        assert stats.used_chunks == 4
        assert stats.free_chunks == 6
        assert stats.utilization == pytest.approx(0.4)

    def test_chunk_addresses_distinct(self):
        alloc = ChunkAllocator(16 * 512)
        chunks = alloc.allocate(16)
        addresses = {alloc.chunk_base_address(c) for c in chunks}
        assert len(addresses) == 16

    @given(st.lists(st.integers(min_value=1, max_value=8), max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_accounting_invariant(self, requests):
        """used + free == total after any alloc/free interleaving."""
        alloc = ChunkAllocator(256 * 512)
        held = []
        for count in requests:
            if alloc.free_chunks >= count:
                held.append(alloc.allocate(count))
            elif held:
                alloc.free(held.pop())
            assert alloc.used_chunks + alloc.free_chunks == alloc.total_chunks
        for chunks in held:
            alloc.free(chunks)
        assert alloc.used_chunks == 0


class TestVariableAllocator:
    def test_alloc_sizes(self):
        alloc = VariableAllocator(16 * 4096)
        for size in (512, 1024, 2048, 4096):
            base = alloc.allocate_region(size)
            assert alloc.region_size_bytes(base) == size

    def test_rejects_oversized(self):
        alloc = VariableAllocator(4 * 4096)
        with pytest.raises(ValueError):
            alloc.allocate_region(8192)

    def test_buddy_coalescing(self):
        alloc = VariableAllocator(4096)
        bases = [alloc.allocate_region(512) for _ in range(8)]
        assert alloc.largest_free_region() == 0
        for base in bases:
            alloc.free_region(base)
        # After freeing everything, buddies must re-coalesce to 4 KB.
        assert alloc.largest_free_region() == 4096
        assert alloc.used_chunks == 0

    def test_fragmentation_blocks_large_alloc(self):
        alloc = VariableAllocator(2 * 4096)
        smalls = [alloc.allocate_region(512) for _ in range(16)]
        # Free every other one: half the memory free but no 4 KB region.
        for base in smalls[::2]:
            alloc.free_region(base)
        assert alloc.free_chunks == 8
        with pytest.raises(OutOfMemoryError):
            alloc.allocate_region(4096)
        assert alloc.stats().fragmented_chunks == 8

    def test_double_free_rejected(self):
        alloc = VariableAllocator(4096)
        base = alloc.allocate_region(512)
        alloc.free_region(base)
        with pytest.raises(ValueError):
            alloc.free_region(base)

    def test_regions_do_not_overlap(self):
        alloc = VariableAllocator(8 * 4096)
        occupied = set()
        for size in (4096, 2048, 2048, 512, 512, 1024):
            base = alloc.allocate_region(size)
            span = set(range(base, base + size // 512))
            assert not span & occupied
            occupied |= span

    @given(st.lists(st.sampled_from([512, 1024, 2048, 4096]), max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_buddy_invariant(self, sizes):
        """Allocate/free interleaving preserves chunk accounting."""
        alloc = VariableAllocator(32 * 4096)
        held = []
        for size in sizes:
            try:
                held.append(alloc.allocate_region(size))
            except OutOfMemoryError:
                if held:
                    alloc.free_region(held.pop(0))
            assert alloc.used_chunks + alloc.free_chunks == alloc.total_chunks
        for base in held:
            alloc.free_region(base)
        assert alloc.largest_free_region() == 4096
