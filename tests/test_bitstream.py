"""Unit and property tests for the bit-stream primitives."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compression.bitstream import (
    BitReader,
    Bits,
    BitWriter,
    fits_signed,
    sign_extend,
    to_twos_complement,
)


class TestBitWriter:
    def test_empty_writer(self):
        writer = BitWriter()
        assert writer.bit_length == 0
        assert writer.to_bytes() == b""

    def test_single_bits(self):
        writer = BitWriter()
        for bit in (1, 0, 1, 1):
            writer.write(bit, 1)
        assert writer.bit_length == 4
        assert writer.to_bytes() == bytes([0b1011_0000])

    def test_value_must_fit_width(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write(4, 2)

    def test_negative_value_rejected(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write(-1, 4)

    def test_negative_width_rejected(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write(0, -1)

    def test_zero_width_write_is_noop(self):
        writer = BitWriter()
        writer.write(0, 0)
        assert writer.bit_length == 0

    def test_byte_padding(self):
        writer = BitWriter()
        writer.write(0b101, 3)
        assert writer.to_bytes() == bytes([0b1010_0000])


class TestBitReader:
    def test_roundtrip_simple(self):
        writer = BitWriter()
        writer.write(0b1101, 4)
        writer.write(0xAB, 8)
        reader = BitReader(writer.to_bits())
        assert reader.read(4) == 0b1101
        assert reader.read(8) == 0xAB
        assert reader.remaining == 0

    def test_read_past_end_raises(self):
        reader = BitReader(Bits(0b1, 1))
        reader.read(1)
        with pytest.raises(EOFError):
            reader.read(1)

    def test_remaining(self):
        reader = BitReader(Bits(0xFF, 8))
        reader.read(3)
        assert reader.remaining == 5


class TestBits:
    def test_equality_and_hash(self):
        assert Bits(5, 4) == Bits(5, 4)
        assert Bits(5, 4) != Bits(5, 5)
        assert hash(Bits(5, 4)) == hash(Bits(5, 4))

    def test_len(self):
        assert len(Bits(0, 17)) == 17


class TestSignHelpers:
    @pytest.mark.parametrize("value,width,expected", [
        (0b1111, 4, -1),
        (0b0111, 4, 7),
        (0b1000, 4, -8),
        (0, 8, 0),
        (255, 8, -1),
    ])
    def test_sign_extend(self, value, width, expected):
        assert sign_extend(value, width) == expected

    def test_twos_complement_roundtrip(self):
        for value in range(-8, 8):
            assert sign_extend(to_twos_complement(value, 4), 4) == value

    def test_twos_complement_range_check(self):
        with pytest.raises(ValueError):
            to_twos_complement(8, 4)
        with pytest.raises(ValueError):
            to_twos_complement(-9, 4)

    def test_fits_signed(self):
        assert fits_signed(7, 4)
        assert fits_signed(-8, 4)
        assert not fits_signed(8, 4)
        assert not fits_signed(-9, 4)


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=2**16 - 1),
                          st.integers(min_value=16, max_value=20)),
                min_size=0, max_size=50))
def test_writer_reader_roundtrip_property(fields):
    """Any sequence of (value, width) writes reads back identically."""
    writer = BitWriter()
    for value, width in fields:
        writer.write(value, width)
    reader = BitReader(writer.to_bits())
    for value, width in fields:
        assert reader.read(width) == value
    assert reader.remaining == 0


@given(st.integers(min_value=1, max_value=33),
       st.integers())
def test_sign_extend_inverts_twos_complement(width, value):
    lo, hi = -(1 << (width - 1)), (1 << (width - 1)) - 1
    value = lo + (value % (hi - lo + 1))
    assert sign_extend(to_twos_complement(value, width), width) == value
