"""Tests for the energy and area models (§VII-C/D/E)."""

import pytest

from repro.core.stats import ControllerStats
from repro.energy.area import (
    BPC_AREA_UM2,
    METADATA_CACHE_AREA_UM2,
    AdderModel,
    AreaReport,
    offset_adder_for_bins,
)
from repro.energy.model import EnergyConstants, EnergyModel


class TestEnergyModel:
    def test_paper_overhead_fractions(self):
        """The §VII-C headline claims must hold for the constants."""
        fractions = EnergyConstants().sanity_fractions()
        assert fractions["bpc_vs_channel_power"] < 0.004 + 1e-12
        assert fractions["metadata_vs_dram_read"] < 0.008 + 1e-12

    def test_dram_energy_scales_with_accesses(self):
        model = EnergyModel()
        low = model.evaluate(cycles=1000, dram_reads=10, dram_writes=10)
        high = model.evaluate(cycles=1000, dram_reads=100, dram_writes=100)
        assert high.dram_dynamic_nj > low.dram_dynamic_nj

    def test_core_energy_scales_with_runtime(self):
        model = EnergyModel()
        fast = model.evaluate(cycles=1000, dram_reads=10, dram_writes=10)
        slow = model.evaluate(cycles=2000, dram_reads=10, dram_writes=10)
        assert slow.core_nj == pytest.approx(2 * fast.core_nj)

    def test_compressor_energy_counts_compressed_ops(self):
        model = EnergyModel()
        stats = ControllerStats(demand_reads=100, demand_writes=50,
                                zero_line_reads=20)
        run = model.evaluate(1000, 100, 50, stats)
        # 130 non-zero demand ops through the BPC unit.
        assert run.compressor_nj == pytest.approx(
            130 * EnergyConstants().bpc_access_nj)

    def test_baseline_has_no_controller_energy(self):
        model = EnergyModel()
        run = model.evaluate(1000, 100, 50, stats=None)
        assert run.compressor_nj == 0.0
        assert run.metadata_cache_nj == 0.0

    def test_relative_metrics(self):
        model = EnergyModel()
        baseline = model.evaluate(1000, 100, 100)
        compressed = model.evaluate(1000, 60, 60)
        relative = model.relative(compressed, baseline)
        assert relative["dram"] < 1.0
        assert relative["core"] == pytest.approx(1.0)


class TestAreaModel:
    def test_paper_area_numbers(self):
        report = AreaReport()
        assert report.bpc_um2 == BPC_AREA_UM2 == 43_000
        assert report.metadata_cache_um2 == METADATA_CACHE_AREA_UM2
        assert report.total_mm2 == pytest.approx(0.143)

    def test_adder_matches_paper(self):
        """§VII-E: <1.5K NAND gates, 38 naive / 32 optimized delays."""
        adder = AdderModel(n_inputs=63, input_bits=4)
        assert adder.nand_gates < 1500
        assert adder.gate_delays_naive == 38
        assert adder.gate_delays_optimized == 32
        assert adder.visible_cycles() == 1

    def test_adder_shape_from_bins(self):
        adder = offset_adder_for_bins((0, 8, 32, 64))
        # Shifted right by 3 bits: addends 0/1/4/8 -> 4-bit inputs.
        assert adder.input_bits == 4

    def test_wider_bins_need_wider_adder(self):
        narrow = offset_adder_for_bins((0, 8, 32, 64))
        wide = offset_adder_for_bins((0, 22, 44, 64))  # gcd shift = 1
        assert wide.input_bits > narrow.input_bits

    def test_without_overlap_costs_more_cycles(self):
        adder = AdderModel()
        assert adder.visible_cycles(overlap_with_metadata_lookup=False) >= \
            adder.visible_cycles(overlap_with_metadata_lookup=True)
