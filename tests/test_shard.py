"""Tests for the supervised sharded simulation (docs/SHARDING.md).

Covers the consistent-hash topology, the message protocol and its
replay log, single-process equivalence, SIGKILL recovery via
deterministic replay, supervisor-death resume, and the chaos cell's
zero-silent-faults claim.  The process-spawning tests use tiny traces;
they exercise real ``multiprocessing`` workers, not mocks.
"""

import dataclasses
import json
import warnings

import pytest

from repro.core.stats import ControllerStats
from repro.memory.dram import DRAMStats
from repro.obs import Tracer
from repro.runner.journal import read_journal
from repro.shard import (
    ChaosInjector,
    MessageLog,
    PoisonMessageError,
    SequenceTracker,
    ShardRunConfig,
    ShardSupervisor,
    ShardTopology,
    canonical_json,
    decode_message,
    make_message,
    parse_chaos_spec,
    result_payload,
    simulate_multicore_sharded,
)
from repro.shard.chaos import chaos_cell, reconcile_chaos
from repro.simulation import SimulationConfig, simulate_multicore
from repro.simulation.multicore import MulticoreResult
from repro.workloads import mix_profiles

SIM = SimulationConfig(n_events=200, scale=0.02, seed=4)


def _payload_text(result) -> str:
    return canonical_json(result_payload(result))


class TestTopology:
    def test_deterministic_across_instances(self):
        a = ShardTopology(4, virtual_nodes=32)
        b = ShardTopology(4, virtual_nodes=32)
        assert [a.shard_of(p) for p in range(500)] == \
            [b.shard_of(p) for p in range(500)]

    def test_every_shard_owns_pages(self):
        counts = ShardTopology(4).counts(2000)
        assert len(counts) == 4
        assert all(count > 0 for count in counts)
        # consistent hashing keeps the split roughly even
        assert max(counts) < 3 * min(counts)

    def test_owned_pages_partition_the_range(self):
        topology = ShardTopology(3)
        owned = [topology.owned_pages(shard, 300) for shard in range(3)]
        merged = sorted(page for pages in owned for page in pages)
        assert merged == list(range(300))

    def test_rejects_degenerate_shapes(self):
        with pytest.raises(ValueError):
            ShardTopology(0)
        with pytest.raises(ValueError):
            ShardTopology(2, virtual_nodes=0)


class TestMessages:
    def test_roundtrip_and_schema(self):
        message = make_message("run", 3, until=512)
        assert decode_message(json.dumps(message)) == message

    def test_poison_raises(self):
        with pytest.raises(PoisonMessageError):
            decode_message('{"kind": "progress", "seq": 1')   # torn JSON
        with pytest.raises(PoisonMessageError):
            decode_message(json.dumps({"kind": "nonsense", "seq": 0}))

    def test_sequence_tracker_classifies_dup_and_stale(self):
        tracker = SequenceTracker()
        assert tracker.classify(0) == "new"
        assert tracker.classify(2) == "new"
        assert tracker.classify(2) == "duplicate"   # dup chaos site
        assert tracker.classify(1) == "stale"       # reorder chaos site
        assert tracker.classify(3) == "new"

    def test_message_log_replayable_strips_chaos(self, tmp_path):
        log = MessageLog(tmp_path / "shard-0.log.jsonl")
        log.write_spec({"shard_id": 0})
        log.log_command(make_message("run", 0, until=128))
        log.log_command(make_message("stall", 1, seconds=9.0), chaos=True)
        log.log_command(make_message("finish", 2))
        spec, commands = log.read()
        assert spec == {"shard_id": 0}
        assert len(commands) == 3
        replay = log.replayable()
        assert [command["kind"] for command in replay] == ["run", "finish"]
        assert all("chaos" not in command for command in replay)


class TestTornFinalLine:
    """The ``read_journal`` torn-tail repair, at the byte level."""

    def test_truncates_to_last_valid_newline(self, tmp_path):
        target = tmp_path / "log.jsonl"
        good = '{"kind": "ping", "seq": 0}\n{"kind": "ping", "seq": 1}\n'
        torn = '{"kind": "ping", "se'          # crash mid-append, no \n
        target.write_bytes((good + torn).encode())
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            records = read_journal(target, skip_invalid=True)
        assert [record["seq"] for record in records] == [0, 1]
        assert any("torn final line" in str(w.message) for w in caught)
        # repaired in place: the file now ends at the last valid newline
        assert target.read_bytes() == good.encode()

    def test_mid_file_garbage_still_raises(self, tmp_path):
        target = tmp_path / "log.jsonl"
        target.write_text('not json\n{"kind": "ping", "seq": 0}\n')
        with pytest.raises(ValueError):
            read_journal(target)
        records = read_journal(target, skip_invalid=True)
        assert [record["seq"] for record in records] == [0]

    def test_message_log_read_survives_torn_tail(self, tmp_path):
        log = MessageLog(tmp_path / "shard-0.log.jsonl")
        log.write_spec({"shard_id": 0})
        log.log_command(make_message("run", 0, until=64))
        with log.path.open("a") as handle:
            handle.write('{"kind": "fin')        # torn
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            spec, commands = log.read()
        assert spec == {"shard_id": 0}
        assert [command["kind"] for command in commands] == ["run"]


class TestSpeedupClamp:
    """Regression: a zero cycle count must not feed ``log(0)``."""

    @staticmethod
    def _result(cycles):
        return MulticoreResult(
            mix="mix1", system="compresso", core_cycles=cycles,
            core_instructions=[100] * len(cycles),
            controller_stats=ControllerStats(), dram_stats=DRAMStats())

    def test_zero_cycles_yield_finite_speedup(self):
        base = self._result([1000, 0, 1000, 1000])
        comp = self._result([500, 500, 0, 500])
        speedup = comp.speedup_over(base)
        assert speedup == speedup and speedup not in (
            float("inf"), float("-inf"))
        assert speedup > 0

    def test_all_zero_is_parity(self):
        zero = self._result([0, 0, 0, 0])
        assert zero.speedup_over(zero) == pytest.approx(1.0)


class TestShardedEquivalence:
    def test_matches_single_process_byte_identical(self):
        profiles = mix_profiles("mix2")
        baseline = simulate_multicore(profiles, "compresso", SIM, "mix2")
        sharded = simulate_multicore_sharded(
            profiles, "compresso", dataclasses.replace(SIM, shards=2),
            "mix2", config=ShardRunConfig(segment_steps=256))
        assert _payload_text(sharded) == _payload_text(baseline)
        # the headline metrics, spelled out
        assert sharded.core_cycles == baseline.core_cycles
        assert sharded.core_instructions == baseline.core_instructions
        assert sharded.controller_stats == baseline.controller_stats

    def test_simulate_multicore_delegates_on_shards(self):
        profiles = mix_profiles("mix4")
        direct = simulate_multicore(profiles, "lcp", SIM, "mix4")
        routed = simulate_multicore(
            profiles, "lcp", dataclasses.replace(SIM, shards=2), "mix4")
        assert _payload_text(routed) == _payload_text(direct)

    def test_rejects_sanitize_and_faults(self):
        profiles = mix_profiles("mix2")
        with pytest.raises(ValueError):
            ShardSupervisor(profiles, "compresso",
                            dataclasses.replace(SIM, sanitize=True), 2)
        with pytest.raises(ValueError):
            ShardSupervisor(profiles, "compresso",
                            dataclasses.replace(SIM, faults="line:0.1"), 2)


class TestKillRecovery:
    def test_sigkill_mid_run_replays_to_identical_result(self, tmp_path):
        """The satellite e2e: a worker is SIGKILLed mid-sweep; the
        respawned worker replays its fsync'd command log and the merged
        result is byte-identical to the unkilled run."""
        profiles = mix_profiles("mix2")
        baseline = simulate_multicore(profiles, "compresso", SIM, "mix2")

        tracer = Tracer()
        injector = ChaosInjector(parse_chaos_spec("kill:1.0:1"), seed=3)
        supervisor = ShardSupervisor(
            profiles, "compresso", dataclasses.replace(SIM, shards=2), 2,
            mix_name="mix2",
            config=ShardRunConfig(segment_steps=256, max_respawns=32,
                                  heartbeat_timeout_s=10.0),
            run_dir=tmp_path, tracer=tracer, chaos=injector)
        result = supervisor.run()

        kills = [record for record in injector.records
                 if record.site == "kill"]
        assert kills, "chaos never fired — the test lost its point"
        assert _payload_text(result) == _payload_text(baseline)
        names = [event.name for event in tracer.events]
        assert "shard_exit" in names
        assert "shard_replay" in names
        outcome = reconcile_chaos(injector.records, tracer.events)
        assert outcome.silent == 0
        assert outcome.recovered == len(kills)

    def test_resume_after_supervisor_death(self, tmp_path):
        """Shard logs + agreement checkpoints survive the supervisor;
        a resumed supervisor replays every worker and lands on the
        same bytes."""
        profiles = mix_profiles("mix6")
        supervisor = ShardSupervisor(
            profiles, "compresso", dataclasses.replace(SIM, shards=2), 2,
            mix_name="mix6", config=ShardRunConfig(segment_steps=256),
            run_dir=tmp_path)
        first = supervisor.run()
        assert (tmp_path / "supervisor.jsonl").exists()

        resumed = ShardSupervisor.resume(
            tmp_path, config=ShardRunConfig(segment_steps=256))
        second = resumed.run()
        assert _payload_text(second) == _payload_text(first)


class TestChaosCell:
    def test_cell_is_clean_under_mixed_faults(self):
        outcome = chaos_cell(
            2, 0.3, message_spec="drop:0.2,dup:0.2,reorder:0.2,poison:0.2",
            benchmarks=("gcc",), seed=1, n_events=200, segment_steps=150,
            heartbeat_timeout_s=1.5)
        assert outcome.injected > 0
        assert outcome.silent == 0
        assert not outcome.divergent
        assert not outcome.error
        assert outcome.detected + outcome.masked == outcome.injected

    def test_spec_grammar_rejects_unknown_site(self):
        with pytest.raises(ValueError):
            parse_chaos_spec("segfault:0.5")
        specs = parse_chaos_spec("kill:0.1,poison:0.05:2")
        assert [(s.site, s.rate, s.burst) for s in specs] == [
            ("kill", 0.1, 1), ("poison", 0.05, 2)]


class TestFlowcheckSeesTheWorker:
    def test_shard_main_is_a_dispatch_root(self):
        """The ``worker=shard_main`` param channel must be visible to
        the shared-state-race rule, or the worker tree would escape
        race analysis."""
        from pathlib import Path

        from repro.check.flow import FlowProgram

        root = Path(__file__).resolve().parent.parent
        files = sorted((root / "src/repro/shard").glob("*.py"))
        program = FlowProgram(root, files)
        dispatched = {
            site.target
            for facts in program.graph.facts.values()
            for site in facts.dispatches}
        assert "repro.shard.worker.shard_main" in dispatched
