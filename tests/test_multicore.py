"""Tests for the 4-core simulation (§VI-E)."""

import pytest

from repro.simulation import SimulationConfig, simulate_multicore
from repro.workloads import mix_profiles

SIM = SimulationConfig(n_events=300, scale=0.02, seed=4)


class TestMulticore:
    def test_runs_a_mix(self):
        profiles = mix_profiles("mix2")
        result = simulate_multicore(profiles, "compresso", SIM, "mix2")
        assert result.mix == "mix2"
        assert len(result.core_cycles) == 4
        assert all(c > 0 for c in result.core_cycles)
        assert all(i > 0 for i in result.core_instructions)

    def test_speedup_is_geomean_of_cores(self):
        profiles = mix_profiles("mix6")
        base = simulate_multicore(profiles, "uncompressed", SIM)
        comp = simulate_multicore(profiles, "compresso", SIM)
        speedup = comp.speedup_over(base)
        assert 0.3 < speedup < 3.0

    def test_shared_controller_sees_all_cores(self):
        profiles = mix_profiles("mix2")
        result = simulate_multicore(profiles, "compresso", SIM)
        # Demand accesses = all cores' events.
        assert result.controller_stats.demand_accesses == 4 * SIM.n_events

    def test_metadata_pressure_of_mix10(self):
        """Mix10 (three graph thrashers) stresses the shared cache more
        than the compute-bound mix6 (§VII-B)."""
        hot = simulate_multicore(mix_profiles("mix10"), "compresso", SIM)
        cold = simulate_multicore(mix_profiles("mix6"), "compresso", SIM)
        assert hot.metadata_hit_rate < cold.metadata_hit_rate

    def test_determinism(self):
        profiles = mix_profiles("mix4")
        a = simulate_multicore(profiles, "lcp", SIM)
        b = simulate_multicore(profiles, "lcp", SIM)
        assert a.core_cycles == b.core_cycles

    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError):
            simulate_multicore([], "compresso", SIM)
