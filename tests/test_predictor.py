"""Tests for the page-overflow predictor (§IV-B2, Fig. 5b)."""

import pytest

from repro.core.predictor import PageOverflowPredictor, SaturatingCounter


class TestSaturatingCounter:
    def test_saturates_high(self):
        counter = SaturatingCounter(2)
        for _ in range(10):
            counter.increment()
        assert counter.value == 3

    def test_saturates_low(self):
        counter = SaturatingCounter(2, value=1)
        for _ in range(5):
            counter.decrement()
        assert counter.value == 0

    def test_high_bit(self):
        counter = SaturatingCounter(2)
        assert not counter.high_bit_set
        counter.increment()
        assert not counter.high_bit_set
        counter.increment()
        assert counter.high_bit_set

    def test_three_bit_range(self):
        counter = SaturatingCounter(3)
        for _ in range(20):
            counter.increment()
        assert counter.value == 7

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            SaturatingCounter(0)

    def test_invalid_initial_value(self):
        with pytest.raises(ValueError):
            SaturatingCounter(2, value=4)


class TestPageOverflowPredictor:
    def _pressurize(self, predictor, page=1):
        """Drive both local and global counters to their high states."""
        for _ in range(2):
            predictor.on_line_overflow(page)
        for _ in range(4):
            predictor.on_page_overflow()

    def test_fires_only_when_both_high(self):
        predictor = PageOverflowPredictor()
        assert not predictor.should_inflate(1)
        # Local high, global low: no.
        predictor.on_line_overflow(1)
        predictor.on_line_overflow(1)
        assert not predictor.should_inflate(1)
        # Global high too: yes.
        for _ in range(4):
            predictor.on_page_overflow()
        assert predictor.should_inflate(1)
        # Other pages without local pressure stay cold.
        assert not predictor.should_inflate(2)

    def test_underflow_cools_local(self):
        predictor = PageOverflowPredictor()
        self._pressurize(predictor)
        assert predictor.should_inflate(1)
        predictor.on_line_underflow(1)
        assert not predictor.should_inflate(1)

    def test_page_shrink_cools_global(self):
        predictor = PageOverflowPredictor()
        self._pressurize(predictor)
        for _ in range(4):
            predictor.on_page_shrink()
        assert not predictor.should_inflate(1)

    def test_disabled_never_fires(self):
        predictor = PageOverflowPredictor(enabled=False)
        self._pressurize(predictor)
        assert not predictor.should_inflate(1)

    def test_eviction_drops_local_state(self):
        """Local counters live in the metadata cache (§IV-B2)."""
        predictor = PageOverflowPredictor()
        self._pressurize(predictor)
        predictor.drop_page(1)
        assert not predictor.should_inflate(1)
        assert predictor.local_value(1) == 0
        # Global state survives eviction.
        assert predictor.global_value >= 4

    def test_local_counters_are_per_page(self):
        predictor = PageOverflowPredictor()
        predictor.on_line_overflow(1)
        predictor.on_line_overflow(1)
        predictor.on_line_overflow(2)
        assert predictor.local_value(1) == 2
        assert predictor.local_value(2) == 1
