"""Property-based tests of controller invariants under random operation
sequences (hypothesis-driven, small geometry so shrinking is useful)."""

import struct

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    CompressedMemoryController,
    compresso_config,
    lcp_config,
)
from repro.memory import MemoryGeometry

N_PAGES = 6
LINE_KINDS = 4


def line_for(kind: int, salt: int) -> bytes:
    """Four data kinds spanning the compressibility range."""
    if kind == 0:
        return bytes(64)
    if kind == 1:  # tiny deltas -> ~8 B under BPC
        return struct.pack("<16I", *[(salt * 3 + i) & 0xFFFF
                                     for i in range(16)])
    if kind == 2:  # mid-size
        return struct.pack("<8Q", *[0x7F0000000000 + (salt + i) * 64
                                    for i in range(8)])
    return bytes((salt * 131 + i * 197 + 89) % 256 for i in range(64))


operations = st.lists(
    st.tuples(
        st.booleans(),                                 # write?
        st.integers(min_value=0, max_value=N_PAGES - 1),
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=LINE_KINDS - 1),
        st.integers(min_value=0, max_value=7),         # salt
    ),
    min_size=1, max_size=120,
)


def build(config):
    geometry = MemoryGeometry(installed_bytes=8 << 20, advertised_ratio=2.0)
    return CompressedMemoryController(config, geometry)


def run_ops(controller, ops, shadow):
    for is_write, page, line, kind, salt in ops:
        if is_write:
            data = line_for(kind, salt)
            controller.write_line(page, line, data)
            shadow[(page, line)] = data
        else:
            result = controller.read_line(page, line)
            expected = shadow.get((page, line), bytes(64))
            assert result.data == expected


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=operations)
def test_compresso_read_your_writes(ops):
    """Reads always return the last written data (or zeros)."""
    controller = build(compresso_config())
    run_ops(controller, ops, {})


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=operations)
def test_lcp_read_your_writes(ops):
    controller = build(lcp_config())
    run_ops(controller, ops, {})


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=operations)
def test_structural_invariants_hold(ops):
    """After any operation sequence: metadata invariants, exact chunk
    accounting, and layouts that fit their allocations."""
    controller = build(compresso_config())
    run_ops(controller, ops, {})
    controller.flush_metadata()

    allocator = controller.memory.allocator
    assert (allocator.used_chunks + allocator.free_chunks
            == allocator.total_chunks)
    expected_chunks = 0
    for state in controller.pages.values():
        state.meta.check(controller.config)
        expected_chunks += state.meta.size_chunks
        if state.meta.valid and state.meta.compressed:
            layout = controller._layout(state)
            assert layout.total_bytes <= state.allocation_bytes
            # Slots hold the data assigned to them.
            for line, size in enumerate(state.ideal_sizes):
                location = layout.locate(line)
                if not location.inflated:
                    if location.size == 0:
                        assert size == 0  # zero slot => logically zero line
                    else:
                        assert size <= location.size
    assert allocator.used_chunks == expected_chunks


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=operations)
def test_metadata_encode_decode_all_states(ops):
    """Every reachable metadata state survives the 64-byte encoding."""
    from repro.core.metadata import PageMetadata

    controller = build(compresso_config())
    run_ops(controller, ops, {})
    for state in controller.pages.values():
        decoded = PageMetadata.decode(state.meta.encode())
        assert decoded.size_chunks == state.meta.size_chunks
        assert decoded.line_bins == state.meta.line_bins
        assert decoded.inflated_lines == state.meta.inflated_lines


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(salt=st.integers(min_value=0, max_value=2 ** 16),
       survivors=st.integers(min_value=0, max_value=3))
def test_degraded_mode_always_exits_once_headroom_returns(salt, survivors):
    """Degraded mode is never sticky: however the node was exhausted,
    freeing the transient pages restores normal mode with balanced
    allocator books and a clean scrub (docs/PRESSURE.md)."""
    geometry = MemoryGeometry(installed_bytes=1 << 20, advertised_ratio=4.0)
    controller = CompressedMemoryController(compresso_config(), geometry)
    page = 0
    while controller.stats.alloc_denials == 0:
        assert page < controller.geometry.ospa_pages, "never exhausted"
        for line in range(64):
            controller.write_line(page, line,
                                  line_for(3, salt + page * 64 + line))
        page += 1
    assert controller.degraded_mode
    for victim in range(survivors, page):
        controller.free_page(victim)
    assert not controller.degraded_mode
    assert controller.stats.degraded_exits >= 1
    assert controller.scrub() == 0
    allocator = controller.memory.allocator
    assert (allocator.used_chunks + allocator.free_chunks
            == allocator.total_chunks)
