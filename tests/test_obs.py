"""Tests for the observability layer (repro.obs, docs/OBSERVABILITY.md).

Covers the no-op default tracer (zero events, bounded overhead), the
reconciliation invariant between trace events and ControllerStats, the
timeline/digest math, the exporters, the ControllerStats satellites
(hit rate on zero lookups, defensive merge), the metric registry, and
the trace CLI end to end.
"""

import json
import time

import pytest

from repro.analysis.__main__ import main as analysis_main
from repro.core.stats import ControllerStats
from repro.obs import (
    EVENT_SOURCES,
    NULL_TRACER,
    SOURCES,
    MetricRegistry,
    TraceEvent,
    Tracer,
    build_timeline,
    chrome_trace,
    events_csv,
    filter_events,
    sample_controller,
    summary,
    timeline_csv,
    timeline_digest,
)
from repro.runner import RunJournal, Runner, read_journal
from repro.simulation.simulator import SimulationConfig, simulate
from repro.workloads.profiles import PROFILES

SIM = SimulationConfig(n_events=1500, scale=0.02, seed=3)


def traced_run(profile="gcc", window=200, sim=SIM):
    tracer = Tracer(digest_window=window)
    result = simulate(PROFILES[profile], "compresso", sim, tracer=tracer)
    return tracer, result


class TestNullTracer:
    def test_is_inert(self):
        NULL_TRACER.tick()
        NULL_TRACER.tick(5)
        NULL_TRACER.emit("repack", page=3, extra=7, anything=True)
        with NULL_TRACER.phase("simulate"):
            pass
        assert NULL_TRACER.clock == 0
        assert NULL_TRACER.events == ()
        assert NULL_TRACER.phase_spans == ()
        assert not NULL_TRACER.enabled

    def test_untraced_simulation_stays_untraced(self):
        result = simulate(PROFILES["gcc"], "compresso", SIM)
        assert result.timeline is None
        assert NULL_TRACER.events == ()

    def test_disabled_overhead_under_five_percent(self):
        """Per-call null-tracer cost x call volume must stay well under
        5% of the simulation's own wall time."""
        tracer, result = traced_run()
        sim_wall = sum(
            duration for name, _s, duration in tracer.phase_spans
            if name == "simulate")
        # Calls the instrumentation makes during the simulate phase:
        # one tick per demand access plus one emit per event.
        calls = tracer.clock + len(tracer.events)

        reps = 200_000
        start = time.perf_counter()
        for _ in range(reps):
            NULL_TRACER.tick()
        per_call = (time.perf_counter() - start) / reps
        assert per_call * calls < 0.05 * sim_wall


class TestReconciliation:
    def test_clock_tracks_demand_accesses(self):
        tracer, result = traced_run()
        assert tracer.clock == result.controller_stats.demand_accesses

    def test_per_source_extras_match_stats(self):
        tracer, result = traced_run()
        stats = result.controller_stats
        by_source = tracer.extra_by_source()
        assert by_source["split"] == stats.split_accesses
        assert by_source["overflow"] == stats.compression_change_accesses
        assert by_source["metadata"] == (
            stats.metadata_miss_accesses + stats.metadata_writebacks)
        assert tracer.total_extra() == stats.extra_accesses

    def test_event_counts_match_stats_counters(self):
        tracer, result = traced_run()
        stats = result.controller_stats
        counts = tracer.counts()
        assert counts.get("repack", 0) == stats.repack_events
        assert counts.get("page_overflow", 0) == stats.page_overflows
        assert counts.get("metadata_miss", 0) == stats.metadata_misses
        assert counts.get("metadata_hit", 0) == stats.metadata_hits
        assert counts.get("line_overflow", 0) == stats.line_overflows
        assert counts.get("line_underflow", 0) == stats.line_underflows
        assert counts.get("zero_line_read", 0) == stats.zero_line_reads
        assert counts.get("ir_expansion", 0) == stats.ir_expansions
        assert counts.get("predictor_inflation", 0) == (
            stats.predictor_inflations)

    def test_timeline_digest_sums_to_extra_accesses(self):
        tracer, result = traced_run()
        stats = result.controller_stats
        digest = result.timeline
        assert digest["extra_accesses"] == stats.extra_accesses
        assert sum(digest["by_source"].values()) == stats.extra_accesses
        assert digest["window"] == 200

    def test_phases_recorded(self):
        tracer, _ = traced_run()
        phases = tracer.phase_seconds()
        assert set(phases) == {"install", "simulate", "flush"}
        assert all(seconds >= 0 for seconds in phases.values())


class TestTimeline:
    def events(self):
        return [
            TraceEvent("split_access", clock=5, extra=2),
            TraceEvent("metadata_miss", clock=12, page=1, extra=1),
            TraceEvent("repack", clock=12, page=1, extra=4),
            TraceEvent("line_overflow", clock=25, page=2),
        ]

    def test_windows_are_contiguous_and_lossless(self):
        windows = build_timeline(self.events(), window=10, end_clock=40)
        assert [w.index for w in windows] == [0, 1, 2, 3]
        assert windows[0].extra_by_source["split"] == 2
        assert windows[1].extra_by_source["metadata"] == 1
        assert windows[1].extra_by_source["overflow"] == 4
        assert windows[2].event_counts == {"line_overflow": 1}
        assert windows[3].total_extra == 0
        assert sum(w.total_extra for w in windows) == 7

    def test_digest_peak(self):
        digest = timeline_digest(self.events(), window=10, end_clock=40)
        assert digest["n_windows"] == 4
        assert digest["events"] == 4
        assert digest["peak"] == {"index": 1, "start_clock": 10, "extra": 5}

    def test_empty_trace(self):
        assert build_timeline([], window=10) == []
        digest = timeline_digest([], window=10)
        assert digest["extra_accesses"] == 0
        assert digest["peak"] is None

    def test_filter_events(self):
        events = self.events()
        assert len(filter_events(events, ["repack"])) == 1
        assert filter_events(events) == events


class TestExporters:
    def test_chrome_trace_structure(self):
        tracer, _ = traced_run()
        trace = chrome_trace(tracer)
        text = json.dumps(trace)        # must be JSON-serializable
        data = json.loads(text)
        events = data["traceEvents"]
        assert isinstance(events, list) and events
        phases = {event["ph"] for event in events}
        assert {"M", "i", "C", "X"} <= phases
        for event in events:
            assert "ph" in event and "pid" in event
            if event["ph"] in ("i", "C", "X"):
                assert "ts" in event
        counters = [e for e in events if e["ph"] == "C"]
        total = sum(sum(e["args"].values()) for e in counters)
        assert total == tracer.total_extra()

    def test_csv_exports(self):
        tracer, _ = traced_run()
        windows = build_timeline(tracer.events, 200, end_clock=tracer.clock)
        csv = timeline_csv(windows)
        lines = csv.strip().splitlines()
        assert lines[0].startswith("window,start_clock")
        assert len(lines) == len(windows) + 1
        raw = events_csv(tracer.events)
        assert len(raw.strip().splitlines()) == len(tracer.events) + 1

    def test_summary_reports_reconciliation(self):
        tracer, result = traced_run()
        report = summary(tracer, stats=result.controller_stats)
        assert "reconciles: True" in report
        assert "busiest windows" in report


class TestControllerStatsSatellites:
    def test_hit_rate_none_on_zero_lookups(self):
        stats = ControllerStats()
        assert stats.metadata_hit_rate() is None
        assert stats.metadata_lookups == 0

    def test_hit_rate_with_traffic(self):
        stats = ControllerStats(metadata_hits=3, metadata_misses=1)
        assert stats.metadata_lookups == 4
        assert stats.metadata_hit_rate() == pytest.approx(0.75)

    def test_uncompressed_run_reports_no_hit_rate(self):
        result = simulate(PROFILES["gcc"], "uncompressed", SIM)
        assert result.metadata_hit_rate is None

    def test_merge_roundtrips_through_as_dict(self):
        a = ControllerStats(demand_reads=5, split_accesses=2,
                            metadata_misses=1)
        b = ControllerStats(demand_reads=7, repack_accesses=3,
                            metadata_misses=2)
        expected = {
            name: a.as_dict()[name] + b.as_dict()[name]
            for name in a.as_dict()
        }
        a.merge(b)
        assert a.as_dict() == expected

    def test_merge_skips_non_integer_fields(self):
        a = ControllerStats(demand_reads=5)
        b = ControllerStats(demand_reads=7)
        b.demand_writes = 1.5          # a derived/corrupted field
        a.merge(b)
        assert a.demand_reads == 12
        assert a.demand_writes == 0    # skipped, not summed into nonsense

    def test_breakdown_sums_to_relative_extra(self):
        _, result = traced_run()
        stats = result.controller_stats
        assert sum(stats.breakdown().values()) == pytest.approx(
            stats.relative_extra_accesses())

    def test_bind_registry_exposes_live_counters(self):
        stats = ControllerStats(demand_reads=2, split_accesses=1)
        registry = stats.bind_registry(MetricRegistry())
        collected = registry.collect()
        assert collected["controller.split_accesses"] == 1
        assert collected["controller.extra_accesses"] == 1
        assert collected["controller.metadata_hit_rate"] is None
        stats.split_accesses += 1      # pull metrics read live state
        assert registry.collect()["controller.split_accesses"] == 2


class TestMetricRegistry:
    def test_counter_gauge_histogram(self):
        registry = MetricRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(1.5)
        histogram = registry.histogram("h", (8, 16))
        histogram.observe(4)
        histogram.observe(12)
        histogram.observe(99)
        collected = registry.collect()
        assert collected["c"] == 3
        assert collected["g"] == 1.5
        assert collected["h"]["count"] == 3
        assert collected["h"]["buckets"] == {"<=8": 1, "8..16": 1, ">16": 1}

    def test_duplicate_pull_name_rejected(self):
        registry = MetricRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.register("x", lambda: 1)

    def test_histogram_percentiles(self):
        from repro.obs.metrics import Histogram
        # Single-valued buckets (8-byte line-size steps): exact.
        histogram = Histogram("h", (0, 8, 16, 24, 32))
        for value, repeats in ((8, 50), (16, 45), (24, 4), (32, 1)):
            for _ in range(repeats):
                histogram.observe(value)
        assert histogram.percentile(50) == 8
        assert histogram.percentile(95) == 16
        assert histogram.percentile(99) == 24
        assert histogram.percentile(100) == 32
        assert histogram.percentile(0) == 0    # lower edge of first bucket

    def test_histogram_percentile_interpolates(self):
        from repro.obs.metrics import Histogram
        histogram = Histogram("h", (0, 100))
        for _ in range(100):
            histogram.observe(50)    # all in the (0, 100] bucket
        # Interpolation places the median mid-bucket.
        assert histogram.percentile(50) == pytest.approx(50.0)

    def test_histogram_overflow_capped_at_maximum(self):
        from repro.obs.metrics import Histogram
        histogram = Histogram("h", (8,))
        histogram.observe(4)
        histogram.observe(500)
        assert histogram.maximum == 500
        assert histogram.percentile(99) == 500

    def test_histogram_percentile_edge_cases(self):
        from repro.obs.metrics import Histogram
        histogram = Histogram("h", (8,))
        assert histogram.percentile(50) == 0.0    # empty
        with pytest.raises(ValueError):
            histogram.percentile(101)
        with pytest.raises(ValueError):
            histogram.percentile(-1)

    def test_histogram_as_dict_carries_percentiles(self):
        registry = MetricRegistry()
        histogram = registry.histogram("h", (8, 16))
        for value in (4, 8, 12, 16, 99):
            histogram.observe(value)
        collected = registry.collect()["h"]
        assert {"p50", "p95", "p99"} <= set(collected)
        assert collected["p50"] == pytest.approx(histogram.percentile(50))

    def test_summary_shows_percentiles(self):
        from repro.core import CompressedMemoryController, compresso_config
        from repro.memory import MemoryGeometry

        tracer, _ = traced_run()
        controller = CompressedMemoryController(
            compresso_config(),
            MemoryGeometry(installed_bytes=32 << 20))
        controller.write_line(0, 0, bytes(range(64)))
        registry = sample_controller(controller)
        text = summary(tracer, registry=registry)
        assert "p50=" in text and "p95=" in text and "p99=" in text

    def test_sample_controller(self):
        from repro.core import CompressedMemoryController, compresso_config
        from repro.memory import MemoryGeometry

        controller = CompressedMemoryController(
            compresso_config(),
            MemoryGeometry(installed_bytes=32 << 20))
        controller.write_line(0, 0, bytes(range(64)))
        collected = sample_controller(controller).collect()
        assert collected["pages.resident"] >= 1
        assert collected["lines.compressed_size_bytes"]["count"] > 0
        assert 0.0 <= collected["metadata_cache.occupancy"] <= 1.0
        assert "allocator.fragmentation" in collected


class TestEventRegistry:
    def test_sources_are_registered(self):
        assert set(EVENT_SOURCES.values()) <= set(SOURCES) | {None}
        for name in ("split_access", "overflow_traffic", "repack",
                     "metadata_miss", "metadata_writeback"):
            assert EVENT_SOURCES[name] is not None


class TestTraceCli:
    def test_trace_command_end_to_end(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        csv = tmp_path / "timeline.csv"
        code = analysis_main([
            "trace", "--filter", "gcc", "--window", "200",
            "--events", "1200", "--out", str(out), "--csv", str(csv),
        ])
        assert code == 0
        printed = capsys.readouterr().out
        assert "reconciles: True" in printed
        data = json.loads(out.read_text())
        assert data["traceEvents"]
        assert csv.read_text().startswith("window,start_clock")

    def test_run_command_journals_timeline(self, tmp_path):
        from repro.analysis.experiments import QUICK, run_fig4
        import dataclasses

        scale = dataclasses.replace(
            QUICK, n_events=400, benchmarks=("gcc",),
            trace_window=100)
        journal = RunJournal(tmp_path / "runs.jsonl")
        runner = Runner(journal=journal)
        run_fig4(scale, runner=runner)
        ends = [record for record in read_journal(journal.path)
                if record["event"] == "unit_end"]
        assert ends and all("timeline" in record for record in ends)
        digest = ends[0]["timeline"]
        assert digest["window"] == 100
        assert digest["extra_accesses"] == sum(digest["by_source"].values())
