"""Tests for OS-transparent out-of-memory handling (§V-B, Fig. 8).

Exhaustion no longer raises out of the controller: when ballooning and
the emergency repack sweep both come up short, the controller enters
degraded mode and denies new compression instead (docs/ROBUSTNESS.md).
"""

import pytest

from repro.core import (
    BalloonDriver,
    CompressedMemoryController,
    FreeListOSModel,
    compresso_config,
)
from repro.memory import MemoryGeometry
from repro.osmodel import VirtualMemory


def tiny_controller():
    """A controller with very little machine memory (fills quickly)."""
    geometry = MemoryGeometry(installed_bytes=2 * 1024 * 1024,
                              advertised_ratio=4.0)
    return CompressedMemoryController(compresso_config(), geometry)


def incompressible(seed: int) -> bytes:
    import random
    rng = random.Random(seed)
    return bytes(rng.getrandbits(8) for _ in range(64))


def fill_until_denied(ctrl):
    """Write incompressible pages until degraded mode starts denying."""
    page = 0
    while ctrl.stats.alloc_denials == 0:
        assert page < ctrl.geometry.ospa_pages, "never hit exhaustion"
        for line in range(64):
            ctrl.write_line(page, line, incompressible(page * 64 + line))
        page += 1
    return page


class TestOutOfMemory:
    def test_exhaustion_degrades_without_balloon(self):
        ctrl = tiny_controller()
        fill_until_denied(ctrl)
        assert ctrl.degraded_mode
        assert ctrl.stats.alloc_exhaustions == 1
        assert ctrl.stats.alloc_denials >= 1

    def test_balloon_that_cannot_help_degrades(self):
        ctrl = tiny_controller()
        victims = list(range(4000, 5000))
        BalloonDriver(ctrl, FreeListOSModel(victims))
        # Victim pages are unmapped (zero): reclaiming them frees no
        # chunks, so the balloon comes up short and the controller
        # degrades instead of raising.
        fill_until_denied(ctrl)
        assert ctrl.stats.balloon_inflations >= 1
        assert ctrl.degraded_mode

    def test_balloon_reclaims_cold_data_pages(self):
        ctrl = tiny_controller()
        # Populate pages until machine memory is nearly full.
        page = 0
        while ctrl.memory.allocator.free_chunks > 16:
            for line in range(64):
                ctrl.write_line(page, line, incompressible(page * 64 + line))
            page += 1
        cold = [(victim, True) for victim in range(page // 2)]
        BalloonDriver(ctrl, FreeListOSModel([], cold), safety_chunks=8)
        # Keep writing; the balloon must reclaim cold pages to make room.
        for extra in range(page + 1, page + 6):
            for line in range(64):
                ctrl.write_line(extra, line, incompressible(extra * 64 + line))
        assert ctrl.stats.balloon_inflations > 0
        assert ctrl.stats.balloon_pages_reclaimed > 0
        # Reclaimed pages read back as zeros (they were paged out).
        assert ctrl.read_line(0, 0).data == bytes(64)

    def test_deflate_returns_pages(self):
        ctrl = tiny_controller()
        driver = BalloonDriver(ctrl, FreeListOSModel([]), safety_chunks=0)
        driver._held_pages = [1, 2, 3]
        assert driver.deflate(2) == [1, 2]
        assert driver.held_pages == 1


class TestVirtualMemoryIntegration:
    def test_balloon_takes_free_then_cold(self):
        vm = VirtualMemory(total_pages=64)
        pages = [vm.allocate_page() for _ in range(60)]
        for page in pages[:10]:
            vm.touch(page, dirty=True)
        # 4 free pages remain; then cold (LRU) allocated pages follow.
        assert vm.take_free_page() is not None
        for _ in range(3):
            vm.take_free_page()
        assert vm.take_free_page() is None
        page, dirty = vm.take_cold_page()
        assert page == pages[10]  # oldest untouched page
        assert not dirty

    def test_cold_page_dirty_flag(self):
        vm = VirtualMemory(total_pages=8)
        page = vm.allocate_page()
        vm.touch(page, dirty=True)
        taken, dirty = vm.take_cold_page()
        assert taken == page
        assert dirty

    def test_allocate_free_cycle(self):
        vm = VirtualMemory(total_pages=4)
        pages = [vm.allocate_page() for _ in range(4)]
        with pytest.raises(MemoryError):
            vm.allocate_page()
        vm.free_page(pages[0])
        assert vm.allocate_page() == pages[0]

    def test_touch_requires_allocated(self):
        vm = VirtualMemory(total_pages=4)
        with pytest.raises(ValueError):
            vm.touch(0)

    def test_double_free_rejected(self):
        vm = VirtualMemory(total_pages=4)
        page = vm.allocate_page()
        vm.free_page(page)
        with pytest.raises(ValueError):
            vm.free_page(page)
