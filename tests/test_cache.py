"""Tests for the cache hierarchy substrate."""

import pytest

from repro.cache import Cache, CacheHierarchy, HierarchyConfig


class TestCache:
    def test_hit_after_fill(self):
        cache = Cache(4 * 1024, assoc=4)
        hit, _ = cache.access(0x1000, is_write=False)
        assert not hit
        hit, _ = cache.access(0x1000, is_write=False)
        assert hit

    def test_same_line_different_bytes(self):
        cache = Cache(4 * 1024, assoc=4)
        cache.access(0x1000, is_write=False)
        hit, _ = cache.access(0x1030, is_write=False)  # same 64 B line
        assert hit

    def test_lru_eviction(self):
        cache = Cache(2 * 64, assoc=2, line_size=64)  # 1 set, 2 ways
        cache.access(0, False)
        cache.access(64, False)
        cache.access(0, False)       # 0 becomes MRU
        cache.access(128, False)     # evicts 64
        assert cache.contains(0)
        assert not cache.contains(64)

    def test_dirty_victim_writeback(self):
        cache = Cache(2 * 64, assoc=2, line_size=64)
        cache.access(0, is_write=True)
        cache.access(64, False)
        _, victim = cache.access(128, False)
        assert victim == 0
        assert cache.stats.writebacks == 1

    def test_clean_victim_no_writeback(self):
        cache = Cache(2 * 64, assoc=2, line_size=64)
        cache.access(0, False)
        cache.access(64, False)
        _, victim = cache.access(128, False)
        assert victim is None

    def test_victim_address_reconstruction(self):
        cache = Cache(4 * 64 * 8, assoc=4, line_size=64)  # 8 sets
        address = 8 * 64 * 5 + 64 * 3  # set 3, tag 5
        cache.access(address, is_write=True)
        for tag in range(6, 10):
            cache.access((tag * 8 + 3) * 64, False)
        assert cache.stats.writebacks == 1
        # flush() on a fresh cache with same content reproduces address
        cache2 = Cache(4 * 64 * 8, assoc=4, line_size=64)
        cache2.access(address, is_write=True)
        assert cache2.flush() == [address]

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            Cache(1000, assoc=3)

    def test_stats_rates(self):
        cache = Cache(4 * 1024, assoc=4)
        cache.access(0, False)
        cache.access(0, False)
        assert cache.stats.hit_rate() == 0.5
        assert cache.stats.miss_rate() == 0.5


class TestHierarchy:
    def test_miss_propagates_to_memory(self):
        hierarchy = CacheHierarchy()
        events = hierarchy.access(0x10000, is_write=False)
        assert len(events) == 1
        assert not events[0].is_writeback

    def test_l1_hit_produces_no_events(self):
        hierarchy = CacheHierarchy()
        hierarchy.access(0x10000, is_write=False)
        assert hierarchy.access(0x10000, is_write=False) == []

    def test_dirty_data_eventually_written_back(self):
        config = HierarchyConfig(
            l1_bytes=2 * 64, l1_assoc=2,
            l2_bytes=4 * 64, l2_assoc=4,
            l3_bytes=8 * 64, l3_assoc=8,
        )
        hierarchy = CacheHierarchy(config)
        hierarchy.access(0, is_write=True)
        writebacks = []
        for i in range(1, 64):
            for event in hierarchy.access(i * 64, is_write=False):
                if event.is_writeback:
                    writebacks.append(event.address)
        writebacks.extend(e.address for e in hierarchy.flush()
                          if e.is_writeback)
        assert 0 in writebacks

    def test_flush_returns_all_dirty(self):
        hierarchy = CacheHierarchy()
        for i in range(10):
            hierarchy.access(i * 64, is_write=True)
        flushed = {e.address for e in hierarchy.flush() if e.is_writeback}
        assert flushed == {i * 64 for i in range(10)}

    def test_shared_l3(self):
        shared = Cache(1 << 20, 16, name="sharedL3")
        a = CacheHierarchy(shared_l3=shared)
        b = CacheHierarchy(shared_l3=shared)
        a.access(0x40000, is_write=False)
        # Second core misses its private levels but hits the shared L3.
        events = b.access(0x40000, is_write=False)
        assert events == []

    def test_stats_structure(self):
        hierarchy = CacheHierarchy()
        hierarchy.access(0, False)
        stats = hierarchy.stats()
        assert stats["l1"].misses == 1
        assert stats["l3"].misses == 1
