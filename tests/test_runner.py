"""Tests for the parallel experiment runner, cache and journal."""

import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.analysis import ExperimentScale, run_fig2
from repro.runner import (
    ResultCache,
    RunJournal,
    Runner,
    WorkUnit,
    canonical,
    read_journal,
    timing_table,
    unit_key,
    validate_event,
)

TINY = ExperimentScale(n_events=400, scale=0.02, capacity_touches=2000,
                       capacity_footprint_cap=60, fig2_pages=6,
                       benchmarks=("gcc", "mcf"), mixes=("mix2",))


def _double(x):
    """Module-level so it pickles across the multiprocessing boundary."""
    return {"row": {"x": x * 2}}


def _touch(counter_file, x):
    """Unit that records each real execution in a side-effect file."""
    with open(counter_file, "a") as handle:
        handle.write(f"{x}\n")
    return {"row": {"x": x}, "stats": {"demand_accesses": x}}


def _scaled(x, scale):
    """Unit taking the conventional ``scale`` param (seed journaling)."""
    return {"row": {"x": x, "seed": scale.seed}}


def _unit(fn, params, label="u"):
    return WorkUnit(experiment="test", label=f"test/{label}", fn=fn,
                    params=params)


class TestKeys:
    def test_key_is_stable(self):
        a = unit_key("f", {"benchmark": "gcc", "scale": TINY})
        b = unit_key("f", {"scale": TINY, "benchmark": "gcc"})
        assert a == b

    def test_key_changes_with_config_field(self):
        base = unit_key("f", {"scale": TINY})
        reseeded = unit_key("f", {"scale": replace(TINY, seed=2)})
        rescaled = unit_key("f", {"scale": replace(TINY, n_events=401)})
        assert base != reseeded
        assert base != rescaled
        assert reseeded != rescaled

    def test_key_changes_with_unit_name(self):
        assert unit_key("f", {"x": 1}) != unit_key("g", {"x": 1})

    def test_canonical_rejects_non_data(self):
        with pytest.raises(TypeError):
            canonical({"fn": lambda: None})

    def test_canonical_tuples_and_dataclasses(self):
        value = canonical({"scale": TINY, "pair": (1, 2)})
        assert value["pair"] == [1, 2]
        assert value["scale"]["__dataclass__"] == "ExperimentScale"
        json.dumps(value)    # must be JSON-serializable


class TestCache:
    def test_hit_miss_roundtrip(self, tmp_path):
        counter = tmp_path / "calls.txt"
        cache = ResultCache(tmp_path / "cache")
        units = [_unit(_touch, {"counter_file": str(counter), "x": 7})]

        cold = Runner(cache=cache).map(units)
        assert counter.read_text().splitlines() == ["7"]
        warm = Runner(cache=cache).map(units)
        # Second invocation is served from the cache: no new execution,
        # byte-identical result.
        assert counter.read_text().splitlines() == ["7"]
        assert json.dumps(cold) == json.dumps(warm)
        assert len(cache) == 1

    def test_param_change_invalidates(self, tmp_path):
        counter = tmp_path / "calls.txt"
        cache = ResultCache(tmp_path / "cache")
        runner = Runner(cache=cache)
        runner.map([_unit(_touch, {"counter_file": str(counter), "x": 1})])
        runner.map([_unit(_touch, {"counter_file": str(counter), "x": 2})])
        assert counter.read_text().splitlines() == ["1", "2"]
        assert len(cache) == 2

    def test_config_dataclass_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key_a = unit_key("f", {"scale": TINY})
        key_b = unit_key("f", {"scale": replace(TINY, seed=99)})
        cache.put(key_a, _unit(_double, {"x": 1}), {"row": {"x": 2}})
        assert cache.get(key_a) == {"row": {"x": 2}}
        assert cache.get(key_b) is None

    def test_corrupt_cell_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = unit_key("f", {"x": 1})
        cache.put(key, _unit(_double, {"x": 1}), {"row": {"x": 2}})
        (tmp_path / "cache" / f"{key}.json").write_text("{ torn")
        assert cache.get(key) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put(unit_key("f", {"x": 1}), _unit(_double, {"x": 1}), {})
        assert cache.clear() == 1
        assert len(cache) == 0


class TestParallel:
    def test_results_in_submission_order(self):
        units = [_unit(_double, {"x": x}, label=str(x))
                 for x in (5, 3, 9, 1, 7)]
        results = Runner(jobs=4).map(units)
        assert [r["row"]["x"] for r in results] == [10, 6, 18, 2, 14]

    def test_jobs1_vs_jobs4_identical_experiment(self):
        serial = run_fig2(TINY, runner=Runner(jobs=1))
        parallel = run_fig2(TINY, runner=Runner(jobs=4))
        assert json.dumps(serial.rows) == json.dumps(parallel.rows)
        assert json.dumps(serial.summary) == json.dumps(parallel.summary)

    def test_parallel_populates_cache_serial_reads_it(self, tmp_path):
        counter = tmp_path / "calls.txt"
        cache = ResultCache(tmp_path / "cache")
        units = [_unit(_touch, {"counter_file": str(counter), "x": x},
                       label=str(x)) for x in range(3)]
        first = Runner(jobs=3, cache=cache).map(units)
        second = Runner(jobs=1, cache=cache).map(units)
        assert json.dumps(first) == json.dumps(second)
        assert sorted(counter.read_text().splitlines()) == ["0", "1", "2"]


class TestJournal:
    def _run(self, tmp_path, jobs=1, cache=None):
        journal = RunJournal(tmp_path / "runs.jsonl")
        counter = tmp_path / "calls.txt"
        units = [_unit(_touch, {"counter_file": str(counter), "x": x},
                       label=str(x)) for x in range(3)]
        Runner(jobs=jobs, cache=cache, journal=journal).map(units)
        return read_journal(tmp_path / "runs.jsonl")

    def test_event_pair_per_unit(self, tmp_path):
        events = self._run(tmp_path)
        starts = [e for e in events if e["event"] == "unit_start"]
        ends = [e for e in events if e["event"] == "unit_end"]
        assert len(starts) == len(ends) == 3
        # Every start is matched by an end for the same unit key.
        assert ({(e["unit"], e["key"]) for e in starts}
                == {(e["unit"], e["key"]) for e in ends})

    def test_events_validate_against_schema(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        events = self._run(tmp_path, jobs=2, cache=cache)
        for event in events:
            assert validate_event(event) == [], event

    def test_cache_hits_are_journaled(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        self._run(tmp_path, cache=cache)
        events = self._run(tmp_path, cache=cache)
        warm_ends = [e for e in events if e["event"] == "unit_end"][3:]
        assert warm_ends and all(e["cached"] for e in warm_ends)

    def test_stats_summary_attached(self, tmp_path):
        events = self._run(tmp_path)
        ends = [e for e in events if e["event"] == "unit_end"]
        assert all(e["stats"]["demand_accesses"] == int(e["unit"].split("/")[1])
                   for e in ends)

    def test_validate_event_flags_problems(self):
        assert validate_event({"event": "nope"})
        assert validate_event([1, 2])
        missing = validate_event(
            {"event": "unit_end", "run_id": "r", "ts": 0.0})
        assert any("wall_s" in problem for problem in missing)


#: One well-formed payload per EVENT_SCHEMA entry, optional fields
#: included — emitted through a real journal and re-validated below.
GOLDEN_EVENTS = {
    "run_start": dict(jobs=2, cache_enabled=True, seeds=3, base_seed=42),
    "unit_start": dict(unit="fig4/gcc", experiment="fig4", key="k",
                       cached=False, seed=42),
    "unit_retry": dict(unit="fig4/gcc", experiment="fig4", key="k",
                       attempt=1, reason="crash", delay_s=0.5),
    "unit_end": dict(unit="fig4/gcc", experiment="fig4", key="k",
                     cached=False, wall_s=0.2, ok=True, seed=42,
                     stats={"compression_ratio": 1.5,
                            "extra_accesses": 9,
                            "metadata_hit_rate": None},
                     timeline={"window": 1000, "extra_accesses": 9,
                               "by_source": {"split": 4, "overflow": 3,
                                             "metadata": 2},
                               "peak": None},
                     sanitizer={"violations": 0}),
    "run_end": dict(wall_s=1.5, units=4, cache_hits=1),
    "bench": dict(out="BENCH_kernels.json", lines=4096,
                  algorithms=["bdi"], best_speedup=14.0, match=True),
    "index": dict(db="results_index.sqlite", sources=["runs.jsonl"],
                  inserted=12),
    "compare": dict(db="results_index.sqlite", run_a="a", run_b="b",
                    metrics=6, regressions=0),
    "shard_run_start": dict(shards=4, mix="mix2", system="compresso",
                            total_steps=1200),
    "shard_recover": dict(shard=1, respawns=1, replayed=3),
    "shard_run_end": dict(shards=4, agreed=True, digest="deadbeef"),
    "chaos": dict(cells=6, injected=21, silent=0, divergent=0,
                  clean=True),
}


class TestJournalSchemaRoundTrip:
    """Every EVENT_SCHEMA entry survives an emit -> read -> validate trip."""

    @pytest.mark.parametrize("event", sorted(GOLDEN_EVENTS))
    def test_emit_then_validate(self, tmp_path, event):
        from repro.runner import EVENT_SCHEMA
        assert set(GOLDEN_EVENTS) == set(EVENT_SCHEMA)
        journal = RunJournal(tmp_path / "runs.jsonl")
        journal.event(event, **GOLDEN_EVENTS[event])
        (record,) = read_journal(tmp_path / "runs.jsonl")
        assert record["event"] == event
        assert validate_event(record) == [], record

    @pytest.mark.parametrize("field,payload,problem", [
        ("stats", ["not", "a", "dict"], "not an object"),
        ("stats", {"extra_accesses": "nine"}, "not a number"),
        ("stats", {"ok": True}, "not a number"),
        ("timeline", {"window": 0, "extra_accesses": 1,
                      "by_source": {}}, "positive"),
        ("timeline", {"window": 10, "extra_accesses": 1,
                      "by_source": {"split": "four"}}, "not an int"),
        ("timeline", {"window": 10, "extra_accesses": 1}, "by_source"),
        ("timeline", {"window": 10, "extra_accesses": 1,
                      "by_source": {}, "peak": 3}, "peak"),
        ("sanitizer", {"violations": -1}, "negative"),
        ("sanitizer", {}, "violations"),
        ("sanitizer", 0, "not an object"),
        ("seed", "42", "not an int"),
        ("seed", True, "not an int"),
    ])
    def test_malformed_optional_payloads_rejected(self, field, payload,
                                                  problem):
        record = {"event": "unit_end", "run_id": "r", "ts": 0.0,
                  "unit": "u", "experiment": "e", "key": None,
                  "cached": False, "wall_s": 0.1, "ok": True,
                  field: payload}
        problems = validate_event(record)
        assert any(field in p and problem in p for p in problems), problems

    def test_optional_payloads_may_be_absent(self):
        record = {"event": "unit_end", "run_id": "r", "ts": 0.0,
                  "unit": "u", "experiment": "e", "key": None,
                  "cached": False, "wall_s": 0.1, "ok": True}
        assert validate_event(record) == []


class TestUnitSeed:
    def test_seed_from_params(self):
        unit = _unit(_double, {"x": 1, "seed": 7})
        assert unit.seed() == 7

    def test_seed_from_scale(self):
        unit = _unit(_double, {"x": 1, "scale": TINY})
        assert unit.seed() == TINY.seed

    def test_no_seed(self):
        unit = _unit(_double, {"x": 1})
        assert unit.seed() is None

    def test_bool_is_not_a_seed(self):
        unit = _unit(_double, {"x": 1, "seed": True})
        assert unit.seed() is None

    def test_runner_journals_seed(self, tmp_path):
        journal = RunJournal(tmp_path / "runs.jsonl")
        seeded = replace(TINY, seed=1234)
        units = [_unit(_scaled, {"x": 1, "scale": seeded})]
        Runner(journal=journal).map(units)
        events = read_journal(tmp_path / "runs.jsonl")
        for event in events:
            assert event["seed"] == 1234
            assert validate_event(event) == []


class TestTimingTable:
    def test_table_lists_units_and_totals(self, tmp_path):
        counter = tmp_path / "calls.txt"
        runner = Runner(cache=ResultCache(tmp_path / "cache"))
        units = [_unit(_touch, {"counter_file": str(counter), "x": x},
                       label=str(x)) for x in range(2)]
        runner.map(units)
        runner.map(units)
        text = timing_table(runner.records)
        assert "test/0" in text and "test/1" in text
        assert "4 units, 2 cache hits" in text
