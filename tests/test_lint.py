"""Tests for the reprolint static-analysis framework (docs/LINTING.md).

Two layers of coverage: the tree itself must lint clean (this is the
tier-1 wiring for ``python -m repro.analysis lint``), and each built-in
rule gets golden fixture snippets proving it fires where it should and
stays quiet where it should not.
"""

import pytest

from repro.analysis.__main__ import main as analysis_main
from repro.check import run_lint
from repro.check.driver import DEFAULT_LINT_DIRS, lint_file, repo_root
from repro.check.findings import Finding, format_finding
from repro.check.rules import all_rules, get_rule

ROOT = repo_root()


def _lint_snippet(tmp_path, relpath, source, rules):
    """Lint one synthetic file rooted at ``tmp_path``."""
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return lint_file(str(path), str(tmp_path), list(rules))


# ---------------------------------------------------------------------------
# the tree itself
# ---------------------------------------------------------------------------

def test_tree_lints_clean():
    """The tier-1 gate: the repository has zero lint errors."""
    report = run_lint()
    assert report.errors == [], report.render()
    assert report.ok and report.exit_code == 0


def test_parallel_lint_matches_serial():
    serial = run_lint(jobs=1)
    parallel = run_lint(jobs=2)
    assert serial.findings == parallel.findings
    assert serial.suppressed == parallel.suppressed


def test_cli_lint_exits_zero(capsys):
    assert analysis_main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "reprolint: OK" in out


def test_cli_list_rules(capsys):
    assert analysis_main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in all_rules():
        assert rule.id in out


def test_rule_catalog_documented():
    """docs/LINTING.md names every registered rule."""
    text = (ROOT / "docs" / "LINTING.md").read_text()
    for rule in all_rules():
        assert f"`{rule.id}`" in text, f"{rule.id} missing from docs/LINTING.md"


# ---------------------------------------------------------------------------
# framework mechanics
# ---------------------------------------------------------------------------

def test_finding_rejects_bad_severity():
    with pytest.raises(ValueError):
        Finding(path="x.py", line=1, rule="r", severity="fatal", message="m")


def test_format_finding():
    finding = Finding(path="a/b.py", line=7, rule="stats-emit",
                      severity="error", message="boom")
    assert format_finding(finding) == "a/b.py:7: [stats-emit] error: boom"


def test_unknown_rule_raises():
    with pytest.raises(KeyError):
        get_rule("no-such-rule")


def test_inline_suppression(tmp_path):
    source = (
        '"""doc."""\n'
        "def f(x=[]):  # reprolint: disable=mutable-default\n"
        "    return x\n"
    )
    kept, suppressed = _lint_snippet(
        tmp_path, "src/repro/mod.py", source, ["mutable-default"])
    assert kept == [] and suppressed == 1


def test_standalone_suppression_covers_next_line(tmp_path):
    source = (
        '"""doc."""\n'
        "# reprolint: disable=mutable-default\n"
        "def f(x=[]):\n"
        "    return x\n"
    )
    kept, suppressed = _lint_snippet(
        tmp_path, "src/repro/mod.py", source, ["mutable-default"])
    assert kept == [] and suppressed == 1


def test_suppress_all(tmp_path):
    source = (
        "def f(x=[]):  # reprolint: disable=all\n"
        "    return x\n"
    )
    kept, suppressed = _lint_snippet(
        tmp_path, "src/repro/mod.py", source,
        ["mutable-default", "module-docstring"])
    # module-docstring anchors at line 1, which carries disable=all.
    assert kept == [] and suppressed == 2


# ---------------------------------------------------------------------------
# golden snippets, one pair per file rule
# ---------------------------------------------------------------------------

def test_module_docstring_rule(tmp_path):
    kept, _ = _lint_snippet(
        tmp_path, "src/repro/bad.py", "x = 1\n", ["module-docstring"])
    assert [f.rule for f in kept] == ["module-docstring"]
    assert kept[0].line == 1

    kept, _ = _lint_snippet(
        tmp_path, "src/repro/good.py", '"""doc."""\nx = 1\n',
        ["module-docstring"])
    assert kept == []

    # outside src/repro the rule does not apply
    kept, _ = _lint_snippet(
        tmp_path, "scripts/tool.py", "x = 1\n", ["module-docstring"])
    assert kept == []


def test_stats_emit_rule(tmp_path):
    bad = (
        '"""doc."""\n'
        "def f(self):\n"
        "    self.stats.demand_reads += 1\n"
    )
    kept, _ = _lint_snippet(
        tmp_path, "src/repro/core/mod.py", bad, ["stats-emit"])
    assert [f.rule for f in kept] == ["stats-emit"]
    assert kept[0].line == 3

    good = (
        '"""doc."""\n'
        "def f(self):\n"
        "    self.stats.demand_reads += 1\n"
        "    self.tracer.tick()\n"
    )
    kept, _ = _lint_snippet(
        tmp_path, "src/repro/core/mod.py", good, ["stats-emit"])
    assert kept == []

    # the rule is scoped to core/
    kept, _ = _lint_snippet(
        tmp_path, "src/repro/analysis/mod.py", bad, ["stats-emit"])
    assert kept == []


def test_emit_registered_rule(tmp_path):
    bad = (
        '"""doc."""\n'
        "def f(self):\n"
        '    self.tracer.emit("not_a_real_event")\n'
    )
    kept, _ = _lint_snippet(
        tmp_path, "src/repro/core/mod.py", bad, ["emit-registered"])
    assert [f.rule for f in kept] == ["emit-registered"]

    good = (
        '"""doc."""\n'
        "def f(self):\n"
        '    self.tracer.emit("repack", extra=2)\n'
    )
    kept, _ = _lint_snippet(
        tmp_path, "src/repro/core/mod.py", good, ["emit-registered"])
    assert kept == []


def test_journal_event_registered_rule(tmp_path):
    bad = (
        '"""doc."""\n'
        "def f(journal):\n"
        '    journal.event("not_a_real_event", jobs=1)\n'
    )
    kept, _ = _lint_snippet(
        tmp_path, "src/repro/runner/mod.py", bad,
        ["journal-event-registered"])
    assert [f.rule for f in kept] == ["journal-event-registered"]
    assert "EVENT_SCHEMA" in kept[0].message

    good = (
        '"""doc."""\n'
        "def f(journal):\n"
        '    journal.event("run_start", jobs=1, cache_enabled=True)\n'
        '    journal.event("compare", db="x", run_a="a", run_b="b",\n'
        "                  metrics=3, regressions=0)\n"
    )
    kept, _ = _lint_snippet(
        tmp_path, "src/repro/runner/mod.py", good,
        ["journal-event-registered"])
    assert kept == []

    # scripts/ are in scope too; dynamic (non-literal) names are not.
    kept, _ = _lint_snippet(
        tmp_path, "scripts/tool.py", bad, ["journal-event-registered"])
    assert [f.rule for f in kept] == ["journal-event-registered"]
    dynamic = (
        '"""doc."""\n'
        "def f(journal, name):\n"
        "    journal.event(name, jobs=1)\n"
    )
    kept, _ = _lint_snippet(
        tmp_path, "src/repro/runner/mod.py", dynamic,
        ["journal-event-registered"])
    assert kept == []


def test_hot_path_wallclock_rule(tmp_path):
    bad = (
        '"""doc."""\n'
        "import time\n"
        "def f():\n"
        "    return time.perf_counter()\n"
    )
    for hot_dir in ("core", "memory", "compression", "compression/vector",
                    "pressure"):
        kept, _ = _lint_snippet(
            tmp_path, f"src/repro/{hot_dir}/mod.py", bad,
            ["hot-path-wallclock"])
        assert [f.rule for f in kept] == ["hot-path-wallclock"], hot_dir
        assert kept[0].line == 4

    # analysis/ may read the wall clock (timing tables)
    kept, _ = _lint_snippet(
        tmp_path, "src/repro/analysis/mod.py", bad, ["hot-path-wallclock"])
    assert kept == []


def test_hot_path_wallclock_seeded_constructor_exempt(tmp_path):
    """Explicitly seeded RNG constructors are the fix, not the bug."""
    seeded = (
        '"""doc."""\n'
        "import numpy as np\n"
        "def f(stable):\n"
        "    a = np.random.RandomState(stable)\n"
        "    b = np.random.default_rng(seed=stable)\n"
        "    return a, b\n"
    )
    kept, _ = _lint_snippet(
        tmp_path, "src/repro/pressure/mod.py", seeded,
        ["hot-path-wallclock"])
    assert kept == []

    unseeded = seeded.replace("np.random.RandomState(stable)",
                              "np.random.RandomState()")
    kept, _ = _lint_snippet(
        tmp_path, "src/repro/pressure/mod.py", unseeded,
        ["hot-path-wallclock"])
    assert [f.line for f in kept] == [4]

    good = (
        '"""doc."""\n'
        "def f(rng):\n"
        "    return rng.randint(0, 4)\n"   # seeded RandomState passed in
    )
    kept, _ = _lint_snippet(
        tmp_path, "src/repro/core/mod.py", good, ["hot-path-wallclock"])
    assert kept == []


def test_mutable_default_rule(tmp_path):
    bad = (
        '"""doc."""\n'
        "def f(a, b=[], *, c={}):\n"
        "    return a\n"
    )
    kept, _ = _lint_snippet(
        tmp_path, "src/repro/mod.py", bad, ["mutable-default"])
    assert [f.rule for f in kept] == ["mutable-default"] * 2

    good = (
        '"""doc."""\n'
        "def f(a, b=None, c=(), d=0):\n"
        "    return a\n"
    )
    kept, _ = _lint_snippet(
        tmp_path, "src/repro/mod.py", good, ["mutable-default"])
    assert kept == []


def test_stats_field_exists_rule(tmp_path):
    bad = (
        '"""doc."""\n'
        "def f(stats):\n"
        "    return stats.no_such_counter\n"
    )
    kept, _ = _lint_snippet(
        tmp_path, "src/repro/obs/mod.py", bad, ["stats-field-exists"])
    assert [f.rule for f in kept] == ["stats-field-exists"]

    good = (
        '"""doc."""\n'
        "def f(stats):\n"
        "    return stats.demand_reads + stats.extra_accesses\n"
    )
    kept, _ = _lint_snippet(
        tmp_path, "src/repro/analysis/mod.py", good, ["stats-field-exists"])
    assert kept == []

    # unrelated objects are not screened
    kept, _ = _lint_snippet(
        tmp_path, "src/repro/obs/mod.py",
        '"""doc."""\ndef f(other):\n    return other.no_such_counter\n',
        ["stats-field-exists"])
    assert kept == []


def test_bare_except_rule(tmp_path):
    bad = (
        '"""doc."""\n'
        "def f():\n"
        "    try:\n"
        "        g()\n"
        "    except:\n"
        "        pass\n"
    )
    kept, _ = _lint_snippet(
        tmp_path, "src/repro/mod.py", bad, ["bare-except"])
    assert [f.rule for f in kept] == ["bare-except"]
    assert kept[0].line == 5

    swallowed = (
        '"""doc."""\n'
        "def f():\n"
        "    try:\n"
        "        g()\n"
        "    except Exception:\n"
        "        pass\n"
    )
    kept, _ = _lint_snippet(
        tmp_path, "src/repro/mod.py", swallowed, ["bare-except"])
    assert [f.rule for f in kept] == ["bare-except"]
    assert "swallows" in kept[0].message

    # a broad handler that DOES something is allowed (the runner's
    # worker shim reports BaseException back over the queue)
    handled = (
        '"""doc."""\n'
        "def f(queue):\n"
        "    try:\n"
        "        g()\n"
        "    except BaseException as exc:\n"
        "        queue.put(repr(exc))\n"
        "    try:\n"
        "        h()\n"
        "    except OSError:\n"
        "        pass\n"   # narrow swallow is a judgement call, not flagged
    )
    kept, _ = _lint_snippet(
        tmp_path, "src/repro/mod.py", handled, ["bare-except"])
    assert kept == []


def test_recovery_traced_rule(tmp_path):
    bad = (
        '"""doc."""\n'
        "def _recover_page(self, page):\n"
        "    self.stats.recoveries += 1\n"
    )
    kept, _ = _lint_snippet(
        tmp_path, "src/repro/core/mod.py", bad, ["recovery-traced"])
    assert [f.rule for f in kept] == ["recovery-traced"]
    assert kept[0].line == 2

    good = (
        '"""doc."""\n'
        "def _recover_page(self, page):\n"
        "    self.stats.recoveries += 1\n"
        '    self.tracer.emit("recovery_uncompressed", page=page)\n'
    )
    kept, _ = _lint_snippet(
        tmp_path, "src/repro/core/mod.py", good, ["recovery-traced"])
    assert kept == []

    # scoped to core/: the injector itself is not a recovery path
    kept, _ = _lint_snippet(
        tmp_path, "src/repro/inject/mod.py", bad, ["recovery-traced"])
    assert kept == []


def test_degraded_transition_traced_rule(tmp_path):
    rule = ["degraded-transition-traced"]
    bad = (
        '"""doc."""\n'
        "def _enter(self):\n"
        "    self.degraded_mode = True\n"
    )
    for relpath in ("src/repro/core/mod.py", "src/repro/pressure/mod.py"):
        kept, _ = _lint_snippet(tmp_path, relpath, bad, rule)
        assert [f.rule for f in kept] == rule, relpath
        assert kept[0].line == 2

    good = (
        '"""doc."""\n'
        "def _enter(self):\n"
        "    self.in_pressure = True\n"
        '    self.tracer.emit("pressure_enter", extra=0)\n'
    )
    kept, _ = _lint_snippet(
        tmp_path, "src/repro/pressure/mod.py", good, rule)
    assert kept == []

    # __init__ establishes the initial state; that is not a transition.
    init = (
        '"""doc."""\n'
        "class C:\n"
        "    def __init__(self):\n"
        "        self.in_pressure = False\n"
        "        self.degraded_since = None\n"
    )
    kept, _ = _lint_snippet(
        tmp_path, "src/repro/pressure/mod.py", init, rule)
    assert kept == []

    # scoped to core/ and pressure/: workloads may reuse the names
    kept, _ = _lint_snippet(
        tmp_path, "src/repro/workloads/mod.py", bad, rule)
    assert kept == []


# ---------------------------------------------------------------------------
# project rules
# ---------------------------------------------------------------------------

def test_doc_links_rule_flags_broken_link(tmp_path):
    (tmp_path / "README.md").write_text(
        "see [missing](does/not/exist.md) and [ok](README.md)\n")
    rule = get_rule("doc-links")
    findings = list(rule.check_project(tmp_path))
    broken = [f for f in findings if "broken link" in f.message]
    assert len(broken) == 1
    assert "does/not/exist.md" in broken[0].message
    # the other tracked docs are missing entirely in this sandbox
    assert any(f.message == "file missing" for f in findings)


def test_doc_links_rule_skips_fenced_blocks(tmp_path):
    (tmp_path / "README.md").write_text(
        "```python\nrow[combo](fake_link.md)\n```\n[real](broken.md)\n")
    rule = get_rule("doc-links")
    broken = [f for f in rule.check_project(tmp_path)
              if "broken link" in f.message]
    assert [f.line for f in broken] == [4]
    assert "broken.md" in broken[0].message


def test_config_knob_rule_flags_undocumented_field(tmp_path):
    config = tmp_path / "src/repro/core/config.py"
    config.parent.mkdir(parents=True)
    config.write_text(
        '"""doc."""\n'
        "class CompressoConfig:\n"
        "    documented_knob: int = 1\n"
        "    zzz_secret_knob: int = 2\n"
    )
    (tmp_path / "README.md").write_text("only documented_knob is here\n")
    rule = get_rule("config-knob-documented")
    findings = list(rule.check_project(tmp_path))
    undocumented = [f for f in findings if "zzz_secret_knob" in f.message]
    assert len(undocumented) == 1
    assert undocumented[0].line == 4
    assert not any("documented_knob" in f.message
                   for f in findings if "zzz" not in f.message)


def test_default_lint_dirs_exist():
    for directory in DEFAULT_LINT_DIRS:
        assert (ROOT / directory).is_dir()
