"""Mutation tests for the memory-model sanitizer (docs/LINTING.md).

The sanitizer is itself a checker, so its tests are mutation tests: a
clean controller must produce zero violations, and each deliberately
seeded corruption — overlapping packed slots, a double-freed chunk,
desynced metadata, duplicate inflation pointers, a leaked allocation —
must be caught with the right invariant id.
"""

import dataclasses

import pytest

from repro.check import MemorySanitizer, SanitizerError
from repro.core.config import compresso_config, lcp_config
from repro.core.controller import CompressedMemoryController
from repro.memory.physical import MemoryGeometry
from repro.obs import Tracer
from repro.simulation.simulator import SimulationConfig, simulate
from repro.workloads.profiles import PROFILES


def _page_lines(seed=0):
    """64 distinct, mildly compressible lines (multiple nonzero slots)."""
    return [bytes((seed + line * 7 + byte * 13) % 256 for byte in range(64))
            for line in range(64)]


def _controller(config=None, sanitize=True):
    config = config or compresso_config()
    controller = CompressedMemoryController(
        config, MemoryGeometry(installed_bytes=64 << 20), sanitize=sanitize)
    return controller


def _invariants(controller):
    return [v.invariant for v in controller.sanitizer.violations]


# ---------------------------------------------------------------------------
# clean runs
# ---------------------------------------------------------------------------

def test_clean_controller_has_no_violations():
    controller = _controller()
    for page in range(6):
        controller.install_page(page, _page_lines(page))
    for page in range(6):
        controller.write_line(page, 3, bytes(64))
        controller.read_line(page, 3)
    controller.free_page(2)
    controller.flush_metadata()
    assert controller.sanitizer.violations == []
    assert controller.sanitizer.checks > 0


def test_clean_variable_allocation_run():
    controller = _controller(config=lcp_config())
    for page in range(6):
        controller.install_page(page, _page_lines(page))
    controller.free_page(1)
    controller.flush_metadata()
    assert controller.sanitizer.violations == []


def test_sanitize_flag_off_means_no_sanitizer():
    controller = _controller(sanitize=False)
    assert controller.sanitizer is None


# ---------------------------------------------------------------------------
# seeded corruptions, one per invariant family
# ---------------------------------------------------------------------------

def test_corrupted_layout_offsets_are_caught():
    controller = _controller()
    controller.install_page(0, _page_lines())
    state = controller.pages[0]
    layout = controller._layout(state)
    # squash every slot offset to half: slots now overlap, and the
    # cached layout disagrees with the metadata-derived one
    state.layout = dataclasses.replace(
        layout, slot_offsets=tuple(o // 2 for o in layout.slot_offsets))
    controller.sanitizer.check_all(controller)
    caught = _invariants(controller)
    assert "layout-desync" in caught
    assert "line-overlap" in caught


def test_double_freed_chunk_is_caught():
    controller = _controller()
    controller.install_page(0, _page_lines())
    state = controller.pages[0]
    # free one of the page's chunks behind the controller's back
    controller.memory.allocator.free([state.meta.mpfns[0]])
    controller.sanitizer.check_all(controller)
    assert "alloc-double-free" in _invariants(controller)


def test_leaked_chunks_are_caught():
    controller = _controller()
    controller.install_page(0, _page_lines())
    controller.memory.allocator.allocate(2)   # no page references these
    controller.sanitizer.check_all(controller)
    assert "alloc-leak" in _invariants(controller)


def test_metadata_size_desync_is_caught():
    controller = _controller()
    controller.install_page(0, _page_lines())
    controller.pages[0].meta.size_chunks += 1   # mpfns no longer match
    controller.sanitizer.check_all(controller)
    assert "metadata-desync" in _invariants(controller)


def test_duplicate_inflation_pointers_are_caught():
    controller = _controller()
    controller.install_page(0, _page_lines())
    controller.pages[0].meta.inflated_lines = [3, 3]
    controller.sanitizer.check_all(controller)
    assert "inflation-room" in _invariants(controller)


def test_allocator_refuses_direct_double_free():
    controller = _controller()
    controller.install_page(0, _page_lines())
    chunk = controller.pages[0].meta.mpfns[0]
    controller.memory.allocator.free([chunk])
    with pytest.raises(ValueError):
        controller.memory.allocator.free([chunk])


def test_raise_on_violation_fails_fast():
    config = compresso_config()
    controller = _controller(config=config, sanitize=False)
    controller.sanitizer = MemorySanitizer(config, raise_on_violation=True)
    controller.install_page(0, _page_lines())
    controller.pages[0].meta.inflated_lines = [3, 3]
    with pytest.raises(SanitizerError):
        controller.sanitizer.check_all(controller)


def test_violations_reach_the_tracer():
    config = compresso_config()
    tracer = Tracer()
    controller = CompressedMemoryController(
        config, MemoryGeometry(installed_bytes=64 << 20), tracer=tracer,
        sanitize=True)
    controller.install_page(0, _page_lines())
    controller.pages[0].meta.inflated_lines = [3, 3]
    controller.sanitizer.check_all(controller)
    events = [e for e in tracer.events if e.name == "sanitizer_violation"]
    assert events and events[0].args["invariant"] == "inflation-room"


# ---------------------------------------------------------------------------
# end-to-end simulation wiring
# ---------------------------------------------------------------------------

def test_sanitized_simulation_is_clean():
    sim = SimulationConfig(n_events=600, scale=0.01, sanitize=True)
    result = simulate(PROFILES["gcc"], "compresso", sim)
    assert result.sanitizer_violations == 0


def test_sanitized_variable_allocation_simulation_is_clean():
    sim = SimulationConfig(n_events=600, scale=0.01, sanitize=True)
    result = simulate(PROFILES["gcc"], "lcp", sim)
    assert result.sanitizer_violations == 0


def test_unsanitized_simulation_reports_none():
    sim = SimulationConfig(n_events=300, scale=0.01)
    result = simulate(PROFILES["gcc"], "compresso", sim)
    assert result.sanitizer_violations is None
