"""Tests for SimPoint/CompressPoint selection (§VI-B, Fig. 9)."""

import numpy as np
import pytest

from repro.simulation import (
    kmeans,
    profile_intervals,
    representativeness_error,
    select_points,
)
from repro.workloads import get_profile


class TestKMeans:
    def test_separates_obvious_clusters(self):
        points = np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 5.0], [5.1, 5.0]])
        labels, centers = kmeans(points, k=2, seed=0)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_k_capped_at_n(self):
        points = np.array([[0.0], [1.0]])
        labels, centers = kmeans(points, k=5, seed=0)
        assert len(centers) <= 2

    def test_deterministic(self):
        rng = np.random.RandomState(0)
        points = rng.rand(40, 3)
        a = kmeans(points, 4, seed=1)
        b = kmeans(points, 4, seed=1)
        assert np.array_equal(a[0], b[0])


class TestIntervalProfiling:
    @pytest.fixture(scope="class")
    def intervals(self):
        return profile_intervals(get_profile("GemsFDTD"), n_intervals=10,
                                 events_per_interval=600, scale=0.03)

    def test_interval_count(self, intervals):
        assert len(intervals) == 10

    def test_bbv_normalized(self, intervals):
        for interval in intervals:
            assert interval.bbv.sum() == pytest.approx(1.0)

    def test_ratio_declines_as_footprint_fills(self, intervals):
        """Fig. 9's shape: early intervals see mostly-zero allocations."""
        assert intervals[0].compression_ratio > \
            intervals[-1].compression_ratio

    def test_memory_used_monotone(self, intervals):
        used = [i.memory_used for i in intervals]
        assert all(b >= a for a, b in zip(used, used[1:]))


class TestSelection:
    @pytest.fixture(scope="class")
    def intervals(self):
        return profile_intervals(get_profile("GemsFDTD"), n_intervals=12,
                                 events_per_interval=600, scale=0.03)

    def test_weights_sum_to_one(self, intervals):
        selection = select_points(intervals, k=4)
        assert sum(selection.weights) == pytest.approx(1.0)

    def test_chosen_are_valid_indices(self, intervals):
        selection = select_points(intervals, k=4)
        assert all(0 <= i < len(intervals) for i in selection.chosen)

    def test_compresspoint_beats_simpoint(self, intervals):
        """The Fig. 9 claim: compression-aware selection represents the
        compression ratio better than BBV-only selection."""
        simpoint = select_points(intervals, k=4, with_compression=False)
        compresspoint = select_points(intervals, k=4, with_compression=True)
        assert (representativeness_error(intervals, compresspoint)
                <= representativeness_error(intervals, simpoint) + 0.02)

    def test_method_labels(self, intervals):
        assert select_points(intervals, with_compression=False).method == \
            "simpoint"
        assert select_points(intervals, with_compression=True).method == \
            "compresspoint"
