"""Tests for the LRU paging model and budgets (§VI-A)."""

import pytest

from repro.osmodel import (
    DynamicBudget,
    LRUPagingSimulator,
    PagingCostModel,
    StaticBudget,
    run_capacity_simulation,
)
from repro.workloads import get_profile


class TestBudgets:
    def test_static_budget_constant(self):
        budget = StaticBudget(100)
        assert budget.resident_limit(0.0) == 100
        assert budget.resident_limit(0.99) == 100

    def test_dynamic_budget_scales_with_ratio(self):
        budget = DynamicBudget(100, [1.0, 2.0, 4.0])
        assert budget.resident_limit(0.0) == 100
        assert budget.resident_limit(0.5) == 200
        assert budget.resident_limit(0.99) == 400

    def test_dynamic_budget_validation(self):
        with pytest.raises(ValueError):
            DynamicBudget(0, [2.0])
        with pytest.raises(ValueError):
            DynamicBudget(10, [])
        with pytest.raises(ValueError):
            DynamicBudget(10, [0.5])


class TestLRUPaging:
    def test_working_set_within_budget_no_faults(self):
        sim = LRUPagingSimulator(StaticBudget(10))
        for _ in range(5):
            for page in range(10):
                sim.touch(page, 0.0)
        # Only the 10 cold faults.
        assert sim.stats.faults == 10

    def test_thrash_when_budget_too_small(self):
        sim = LRUPagingSimulator(StaticBudget(5))
        # Cyclic access over 10 pages with LRU: every touch faults.
        for _ in range(3):
            for page in range(10):
                sim.touch(page, 0.0)
        assert sim.stats.faults == 30

    def test_budget_growth_mid_run_keeps_pages(self):
        budget = DynamicBudget(5, [1.0, 2.0])
        sim = LRUPagingSimulator(budget)
        for page in range(10):
            sim.touch(page, 0.6)  # second half: limit 10
        faults_first = sim.stats.faults
        for page in range(10):
            sim.touch(page, 0.6)
        assert sim.stats.faults == faults_first  # all resident now

    def test_eviction_counts(self):
        sim = LRUPagingSimulator(StaticBudget(2))
        for page in range(4):
            sim.touch(page, 0.0)
        assert sim.stats.evictions == 2
        assert sim.resident_pages == 2


class TestCostModel:
    def test_runtime_formula(self):
        from repro.osmodel import PagingStats
        stats = PagingStats(touches=1000, faults=10)
        model = PagingCostModel(touch_cost=1.0, fault_cost=600.0)
        assert model.runtime(stats) == 1000 + 6000


class TestCapacityRuns:
    def test_compression_reduces_faults(self):
        """A dynamic (compressed) budget must fault less than static."""
        profile = get_profile("soplex")
        pages = 400
        budget_pages = int(pages * 0.7)
        static_stats, static_rt = run_capacity_simulation(
            profile, StaticBudget(budget_pages), n_touches=20000,
            footprint_pages=pages)
        dynamic_stats, dynamic_rt = run_capacity_simulation(
            profile, DynamicBudget(budget_pages, [2.0]), n_touches=20000,
            footprint_pages=pages)
        assert dynamic_stats.faults <= static_stats.faults
        assert dynamic_rt <= static_rt

    def test_unconstrained_is_upper_bound(self):
        profile = get_profile("soplex")
        pages = 400
        _, constrained = run_capacity_simulation(
            profile, StaticBudget(int(pages * 0.6)), n_touches=20000,
            footprint_pages=pages)
        _, unconstrained = run_capacity_simulation(
            profile, StaticBudget(pages), n_touches=20000,
            footprint_pages=pages)
        assert unconstrained <= constrained

    def test_insensitive_benchmark_barely_reacts(self):
        """gamess-style small working sets fit even constrained budgets."""
        profile = get_profile("gamess")
        pages = 400
        _, constrained = run_capacity_simulation(
            profile, StaticBudget(int(pages * 0.7)), n_touches=20000,
            footprint_pages=pages)
        _, unconstrained = run_capacity_simulation(
            profile, StaticBudget(pages), n_touches=20000,
            footprint_pages=pages)
        assert constrained <= unconstrained * 1.1

    def test_determinism(self):
        profile = get_profile("mcf")
        a = run_capacity_simulation(profile, StaticBudget(100),
                                    n_touches=5000, footprint_pages=300)
        b = run_capacity_simulation(profile, StaticBudget(100),
                                    n_touches=5000, footprint_pages=300)
        assert a[0].faults == b[0].faults
