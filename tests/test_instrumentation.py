"""Wire the instrumentation lint (scripts/check_instrumentation.py)
into the test run."""

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def test_check_instrumentation_passes():
    proc = subprocess.run(
        [sys.executable, str(ROOT / "scripts" / "check_instrumentation.py")],
        capture_output=True, text=True, cwd=ROOT)
    assert proc.returncode == 0, proc.stderr or proc.stdout
