"""Tests for the 64-byte metadata entry layout (paper §III, Fig. 3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.config import compresso_config
from repro.core.metadata import (
    HALF_ENTRY_BITS,
    TOTAL_BITS,
    PageMetadata,
    metadata_overhead_fraction,
    metadata_region_bytes,
)


class TestLayoutBudget:
    def test_full_entry_fits_64_bytes(self):
        assert TOTAL_BITS <= 512

    def test_half_entry_fits_32_bytes(self):
        """The §IV-B5 half-entry must fit flags + MPFNs in 32 bytes."""
        assert HALF_ENTRY_BITS <= 256

    def test_overhead_is_about_1_6_percent(self):
        config = compresso_config()
        assert metadata_overhead_fraction(config) == pytest.approx(64 / 4096)

    def test_region_size(self):
        config = compresso_config()
        assert metadata_region_bytes(1000, config) == 64000


def _sample_metadata() -> PageMetadata:
    return PageMetadata(
        valid=True,
        zero=False,
        compressed=True,
        size_chunks=3,
        free_space=7,
        mpfns=[10, 999, 123456],
        line_bins=[i % 4 for i in range(64)],
        inflated_lines=[5, 63, 17],
    )


class TestEncodeDecode:
    def test_roundtrip_sample(self):
        meta = _sample_metadata()
        bits = meta.encode()
        assert bits.length <= 512
        decoded = PageMetadata.decode(bits)
        assert decoded.valid == meta.valid
        assert decoded.zero == meta.zero
        assert decoded.compressed == meta.compressed
        assert decoded.size_chunks == meta.size_chunks
        assert decoded.free_space == meta.free_space
        assert decoded.mpfns == meta.mpfns
        assert decoded.line_bins == meta.line_bins
        assert decoded.inflated_lines == meta.inflated_lines

    def test_roundtrip_empty(self):
        meta = PageMetadata()
        decoded = PageMetadata.decode(meta.encode())
        assert decoded.valid is False
        assert decoded.zero is True
        assert decoded.size_chunks == 0
        assert decoded.mpfns == []
        assert decoded.inflated_lines == []

    @given(
        size_chunks=st.integers(min_value=0, max_value=8),
        free_space=st.integers(min_value=0, max_value=64),
        n_inflated=st.integers(min_value=0, max_value=17),
        bins_seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_roundtrip_property(self, size_chunks, free_space, n_inflated,
                                bins_seed):
        import random
        rng = random.Random(bins_seed)
        meta = PageMetadata(
            valid=size_chunks > 0,
            zero=size_chunks == 0,
            compressed=True,
            size_chunks=size_chunks,
            free_space=free_space,
            mpfns=[rng.randrange(1 << 28) for _ in range(size_chunks)],
            line_bins=[rng.randrange(4) for _ in range(64)],
            inflated_lines=rng.sample(range(64), n_inflated),
        )
        decoded = PageMetadata.decode(meta.encode())
        assert decoded.mpfns == meta.mpfns
        assert decoded.line_bins == meta.line_bins
        assert decoded.inflated_lines == meta.inflated_lines
        assert decoded.free_space == meta.free_space


class TestInvariants:
    def test_check_accepts_valid(self):
        _sample_metadata().check(compresso_config())

    def test_mpfn_count_must_match_chunks(self):
        meta = _sample_metadata()
        meta.mpfns.append(7)
        with pytest.raises(ValueError):
            meta.check(compresso_config())

    def test_too_many_inflated(self):
        meta = _sample_metadata()
        meta.inflated_lines = list(range(18))
        with pytest.raises(ValueError):
            meta.check(compresso_config())

    def test_duplicate_inflation_pointers(self):
        meta = _sample_metadata()
        meta.inflated_lines = [3, 3]
        with pytest.raises(ValueError):
            meta.check(compresso_config())

    def test_zero_page_has_no_storage(self):
        meta = _sample_metadata()
        meta.zero = True
        with pytest.raises(ValueError):
            meta.check(compresso_config())

    def test_copy_is_deep(self):
        meta = _sample_metadata()
        copy = meta.copy()
        copy.mpfns.append(1)
        copy.line_bins[0] = 3
        assert meta.mpfns != copy.mpfns
        assert meta.line_bins[0] != 3
