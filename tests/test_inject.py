"""Tests for the fault-injection subsystem (docs/ROBUSTNESS.md).

Three layers: the spec grammar, per-site injection mechanics (every
fault variant must be *detected* — strict mode raises, recover mode
repairs and emits ``fault_*``/``recovery_*`` events), and the campaign
smoke test that sweeps all sites and demands zero silent corruptions.
Allocator exhaustion gets its own class, run under both the 512 B-chunk
and variable-sized-region allocation schemes.
"""

import random

import pytest

from repro.check import SanitizerError
from repro.core.config import compresso_config, lcp_config
from repro.core.controller import CompressedMemoryController
from repro.inject import (
    SITES,
    FaultCampaign,
    FaultInjector,
    FaultSpec,
    campaign_cell,
    parse_fault_spec,
    reconcile,
)
from repro.memory import MemoryGeometry
from repro.obs import Tracer
from repro.simulation.simulator import SimulationConfig, simulate
from repro.workloads.profiles import get_profile

#: Sites that corrupt state (vs. exert allocation pressure).
CORRUPTION_SITES = ("line", "meta", "mdcache", "double-grant")


def _page_lines(seed=0):
    """64 distinct, mildly compressible lines."""
    return [bytes((seed + line * 7 + byte * 13) % 256 for byte in range(64))
            for line in range(64)]


def incompressible(seed):
    rng = random.Random(seed)
    return bytes(rng.getrandbits(8) for _ in range(64))


def _controller(config=None, sanitize="recover", installed=64 << 20):
    return CompressedMemoryController(
        config or compresso_config(),
        MemoryGeometry(installed_bytes=installed),
        tracer=Tracer(), sanitize=sanitize)


def _populate(controller, pages=6):
    for page in range(pages):
        controller.install_page(page, _page_lines(page))
    for page in range(pages):
        controller.read_line(page, 3)
    return controller


def _injector(controller, site, rate=1.0, seed=0):
    return FaultInjector(FaultSpec(site, rate), seed=seed).bind(controller)


def _events(controller, name):
    return [e for e in controller.tracer.events if e.name == name]


# ---------------------------------------------------------------------------
# spec grammar
# ---------------------------------------------------------------------------

class TestSpecGrammar:
    def test_single_clause(self):
        (spec,) = parse_fault_spec("line:0.01")
        assert spec == FaultSpec("line", 0.01, 1)

    def test_multi_clause_with_burst_and_whitespace(self):
        specs = parse_fault_spec(" line:0.01 , meta:0.005:3 ")
        assert specs == [FaultSpec("line", 0.01),
                         FaultSpec("meta", 0.005, 3)]

    def test_every_site_parses(self):
        for site in SITES:
            (spec,) = parse_fault_spec(f"{site}:0.5")
            assert spec.site == site

    @pytest.mark.parametrize("bad", [
        "bogus:0.1",          # unknown site
        "line:lots",          # non-float rate
        "line:0.1:x",         # non-int burst
        "line",               # missing rate
        "line:0.1:2:9",       # too many fields
        "",                   # empty
        "line:1.5",           # rate out of range
        "line:0.1:0",         # burst < 1
    ])
    def test_bad_specs_raise(self, bad):
        with pytest.raises(ValueError):
            parse_fault_spec(bad)

    def test_injector_accepts_string_spec_and_rejects_empty(self):
        injector = FaultInjector("line:0.2,meta:0.1")
        assert [s.site for s in injector.specs] == ["line", "meta"]
        with pytest.raises(ValueError):
            FaultInjector([])

    def test_unbound_step_raises(self):
        with pytest.raises(RuntimeError):
            FaultInjector("line:1.0").step()


# ---------------------------------------------------------------------------
# detection: strict mode raises on every corruption site
# ---------------------------------------------------------------------------

class TestStrictDetection:
    @pytest.mark.parametrize("site", CORRUPTION_SITES)
    def test_corruption_raises_under_strict(self, site):
        controller = _populate(_controller(sanitize="strict"))
        with pytest.raises(SanitizerError):
            _injector(controller, site).inject(site)

    def test_exhaustion_is_legal_state_not_a_violation(self):
        controller = _populate(_controller(sanitize="strict"))
        record = _injector(controller, "alloc-exhaust").inject("alloc-exhaust")
        assert record.page is None
        assert controller.memory.allocator.free_chunks == 0

    def test_variable_allocation_detects_too(self):
        controller = _populate(_controller(config=lcp_config(),
                                           sanitize="strict"))
        with pytest.raises(SanitizerError):
            _injector(controller, "meta").inject("meta")


# ---------------------------------------------------------------------------
# recovery: recover mode repairs and emits, per site
# ---------------------------------------------------------------------------

class TestRecoverMode:
    @pytest.mark.parametrize("site,recovery_events", [
        ("line", ("recovery_uncompressed", "alloc_denied")),
        ("meta", ("recovery_uncompressed", "alloc_denied")),
        ("mdcache", ("recovery_mdcache",)),
        ("double-grant", ("recovery_alloc_books",)),
    ])
    def test_fault_detected_and_repaired(self, site, recovery_events):
        controller = _populate(_controller())
        record = _injector(controller, site).inject(site)
        assert record is not None
        assert controller.stats.faults_detected >= 1
        assert _events(controller, "fault_detected")
        assert any(_events(controller, name) for name in recovery_events)
        # The repair converged: a fresh full sweep finds nothing new.
        assert controller.scrub() == 0

    @pytest.mark.parametrize("config", [compresso_config, lcp_config])
    def test_repair_converges_under_both_allocators(self, config):
        controller = _populate(_controller(config=config()))
        for site in ("line", "meta", "double-grant"):
            assert _injector(controller, site).inject(site) is not None
        assert controller.stats.recoveries >= 1
        assert controller.scrub() == 0

    def test_reads_survive_page_recovery(self):
        controller = _populate(_controller())
        record = _injector(controller, "meta").inject("meta")
        # Structural recovery rebuilt the page; every line still reads
        # (from the authoritative shadow payload) without raising.
        for line in range(64):
            assert len(controller.read_line(record.page, line).data) == 64

    def test_injection_is_deterministic(self):
        details = []
        for _ in range(2):
            controller = _populate(_controller())
            injector = FaultInjector("line:0.5,meta:0.5", seed=7)
            injector.bind(controller)
            for _ in range(40):
                injector.step()
            details.append([(r.site, r.page, r.detail)
                            for r in injector.records])
        assert details[0] == details[1] and details[0]


# ---------------------------------------------------------------------------
# allocator exhaustion -> degraded mode, both allocation schemes
# ---------------------------------------------------------------------------

class TestExhaustionDegradedMode:
    """Satellite: no exception, correct stats, recovery after frees."""

    @pytest.fixture(params=["chunks", "variable"])
    def controller(self, request):
        config = (compresso_config() if request.param == "chunks"
                  else lcp_config())
        assert config.allocation == request.param
        return _controller(config=config, sanitize=False,
                           installed=2 * 1024 * 1024)

    def _fill_until_denied(self, controller):
        page = 0
        while controller.stats.alloc_denials == 0:
            assert page < controller.geometry.ospa_pages, "never exhausted"
            for line in range(64):
                controller.write_line(page, line,
                                      incompressible(page * 64 + line))
            page += 1
        return page

    def test_exhaustion_degrades_then_recovers_after_frees(self, controller):
        pages = self._fill_until_denied(controller)     # must not raise
        assert controller.stats.alloc_exhaustions >= 1
        assert controller.stats.alloc_denials >= 1
        assert _events(controller, "degraded_enter")
        # Freeing restores headroom: degraded mode ends (the denial
        # itself may already have freed enough — under variable
        # allocation a denied page returns a whole region) and new
        # compressed installs succeed again.
        for page in range(pages):
            controller.free_page(page)
        assert not controller.degraded_mode
        assert controller.stats.degraded_exits >= 1
        assert _events(controller, "degraded_exit")
        controller.install_page(0, _page_lines())
        assert controller.pages[0].meta.valid

    def test_denied_page_still_reads_correctly(self, controller):
        self._fill_until_denied(controller)
        denied = _events(controller, "alloc_denied")[0].page
        expected = incompressible(denied * 64 + 7)
        assert controller.read_line(denied, 7).data == expected

    def test_seize_and_release_roundtrip(self):
        controller = _populate(_controller(sanitize=False))
        injector = _injector(controller, "alloc-exhaust")
        injector.inject("alloc-exhaust")
        assert controller.memory.allocator.free_chunks == 0
        released = injector.release_seized()
        assert released > 0
        assert controller.memory.allocator.free_chunks == released


# ---------------------------------------------------------------------------
# campaign: the zero-silent-corruption smoke test (tier-1)
# ---------------------------------------------------------------------------

class TestFaultCampaign:
    def test_campaign_has_zero_silent_corruptions(self):
        campaign = FaultCampaign(rates=(0.02,), n_events=600, scale=0.05)
        cells = campaign.run()
        assert len(cells) == len(campaign.sites)
        assert sum(cell.injected for cell in cells) > 0
        assert campaign.silent_corruptions == 0
        for cell in cells:
            assert cell.detected == cell.injected - cell.masked, cell.as_row()

    def test_cell_rows_have_the_report_shape(self):
        cell = campaign_cell("mdcache", 0.02, n_events=400, scale=0.05)
        row = cell.as_row()
        assert set(row) == {"site", "rate", "injected", "detected",
                            "recovered", "masked", "silent"}
        assert row["silent"] == 0

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError):
            FaultCampaign(sites=("line", "bogus"))

    def test_reconcile_flags_truly_silent_faults(self):
        # A record with no matching events must be classified silent.
        from repro.inject import FaultRecord
        record = FaultRecord(0, "line", page=3, clock=10, detail="x")
        outcome = reconcile([record], events=[])
        assert outcome.silent == 1 and outcome.detected == 0


# ---------------------------------------------------------------------------
# simulation wiring
# ---------------------------------------------------------------------------

class TestSimulationWiring:
    def test_simulate_with_faults_config(self):
        sim = SimulationConfig(n_events=400, scale=0.05, seed=3,
                               sanitize="recover", faults="line:0.05")
        result = simulate(get_profile("gcc"), "compresso", sim)
        assert result.faults_injected >= 1
        assert result.controller_stats.faults_detected >= 1

    def test_uncompressed_system_ignores_faults(self):
        sim = SimulationConfig(n_events=200, scale=0.05,
                               faults="line:0.5")
        result = simulate(get_profile("gcc"), "uncompressed", sim)
        assert result.faults_injected is None

    def test_bad_sanitize_mode_rejected(self):
        with pytest.raises(ValueError):
            _controller(sanitize="loose")
