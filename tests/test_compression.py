"""Round-trip and behavioural tests for every compression algorithm."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import (
    BDICompressor,
    BPCCompressor,
    BestOfCompressor,
    CompressedLine,
    CPackCompressor,
    FPCCompressor,
    LZCompressor,
    ZeroCompressor,
    available_algorithms,
    is_zero_line,
    make_compressor,
)

ALL_COMPRESSORS = [
    BPCCompressor(),
    BPCCompressor(transform_only=True),
    BDICompressor(),
    FPCCompressor(),
    CPackCompressor(),
    LZCompressor(),
    ZeroCompressor(),
]

IDS = [f"{c.name}{'-t' if getattr(c, 'transform_only', False) else ''}"
       for c in ALL_COMPRESSORS]


def interesting_lines():
    """Hand-picked lines covering each algorithm's special cases."""
    yield bytes(64)                                        # all zero
    yield b"\xff" * 64                                     # all ones
    yield bytes(range(64))                                 # byte ramp
    yield struct.pack("<16I", *[7] * 16)                   # repeated word
    yield struct.pack("<16I", *range(100, 116))            # small deltas
    yield struct.pack("<16i", *[-1] * 16)                  # negative small
    yield struct.pack("<8Q", *[0x7F0000000000 + i * 64 for i in range(8)])
    yield struct.pack("<16I", *[0xDEADBEEF] * 16)
    yield struct.pack("<16I", *([0] * 8 + [0xFFFFFFFF] * 8))
    yield (b"hello world! " * 5)[:64]
    yield struct.pack("<16I", *[1 << 31] * 16)             # sign boundary
    yield struct.pack("<16I", 0xFFFFFFFF, *[0] * 15)       # big then zeros


@pytest.mark.parametrize("compressor", ALL_COMPRESSORS, ids=IDS)
class TestRoundTrip:
    def test_interesting_lines(self, compressor):
        for line in interesting_lines():
            compressed = compressor.compress(line)
            assert compressor.decompress(compressed) == line

    def test_rejects_wrong_length(self, compressor):
        with pytest.raises(ValueError):
            compressor.compress(bytes(63))

    def test_rejects_foreign_payload(self, compressor):
        foreign = CompressedLine("definitely-not-real", 8, None)
        with pytest.raises(ValueError):
            compressor.decompress(foreign)

    def test_size_bytes_rounds_up(self, compressor):
        line = bytes(range(64))
        compressed = compressor.compress(line)
        assert compressed.size_bytes == (compressed.size_bits + 7) // 8


@pytest.mark.parametrize("compressor", ALL_COMPRESSORS, ids=IDS)
@settings(max_examples=40, deadline=None)
@given(data=st.binary(min_size=64, max_size=64))
def test_random_roundtrip(compressor, data):
    """Property: decompress(compress(x)) == x for arbitrary bytes."""
    assert compressor.decompress(compressor.compress(data)) == data


@settings(max_examples=40, deadline=None)
@given(words=st.lists(st.integers(min_value=-2000, max_value=2000),
                      min_size=16, max_size=16))
def test_low_entropy_compresses_well(words):
    """BPC must shrink small-integer arrays below half the line."""
    line = struct.pack("<16i", *words)
    bpc = BPCCompressor()
    assert bpc.compress(line).size_bits < 256
    assert bpc.decompress(bpc.compress(line)) == line


class TestZeroHandling:
    def test_is_zero_line(self):
        assert is_zero_line(bytes(64))
        assert not is_zero_line(bytes(63) + b"\x01")

    def test_zero_line_sizes(self):
        zero = bytes(64)
        assert ZeroCompressor().compress(zero).size_bits == 0
        assert BDICompressor().compress(zero).size_bits == 8
        assert BPCCompressor().compress(zero).size_bits <= 16


class TestBPCSpecifics:
    def test_modified_beats_or_matches_transform_only(self):
        """The with/without-transform module never loses to plain BPC."""
        modified = BPCCompressor()
        plain = BPCCompressor(transform_only=True)
        for line in interesting_lines():
            assert (modified.compress(line).size_bits
                    <= plain.compress(line).size_bits)

    def test_never_exceeds_raw_plus_header(self):
        import random
        rng = random.Random(42)
        modified = BPCCompressor()
        for _ in range(50):
            line = bytes(rng.getrandbits(8) for _ in range(64))
            assert modified.compress(line).size_bits <= 64 * 8 + 2

    def test_delta_friendly_data(self):
        line = struct.pack("<16I", *[10_000 + 3 * i for i in range(16)])
        assert BPCCompressor().compress(line).size_bits < 100


class TestBDISpecifics:
    def test_repeated_qword(self):
        line = struct.pack("<8Q", *[0x1122334455667788] * 8)
        compressed = BDICompressor().compress(line)
        assert compressed.size_bits == 64  # rep encoding

    def test_base8_delta1(self):
        base = 1 << 40
        line = struct.pack("<8Q", *[base + i for i in range(8)])
        compressed = BDICompressor().compress(line)
        assert compressed.size_bits == 16 * 8  # 8B base + 8 x 1B deltas

    def test_incompressible_falls_back_to_raw(self):
        import random
        rng = random.Random(7)
        line = bytes(rng.getrandbits(8) for _ in range(64))
        assert BDICompressor().compress(line).size_bits == 512


class TestFPCSpecifics:
    def test_zero_run_encoding(self):
        line = bytes(64)
        # 16 zero words = 2 runs of 8 -> 2 x 6 bits.
        assert FPCCompressor().compress(line).size_bits == 12

    def test_sign_extended_words(self):
        line = struct.pack("<16i", *[-3] * 16)
        compressed = FPCCompressor().compress(line)
        assert compressed.size_bits == 16 * 7  # prefix+4 bits per word


class TestCPackSpecifics:
    def test_dictionary_hits(self):
        line = struct.pack("<16I", *[0xABCD1234] * 16)
        compressed = CPackCompressor().compress(line)
        # First word literal (34 bits), 15 dictionary hits (6 bits each).
        assert compressed.size_bits == 34 + 15 * 6


class TestLZSpecifics:
    def test_run_compression(self):
        line = b"\x42" * 64
        compressed = LZCompressor().compress(line)
        assert compressed.size_bits < 150


class TestBestOf:
    def test_picks_smallest(self):
        best = BestOfCompressor([BPCCompressor(), BDICompressor()])
        for line in interesting_lines():
            result = best.compress(line)
            individual = min(
                BPCCompressor().compress(line).size_bits,
                BDICompressor().compress(line).size_bits,
            )
            assert result.size_bits == individual
            assert best.decompress(result) == line

    def test_rejects_duplicate_children(self):
        with pytest.raises(ValueError):
            BestOfCompressor([BPCCompressor(), BPCCompressor()])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            BestOfCompressor([])


class TestRegistry:
    def test_all_names_construct(self):
        for name in available_algorithms():
            compressor = make_compressor(name)
            line = bytes(range(64))
            assert compressor.decompress(compressor.compress(line)) == line

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_compressor("gzip")
