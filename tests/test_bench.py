"""The kernel-bench CLI: schema, regression gate, journal, smoke run.

Covers ``python -m repro.analysis bench`` (docs/KERNELS.md): the
``repro-bench-kernels/1`` document schema, the refuse-to-overwrite
regression gate with its ``--force`` override, the journal digest
event, and a ``--quick`` smoke run inside the tier-1 budget.
"""

import json

import pytest

from repro.analysis.bench import (
    BENCH_SCHEMA,
    bench_algorithm,
    find_regressions,
    main as bench_main,
    make_corpus,
    render_table,
    run_bench,
    validate_document,
)
from repro.compression.vector import vectorized_algorithms
from repro.runner.journal import read_journal, validate_event


def _tiny_doc():
    return run_bench(["zero"], n_lines=32, repeat=1)


def test_corpus_is_deterministic():
    assert make_corpus(40, seed=3) == make_corpus(40, seed=3)
    assert make_corpus(40, seed=3) != make_corpus(40, seed=4)


def test_document_schema_valid():
    doc = _tiny_doc()
    assert doc["schema"] == BENCH_SCHEMA
    assert validate_document(doc) == []
    entry = doc["algorithms"]["zero"]
    assert entry["match"] is True
    assert entry["vectorized"] is True
    assert entry["scalar_lines_per_s"] > 0


def test_validate_document_catches_problems():
    assert validate_document([]) != []
    assert validate_document({"schema": "other/1"}) != []
    doc = _tiny_doc()
    del doc["algorithms"]["zero"]["checksum"]
    assert any("checksum" in problem for problem in validate_document(doc))


def test_bench_algorithm_checksums_agree():
    corpus = make_corpus(64, seed=1)
    for algorithm in vectorized_algorithms():
        entry = bench_algorithm(algorithm, corpus, repeat=1)
        assert entry["match"], algorithm


def test_find_regressions():
    doc = _tiny_doc()
    assert find_regressions(doc, doc) == []
    slower = json.loads(json.dumps(doc))
    slower["algorithms"]["zero"]["vector_lines_per_s"] /= 10
    assert find_regressions(doc, slower)
    assert find_regressions(slower, doc) == []   # speedups never trip it


def test_find_regressions_flags_unusable_baseline():
    """A zero or absent baseline throughput is a broken gate, not a
    pass: the gate must say so instead of waving every run through."""
    doc = _tiny_doc()
    zeroed = json.loads(json.dumps(doc))
    zeroed["algorithms"]["zero"]["vector_lines_per_s"] = 0.0
    problems = find_regressions(zeroed, doc)
    assert len(problems) == 1
    assert "baseline" in problems[0] and "unusable" in problems[0]

    absent = json.loads(json.dumps(doc))
    del absent["algorithms"]["zero"]["vector_lines_per_s"]
    problems = find_regressions(absent, doc)
    assert problems and "re-record the baseline" in problems[0]


def test_find_regressions_flags_unusable_current_measurement():
    doc = _tiny_doc()
    broken = json.loads(json.dumps(doc))
    broken["algorithms"]["zero"]["vector_lines_per_s"] = None
    problems = find_regressions(doc, broken)
    assert problems and "did not produce a throughput" in problems[0]


def test_render_table_mentions_algorithms():
    text = render_table(_tiny_doc())
    assert "zero" in text and "speedup" in text


def test_cli_quick_smoke(tmp_path, capsys):
    """--quick runs in seconds and emits a schema-valid file + journal."""
    out = tmp_path / "BENCH_kernels.json"
    journal = tmp_path / "runs.jsonl"
    code = bench_main(["--quick", "--algorithms", "zero,bdi",
                       "--out", str(out), "--journal", str(journal)])
    assert code == 0
    doc = json.loads(out.read_text())
    assert validate_document(doc) == []
    assert sorted(doc["algorithms"]) == ["bdi", "zero"]
    events = read_journal(journal)
    assert events[-1]["event"] == "bench"
    assert validate_event(events[-1]) == []
    assert events[-1]["match"] is True
    assert "written to" in capsys.readouterr().out


def test_cli_regression_gate_and_force(tmp_path, capsys):
    out = tmp_path / "BENCH_kernels.json"
    args = ["--quick", "--algorithms", "zero", "--no-journal",
            "--out", str(out)]
    assert bench_main(args) == 0
    recorded = json.loads(out.read_text())
    # Inflate the recorded throughput so the rerun looks like a crash.
    recorded["algorithms"]["zero"]["vector_lines_per_s"] *= 100
    out.write_text(json.dumps(recorded))
    assert bench_main(args) == 3
    assert "REFUSING" in capsys.readouterr().out
    assert json.loads(out.read_text()) == recorded   # untouched
    assert bench_main(args + ["--force"]) == 0
    assert json.loads(out.read_text()) != recorded   # overwritten


def test_cli_corrupt_baseline_ignored(tmp_path):
    out = tmp_path / "BENCH_kernels.json"
    out.write_text("{not json")
    assert bench_main(["--quick", "--algorithms", "zero", "--no-journal",
                       "--out", str(out)]) == 0
    assert validate_document(json.loads(out.read_text())) == []


def test_cli_rejects_unknown_algorithm(tmp_path):
    with pytest.raises(SystemExit):
        bench_main(["--algorithms", "nope", "--no-journal",
                    "--out", str(tmp_path / "b.json")])


def test_committed_trajectory_file_is_valid():
    """The repo-root BENCH_kernels.json stays schema-valid and honest."""
    from pathlib import Path
    path = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"
    doc = json.loads(path.read_text())
    assert validate_document(doc) == []
    assert all(entry["match"] for entry in doc["algorithms"].values())
    # The ISSUE acceptance bar: >= 10x measured on at least one algorithm.
    assert max(entry["speedup"] for entry in doc["algorithms"].values()) >= 10
