"""Tests for the analytic core model."""

import pytest

from repro.cpu import AnalyticCore, CoreConfig


class TestAnalyticCore:
    def test_compute_time_uses_cpi(self):
        core = AnalyticCore(cpi=0.5)
        core.advance_instructions(1000)
        assert core.now == 500
        assert core.stats.instructions == 1000

    def test_cpi_floor_is_issue_width(self):
        core = AnalyticCore(CoreConfig(issue_width=4), cpi=0.01)
        core.advance_instructions(400)
        assert core.now == 100  # capped at 4 IPC

    def test_stall_divided_by_mlp(self):
        core = AnalyticCore(mlp=2.0)
        core.stall(100)
        assert core.now == 50
        assert core.stats.stall_cycles == 50

    def test_ipc(self):
        core = AnalyticCore(mlp=1.0, cpi=1.0)
        core.advance_instructions(100)
        core.stall(100)
        assert core.stats.ipc() == pytest.approx(0.5)

    def test_seconds(self):
        core = AnalyticCore(CoreConfig(freq_ghz=3.0), cpi=1.0)
        core.advance_instructions(3_000_000)
        assert core.seconds() == pytest.approx(1e-3)

    def test_invalid_mlp(self):
        with pytest.raises(ValueError):
            AnalyticCore(mlp=0)

    def test_negative_inputs_rejected(self):
        core = AnalyticCore()
        with pytest.raises(ValueError):
            core.advance_instructions(-1)
        with pytest.raises(ValueError):
            core.stall(-1)
