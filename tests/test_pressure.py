"""Tests for the memory-pressure overload-control layer (docs/PRESSURE.md).

Three layers of coverage: the :class:`PressureController` policies in
isolation (token bucket, priority shedding, budgets, watchdog, OOM
absorption), the campaign machinery (cells, reconciliation, recovery
drills), and the sweep-level acceptance claims — zero escaped OOMs,
zero unreconciled transitions, every cell recovers.
"""

import pytest

from repro.analysis.__main__ import main as analysis_main
from repro.core import (
    BalloonDriver,
    CompressedMemoryController,
    FreeListOSModel,
    compresso_config,
)
from repro.memory import MemoryGeometry
from repro.memory.allocator import OutOfMemoryError
from repro.obs import Tracer
from repro.osmodel import (
    LRUPagingSimulator,
    ScaledBudget,
    StaticBudget,
    VirtualMemory,
)
from repro.pressure import (
    PRIORITY_BEST_EFFORT,
    PRIORITY_CRITICAL,
    PRIORITY_STANDARD,
    PressureCampaign,
    PressureConfig,
    PressureController,
    TenantSpec,
    TokenBucket,
    jain_index,
    parse_pressure_spec,
    pressure_cell,
    run_recovery_drill,
)


def incompressible(salt: int) -> bytes:
    return bytes((salt * 131 + i * 197 + 89) % 256 for i in range(64))


def zero_page(controller):
    return [bytes(64)] * controller.config.lines_per_page


def small_node(rate=100.0, burst=100, tenants=None, installed=8 << 20,
               ratio=2.0, **knobs):
    """A pressure-wrapped node with one tenant per priority class."""
    tracer = Tracer()
    geometry = MemoryGeometry(installed_bytes=installed,
                              advertised_ratio=ratio)
    controller = CompressedMemoryController(compresso_config(), geometry,
                                            tracer=tracer)
    config = PressureConfig(admission_rate=rate, admission_burst=burst,
                            **knobs)
    if tenants is None:
        tenants = [
            TenantSpec("crit", StaticBudget(64), PRIORITY_CRITICAL),
            TenantSpec("std", StaticBudget(64), PRIORITY_STANDARD),
            TenantSpec("batch", StaticBudget(64), PRIORITY_BEST_EFFORT),
        ]
    pressure = PressureController(controller, tenants, config=config)
    return pressure, controller, tracer


# ---------------------------------------------------------------------------
# building blocks
# ---------------------------------------------------------------------------

class TestTokenBucket:
    def test_burst_then_dry_then_refill(self):
        bucket = TokenBucket(rate=2.0, burst=3)
        assert [bucket.take(0) for _ in range(3)] == [True] * 3
        assert bucket.take(0) is False
        assert bucket.wait_clocks(0) == 1
        # One clock unit refills rate=2 tokens.
        assert bucket.take(1) is True
        assert bucket.take(1) is True
        assert bucket.take(1) is False

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=2)
        assert bucket.take(0) and bucket.take(0)
        assert [bucket.take(100) for _ in range(3)] == [True, True, False]

    def test_wait_is_zero_when_tokens_available(self):
        bucket = TokenBucket(rate=1.0, burst=1)
        assert bucket.wait_clocks(0) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0)


class TestJainIndex:
    def test_equal_shares_are_perfectly_fair(self):
        assert jain_index([3.0, 3.0, 3.0]) == pytest.approx(1.0)

    def test_one_hot_is_one_over_n(self):
        assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_empty_and_all_zero_are_vacuously_fair(self):
        assert jain_index([]) == 1.0
        assert jain_index([0.0, 0.0]) == 1.0


class TestValidation:
    def test_pressure_config_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            PressureConfig(admission_rate=0.0)
        with pytest.raises(ValueError):
            PressureConfig(admission_burst=0)
        with pytest.raises(ValueError):
            PressureConfig(enter_utilization=0.5, exit_utilization=0.8)
        with pytest.raises(ValueError):
            PressureConfig(max_degraded_clock=0)
        with pytest.raises(ValueError):
            PressureConfig(watchdog_page_out=0)

    def test_tenant_spec_validation(self):
        with pytest.raises(ValueError):
            TenantSpec("", StaticBudget(4))
        with pytest.raises(ValueError):
            TenantSpec("t", StaticBudget(4), priority=7)
        with pytest.raises(TypeError):
            TenantSpec("t", budget=object())

    def test_controller_needs_distinct_tenants(self):
        tracer = Tracer()
        geometry = MemoryGeometry(installed_bytes=1 << 20,
                                  advertised_ratio=2.0)
        ctrl = CompressedMemoryController(compresso_config(), geometry,
                                          tracer=tracer)
        with pytest.raises(ValueError):
            PressureController(ctrl, [])
        dupes = [TenantSpec("t", StaticBudget(4)),
                 TenantSpec("t", StaticBudget(8))]
        with pytest.raises(ValueError):
            PressureController(ctrl, dupes)

    def test_unknown_tenant_is_a_clear_error(self):
        pressure, _, _ = small_node()
        with pytest.raises(KeyError, match="unknown tenant"):
            pressure.write("nobody", 0, 0, bytes(64))


class TestScaledBudget:
    def test_factors_squeeze_below_base(self):
        budget = ScaledBudget(StaticBudget(10), [1.0, 0.5, 0.1])
        assert budget.resident_limit(0.0) == 10
        assert budget.resident_limit(0.5) == 5
        assert budget.resident_limit(1.0) == 1   # floor: always >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ScaledBudget(StaticBudget(10), [])
        with pytest.raises(ValueError):
            ScaledBudget(StaticBudget(10), [0.5, 0.0])


class TestPagingEscalationAPI:
    def test_evict_coldest_takes_lru_order(self):
        pager = LRUPagingSimulator(StaticBudget(10))
        for page in (1, 2, 3, 4):
            pager.touch(page, 0.0)
        pager.touch(1, 0.0)      # page 1 is now the hottest
        assert pager.evict_coldest(2) == [2, 3]
        assert pager.resident_pages == 2

    def test_drop_removes_without_eviction_semantics(self):
        pager = LRUPagingSimulator(StaticBudget(10))
        pager.touch(7, 0.0)
        assert pager.drop(7) is True
        assert pager.drop(7) is False
        assert pager.resident_pages == 0


# ---------------------------------------------------------------------------
# admission control and priority classes
# ---------------------------------------------------------------------------

class TestAdmission:
    def test_best_effort_sheds_when_bucket_dry(self):
        pressure, _, tracer = small_node(rate=1.0, burst=2)
        assert pressure.write("batch", 0, 0, bytes(64)) == "admitted"
        assert pressure.write("batch", 0, 1, bytes(64)) == "admitted"
        assert pressure.write("batch", 0, 2, bytes(64)) == "shed"
        assert pressure.stats.shed == 1
        shed = [e for e in tracer.events if e.name == "request_shed"]
        assert len(shed) == 1
        assert shed[0].args["tenant"] == "batch"
        assert shed[0].args["priority"] == PRIORITY_BEST_EFFORT

    def test_critical_stalls_instead_of_shedding(self):
        pressure, _, tracer = small_node(rate=1.0, burst=1)
        assert pressure.write("crit", 0, 0, bytes(64)) == "admitted"
        assert pressure.write("crit", 0, 1, bytes(64)) == "admitted"
        assert pressure.stats.shed == 0
        assert pressure.stats.throttled == 1
        throttles = [e for e in tracer.events
                     if e.name == "admission_throttled"]
        assert len(throttles) == 1
        assert throttles[0].extra >= 1          # the computed wait
        assert pressure.stall.count == 2        # both requests observed
        assert pressure.stall.maximum >= 1.0

    def test_standard_sheds_past_the_stall_bound(self):
        # rate 0.01/clock: one token costs 100 clocks > max_stall_clock.
        pressure, _, _ = small_node(rate=0.01, burst=1, max_stall_clock=64)
        assert pressure.write("std", 0, 0, bytes(64)) == "admitted"
        assert pressure.write("std", 0, 1, bytes(64)) == "shed"
        assert pressure.stats.shed == 1

    def test_standard_stalls_for_short_waits(self):
        pressure, _, _ = small_node(rate=1.0, burst=1)
        assert pressure.write("std", 0, 0, bytes(64)) == "admitted"
        assert pressure.write("std", 0, 1, bytes(64)) == "admitted"
        assert pressure.stats.throttled == 1

    def test_step_refills_the_bucket(self):
        pressure, _, _ = small_node(rate=2.0, burst=1)
        assert pressure.write("batch", 0, 0, bytes(64)) == "admitted"
        assert pressure.write("batch", 0, 1, bytes(64)) == "shed"
        pressure.step()
        assert pressure.write("batch", 0, 2, bytes(64)) == "admitted"

    def test_reads_are_never_gated(self):
        pressure, _, _ = small_node(rate=1.0, burst=1)
        assert pressure.write("batch", 0, 0, bytes(64)) == "admitted"
        # Bucket is dry; reads still pass and consume nothing.
        for _ in range(5):
            result = pressure.read("batch", 0, 1)
            assert result.data == bytes(64)
        assert pressure.stats.requests == 1      # only the write counted
        assert pressure.write("batch", 0, 2, bytes(64)) == "shed"


# ---------------------------------------------------------------------------
# budgets, OOM absorption, watchdog
# ---------------------------------------------------------------------------

class TestBudgets:
    def test_over_budget_tenant_pages_out_coldest(self):
        tenants = [TenantSpec("std", StaticBudget(2), PRIORITY_STANDARD)]
        pressure, controller, tracer = small_node(tenants=tenants)
        for page in (0, 1):
            assert pressure.install("std", page,
                                    zero_page(controller)) == "admitted"
        assert pressure.install("std", 2,
                                zero_page(controller)) == "admitted"
        assert pressure.stats.over_budget == 1
        assert pressure.stats.page_outs == 1
        assert pressure.tenants["std"].pager.resident_pages == 2
        counts = tracer.counts()
        assert counts["tenant_over_budget"] == 1
        assert counts["tenant_page_out"] == 1
        victims = [e.page for e in tracer.events
                   if e.name == "tenant_page_out"]
        assert victims == [0]                    # the coldest page

    def test_rewriting_an_owned_page_is_not_over_budget(self):
        tenants = [TenantSpec("std", StaticBudget(2), PRIORITY_STANDARD)]
        pressure, controller, _ = small_node(tenants=tenants)
        for page in (0, 1):
            pressure.install("std", page, zero_page(controller))
        for _ in range(4):
            assert pressure.write("std", 1, 0, bytes(64)) == "admitted"
        assert pressure.stats.over_budget == 0


class TestOOMAbsorption:
    def test_escaping_oom_is_absorbed_and_traced(self, monkeypatch):
        pressure, controller, tracer = small_node()

        def boom(page, line, data):
            raise OutOfMemoryError("injected")

        monkeypatch.setattr(controller, "write_line", boom)
        assert pressure.write("crit", 0, 0, bytes(64)) == "denied"
        assert pressure.stats.oom_absorbed == 1
        assert pressure.stats.denied == 1
        assert tracer.counts()["pressure_oom_absorbed"] == 1


class TestWatchdog:
    def _degraded_node(self):
        """Drive a pressure-wrapped node into degraded mode for real."""
        tenants = [TenantSpec("crit", StaticBudget(4096),
                              PRIORITY_CRITICAL)]
        pressure, controller, tracer = small_node(
            rate=10_000.0, burst=10_000, tenants=tenants,
            installed=2 * 1024 * 1024, ratio=4.0)
        page = 0
        while controller.stats.alloc_denials == 0:
            assert page < controller.geometry.ospa_pages, "never exhausted"
            for line in range(64):
                pressure.write("crit", page, line,
                               incompressible(page * 64 + line))
            page += 1
        assert controller.degraded_mode
        return pressure, controller, tracer

    def test_degraded_entry_engages_backpressure(self):
        pressure, _, tracer = self._degraded_node()
        assert pressure.in_pressure
        assert pressure.stats.pressure_enters >= 1
        assert tracer.counts()["pressure_enter"] == \
            pressure.stats.pressure_enters

    def test_dwell_bound_escalates_to_forced_page_out(self):
        pressure, controller, tracer = self._degraded_node()
        # Backdate the dwell timer so the bound is exceeded.
        controller.degraded_since = (
            tracer.clock - pressure.config.max_degraded_clock - 1)
        pressure.step()
        assert pressure.stats.escalations == 1
        assert 1 <= pressure.stats.page_outs <= \
            pressure.config.watchdog_page_out
        counts = tracer.counts()
        assert counts["watchdog_escalation"] == 1
        assert counts["tenant_page_out"] == pressure.stats.page_outs
        if controller.degraded_mode:
            # Still degraded: the timer must have been re-armed.
            assert controller.degraded_since == tracer.clock

    def test_watchdog_quiet_inside_the_dwell_bound(self):
        pressure, controller, tracer = self._degraded_node()
        controller.degraded_since = tracer.clock
        pressure.step()
        assert pressure.stats.escalations == 0
        assert "watchdog_escalation" not in tracer.counts()


# ---------------------------------------------------------------------------
# balloon protection (pressure shields tenants from reclaim)
# ---------------------------------------------------------------------------

class TestBalloonProtection:
    def test_protected_page_survives_reclaim(self):
        tracer = Tracer()
        geometry = MemoryGeometry(installed_bytes=2 * 1024 * 1024,
                                  advertised_ratio=4.0)
        ctrl = CompressedMemoryController(compresso_config(), geometry,
                                          tracer=tracer)
        # Page 12 last, so neither cold page is the controller's
        # in-flight ``_active_page`` (those are held untouched).
        for page in (10, 11, 12):
            for line in range(64):
                ctrl.write_line(page, line,
                                incompressible(page * 64 + line))
        balloon = BalloonDriver(
            ctrl, FreeListOSModel([], [(10, False), (11, False)]),
            safety_chunks=0)
        balloon.protect([10])
        assert balloon.protected_pages == 1
        balloon.relieve(1)
        assert balloon.stats.pages_protected == 1
        assert 10 in ctrl.pages                  # shielded
        assert 11 not in ctrl.pages              # reclaimed instead
        skips = [e for e in tracer.events
                 if e.name == "balloon_protect_skip"]
        assert [e.page for e in skips] == [10]
        assert balloon.held_pages == 2           # both held for the OS
        balloon.unprotect()
        assert balloon.protected_pages == 0


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------

class TestMetrics:
    def test_metrics_are_a_flat_number_map(self):
        pressure, controller, _ = small_node()
        for page in range(3):
            pressure.install("crit", page, zero_page(controller))
        metrics = pressure.metrics()
        for key, value in metrics.items():
            assert isinstance(key, str)
            assert isinstance(value, (int, float))
            assert not isinstance(value, bool)
        assert metrics["requests"] == 3
        assert 0.0 < metrics["jain_fairness"] <= 1.0
        assert "tenant_crit_resident" in metrics
        assert metrics["tenant_crit_resident"] == 3

    def test_fairness_reflects_satisfied_shares(self):
        tenants = [TenantSpec("a", StaticBudget(4)),
                   TenantSpec("b", StaticBudget(4))]
        pressure, controller, _ = small_node(tenants=tenants)
        assert pressure.fairness() == 1.0        # nobody resident: vacuous
        for page in range(4):
            pressure.install("a", page, zero_page(controller))
        # One tenant fully satisfied, one empty -> Jain = 1/2.
        assert pressure.fairness() == pytest.approx(0.5)


# ---------------------------------------------------------------------------
# campaign: specs, cells, drills, acceptance
# ---------------------------------------------------------------------------

class TestSpecParsing:
    def test_good_specs(self):
        assert parse_pressure_spec("collapse:1.5") == ("collapse", 1.5, 3)
        assert parse_pressure_spec("stampede:2.0:2") == ("stampede", 2.0, 2)

    @pytest.mark.parametrize("spec", [
        "collapse", "bogus:1.0", "collapse:x", "collapse:0",
        "collapse:1:9", "collapse:1:z", "collapse:1:2:3",
    ])
    def test_bad_specs_raise(self, spec):
        with pytest.raises(ValueError):
            parse_pressure_spec(spec)


class TestRecoveryDrill:
    def test_drill_drains_to_survivor_set(self):
        tenants = [TenantSpec("crit", StaticBudget(16),
                              PRIORITY_CRITICAL)]
        pressure, controller, _ = small_node(tenants=tenants)
        vm = VirtualMemory(total_pages=controller.geometry.ospa_pages)
        pages = []
        for _ in range(6):
            page = vm.allocate_page()
            pressure.install("crit", page, zero_page(controller))
            pages.append(page)
        assert run_recovery_drill(pressure, {"crit": pages}, vm=vm,
                                  keep=2) is True
        assert pressure.tenants["crit"].pager.resident_pages == 2
        assert not controller.degraded_mode


class TestPressureCells:
    def test_collapse_exercises_the_full_ladder_and_recovers(self):
        """The headline cell: compressibility collapse under variable
        allocation reaches degraded mode, the watchdog escalates, and
        the node still recovers with a clean ledger."""
        cell = pressure_cell("collapse", 2.0, allocation="variable",
                             n_steps=160)
        assert cell.degraded_enters > 0
        assert cell.metrics["escalations"] > 0
        assert cell.degraded_exits >= cell.degraded_enters
        assert cell.recovered
        assert cell.unreconciled == []
        assert cell.oom_escaped == 0

    def test_stampede_sheds_by_priority(self):
        cell = pressure_cell("stampede", 2.0, allocation="chunks",
                             n_steps=120)
        metrics = cell.metrics
        assert metrics["shed"] > 0
        assert metrics["tenant_crit_shed"] == 0      # critical never shed
        assert metrics["tenant_batch_shed"] > 0
        assert cell.unreconciled == []
        assert cell.oom_escaped == 0

    def test_full_sweep_acceptance(self):
        """The PR's resilience claims over the whole sweep (reduced
        step count; the CLI default runs the same cells longer)."""
        campaign = PressureCampaign(n_steps=60)
        cells = campaign.run()
        assert len(cells) == 3 * 3 * 2
        assert campaign.oom_escaped == 0
        assert campaign.unreconciled == 0
        assert campaign.all_recovered
        rows = campaign.rows()
        assert {"scenario", "intensity", "allocation", "jain_fairness",
                "stall_p95", "recovered"} <= set(rows[0])
        for row in rows:
            assert 0.0 < row["jain_fairness"] <= 1.0
            assert row["recovered"] == 1
            assert row["unreconciled"] == 0

    def test_campaign_rejects_unknown_scenario(self):
        with pytest.raises(ValueError):
            PressureCampaign(scenarios=("collapse", "quake"))


class TestPressureCLI:
    def test_spec_run_renders_and_passes_strict(self, capsys):
        code = analysis_main(["pressure", "--spec", "diurnal:0.5",
                              "--allocation", "chunks", "--steps", "40",
                              "--strict"])
        out = capsys.readouterr().out
        assert code == 0
        assert "diurnal" in out
        assert "oom_escaped" in out
        assert "all_recovered: True" in out

    def test_bad_spec_is_an_argparse_error(self):
        with pytest.raises(SystemExit):
            analysis_main(["pressure", "--spec", "bogus:1.0"])
