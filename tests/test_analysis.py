"""Tests for the experiment harness and rendering."""

import pytest

from repro.analysis import (
    ExperimentScale,
    arithmetic_mean,
    geometric_mean,
    render,
    run_fig2,
    run_sec7_energy_area,
)
from repro.analysis.report import ExperimentResult

TINY = ExperimentScale(n_events=400, scale=0.02, capacity_touches=2000,
                       capacity_footprint_cap=60, fig2_pages=10,
                       benchmarks=("gcc", "mcf"), mixes=("mix2",))


class TestReport:
    def test_render_basic(self):
        result = ExperimentResult(
            experiment_id="x", title="demo", columns=["name", "value"])
        result.add_row(name="a", value=1.5)
        result.summary["mean"] = 1.5
        result.paper_values["expected"] = "about 1.5"
        text = render(result)
        assert "demo" in text
        assert "1.500" in text
        assert "about 1.5" in text

    def test_column_values_skips_non_numeric(self):
        result = ExperimentResult("x", "t", ["name", "v"])
        result.add_row(name="a", v=2.0)
        result.add_row(name="b", v="n/a")
        assert result.column_values("v") == [2.0]

    def test_means(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert arithmetic_mean([1.0, 3.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0
        assert arithmetic_mean([]) == 0.0


class TestRunners:
    def test_fig2_structure(self):
        result = run_fig2(TINY)
        assert result.experiment_id == "fig2"
        assert len(result.rows) == 2
        for row in result.rows:
            assert row["bpc+linepack"] >= 1.0
            # LinePack never loses to LCP packing on the same data.
            assert row["bpc+linepack"] >= row["bpc+lcp"] - 0.05

    def test_sec7_values(self):
        result = run_sec7_energy_area()
        values = {row["quantity"]: row["value"] for row in result.rows}
        assert values["adder_visible_cycles"] == 1.0
        assert values["bpc_area_um2"] == 43000.0

    def test_scale_presets_distinct(self):
        from repro.analysis import DEFAULT, FULL, QUICK
        assert QUICK.n_events < DEFAULT.n_events < FULL.n_events
        assert len(QUICK.benchmarks) < len(DEFAULT.benchmarks)
