"""Tests for the whole-program flow engine (docs/FLOWCHECK.md).

Three layers: the repo itself must pass ``lint --deep`` (the tier-1
acceptance gate), golden sandbox trees prove each flow rule catches a
seeded violation that the per-file rules provably miss, and the
engine/driver mechanics (symbol resolution, CHA dispatch, baseline,
stale suppressions, syntax-error workers, --jobs parity, ci.sh) get
targeted coverage.
"""

import json
import os
import stat
import subprocess

import pytest

from repro.analysis.__main__ import main as analysis_main
from repro.check import run_lint, write_baseline
from repro.check.driver import discover_files, lint_file, repo_root
from repro.check.flow import FlowProgram, flow_rule_ids
from repro.check.rules import all_rules

ROOT = repo_root()

FILE_RULE_IDS = [r.id for r in all_rules() if r.scope == "file"]
FLOW_RULE_IDS = set(flow_rule_ids())


def _write(root, relpath, source):
    path = root / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return path


def _flow_findings(report, rule=None):
    wanted = {rule} if rule else FLOW_RULE_IDS
    return [f for f in report.findings if f.rule in wanted]


# ---------------------------------------------------------------------------
# the repo itself: the acceptance gate
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def repo_deep_report():
    return run_lint(deep=True)


def test_repo_deep_lint_clean(repo_deep_report):
    """tier-1 gate: zero unbaselined findings under ``lint --deep``."""
    assert repo_deep_report.errors == [], repo_deep_report.render()
    assert repo_deep_report.exit_code == 0


def test_repo_baseline_carries_exactly_the_bench_finding(repo_deep_report):
    """The checked-in baseline grandfathers run_bench timing, no more."""
    assert repo_deep_report.baselined == 1
    doc = json.loads((ROOT / ".reprolint-baseline.json").read_text())
    assert doc["schema"] == "reprolint-baseline/1"
    entries = doc["findings"]
    assert len(entries) == 1
    assert entries[0]["rule"] == "determinism-taint"
    assert entries[0]["path"] == "src/repro/analysis/bench.py"


def test_repo_deep_parallel_matches_serial():
    """--jobs N output is byte-identical to serial for --deep."""
    serial = run_lint(deep=True, jobs=1)
    parallel = run_lint(deep=True, jobs=2)
    assert serial.render() == parallel.render()


def test_flow_rules_registered():
    ids = {r.id for r in all_rules()}
    assert FLOW_RULE_IDS <= ids
    assert {"determinism-taint", "shared-state-race",
            "exception-escape"} == FLOW_RULE_IDS


# ---------------------------------------------------------------------------
# golden sandbox: determinism-taint
# ---------------------------------------------------------------------------

JOURNAL_SRC = (
    '"""doc."""\n'
    "class RunJournal:\n"
    "    def event(self, event, **fields):\n"
    "        return dict(fields)\n"
)

TAINT_APP_SRC = (
    '"""doc."""\n'
    "import time\n"
    "from ..runner.journal import RunJournal\n"
    "\n"
    "def jitter():\n"
    "    return time.perf_counter()\n"
    "\n"
    "def record(journal: RunJournal, value):\n"
    '    journal.event("unit_end", value=value + jitter())\n'
)


def _taint_sandbox(tmp_path):
    _write(tmp_path, "src/repro/runner/journal.py", JOURNAL_SRC)
    _write(tmp_path, "src/repro/analysis/app.py", TAINT_APP_SRC)
    return tmp_path


def test_determinism_taint_catches_interprocedural_flow(tmp_path):
    """A wall-clock read two calls away from the journal sink."""
    root = _taint_sandbox(tmp_path)
    report = run_lint(root=root, deep=True)
    hits = _flow_findings(report, "determinism-taint")
    assert len(hits) == 1
    assert hits[0].path == "src/repro/analysis/app.py"
    assert "time.perf_counter" in hits[0].message
    assert "jitter" in hits[0].message          # the witness chain


def test_determinism_taint_invisible_to_per_file_rules(tmp_path):
    """The same file passes every per-file rule — only flow sees it."""
    root = _taint_sandbox(tmp_path)
    app = root / "src/repro/analysis/app.py"
    kept, suppressed = lint_file(str(app), str(root), FILE_RULE_IDS)
    assert kept == [] and suppressed == 0


def test_determinism_taint_respects_boundary_annotation(tmp_path):
    """A boundary on the tainted helper stops propagation to callers."""
    root = _taint_sandbox(tmp_path)
    _write(root, "src/repro/analysis/app.py", TAINT_APP_SRC.replace(
        "def jitter():",
        "# flowcheck: boundary(audited: clamped before journaling)\n"
        "def jitter():"))
    report = run_lint(root=root, deep=True)
    assert _flow_findings(report, "determinism-taint") == []


def test_determinism_taint_inline_suppression(tmp_path):
    root = _taint_sandbox(tmp_path)
    _write(root, "src/repro/analysis/app.py", TAINT_APP_SRC.replace(
        '    journal.event("unit_end", value=value + jitter())',
        "    # reprolint: disable=determinism-taint\n"
        '    journal.event("unit_end", value=value + jitter())'))
    report = run_lint(root=root, deep=True)
    assert _flow_findings(report, "determinism-taint") == []
    assert report.suppressed >= 1


def test_unseeded_constructor_is_source_seeded_is_not(tmp_path):
    rng_app = TAINT_APP_SRC.replace("import time\n", "import random\n")
    unseeded = rng_app.replace("    return time.perf_counter()",
                               "    return random.Random().random()")
    _write(tmp_path, "src/repro/runner/journal.py", JOURNAL_SRC)
    _write(tmp_path, "src/repro/analysis/app.py", unseeded)
    report = run_lint(root=tmp_path, deep=True)
    assert len(_flow_findings(report, "determinism-taint")) == 1

    seeded = rng_app.replace("    return time.perf_counter()",
                             "    return random.Random(1234).random()")
    _write(tmp_path, "src/repro/analysis/app.py", seeded)
    report = run_lint(root=tmp_path, deep=True)
    assert _flow_findings(report, "determinism-taint") == []


# ---------------------------------------------------------------------------
# golden sandbox: shared-state-race
# ---------------------------------------------------------------------------

RACE_SRC = (
    '"""doc."""\n'
    "import multiprocessing\n"
    "\n"
    "CACHE = {}\n"
    "\n"
    "def worker(n):\n"
    "    CACHE[n] = n * 2\n"
    "    return n\n"
    "\n"
    "def run(items):\n"
    "    with multiprocessing.Pool(2) as pool:\n"
    "        return pool.map(worker, items)\n"
)


def test_shared_state_race_catches_worker_global_write(tmp_path):
    _write(tmp_path, "src/repro/runner/mod.py", RACE_SRC)
    report = run_lint(root=tmp_path, deep=True)
    hits = _flow_findings(report, "shared-state-race")
    assert len(hits) == 1
    assert hits[0].line == 7                      # the CACHE[n] store
    assert "worker-reachable" in hits[0].message

    # per-file rules cannot connect pool.map to the write
    kept, _ = lint_file(str(tmp_path / "src/repro/runner/mod.py"),
                        str(tmp_path), FILE_RULE_IDS)
    assert kept == []


def test_shared_state_race_shared_ok_waiver(tmp_path):
    waived = RACE_SRC.replace(
        "    CACHE[n] = n * 2",
        "    # flowcheck: shared-ok(diagnostic counter, merged on join)\n"
        "    CACHE[n] = n * 2")
    _write(tmp_path, "src/repro/runner/mod.py", waived)
    report = run_lint(root=tmp_path, deep=True)
    assert _flow_findings(report, "shared-state-race") == []
    # and the annotation is consumed, so no stale warning either
    assert not [f for f in report.findings if f.rule == "stale-suppression"]


def test_shared_state_race_flags_lambda_dispatch(tmp_path):
    lam = RACE_SRC.replace("pool.map(worker, items)",
                           "pool.map(lambda n: n, items)")
    _write(tmp_path, "src/repro/runner/mod.py", lam)
    report = run_lint(root=tmp_path, deep=True)
    hits = _flow_findings(report, "shared-state-race")
    assert any("lambda" in f.message and "picklable" in f.message
               for f in hits)


def test_shared_state_race_ignores_undispatched_writes(tmp_path):
    quiet = RACE_SRC.replace("        return pool.map(worker, items)",
                             "        return list(items)")
    _write(tmp_path, "src/repro/runner/mod.py", quiet)
    report = run_lint(root=tmp_path, deep=True)
    assert _flow_findings(report, "shared-state-race") == []


# ---------------------------------------------------------------------------
# golden sandbox: exception-escape
# ---------------------------------------------------------------------------

ALLOC_SRC = (
    '"""doc."""\n'
    "class OutOfMemoryError(Exception):\n"
    "    pass\n"
    "\n"
    "def reserve(n):\n"
    "    if n > 4:\n"
    '        raise OutOfMemoryError("exhausted")\n'
    "    return n\n"
)

CTRL_SRC = (
    '"""doc."""\n'
    "from ..memory.allocator import OutOfMemoryError, reserve\n"
    "\n"
    "def install(n):\n"
    "    try:\n"
    "        return reserve(n)\n"
    "    except OutOfMemoryError:\n"
    "        return 0\n"
)

RUNNER_BAD_SRC = (
    '"""doc."""\n'
    "from ..memory.allocator import reserve\n"
    "\n"
    "def run(n):\n"
    "    return reserve(n)\n"
)

RUNNER_GOOD_SRC = (
    '"""doc."""\n'
    "from ..core.ctrl import install\n"
    "\n"
    "def run(n):\n"
    "    return install(n)\n"
)


def test_exception_escape_catches_uncaught_oom(tmp_path):
    _write(tmp_path, "src/repro/memory/allocator.py", ALLOC_SRC)
    _write(tmp_path, "src/repro/runner/exec.py", RUNNER_BAD_SRC)
    report = run_lint(root=tmp_path, deep=True)
    hits = _flow_findings(report, "exception-escape")
    assert len(hits) == 1
    assert hits[0].path == "src/repro/runner/exec.py"
    assert hits[0].line == 5
    assert "OutOfMemoryError" in hits[0].message

    # per-file rules see nothing wrong with either file
    for rel in ("src/repro/memory/allocator.py", "src/repro/runner/exec.py"):
        kept, _ = lint_file(str(tmp_path / rel), str(tmp_path),
                            FILE_RULE_IDS)
        assert kept == [], rel


def test_exception_escape_accepts_core_caught_path(tmp_path):
    _write(tmp_path, "src/repro/memory/allocator.py", ALLOC_SRC)
    _write(tmp_path, "src/repro/core/ctrl.py", CTRL_SRC)
    _write(tmp_path, "src/repro/runner/exec.py", RUNNER_GOOD_SRC)
    report = run_lint(root=tmp_path, deep=True)
    assert _flow_findings(report, "exception-escape") == []


def test_exception_escape_respects_runner_local_try(tmp_path):
    caught = RUNNER_BAD_SRC.replace(
        "def run(n):\n    return reserve(n)",
        "def run(n):\n"
        "    try:\n"
        "        return reserve(n)\n"
        "    except Exception:\n"
        "        return None")
    _write(tmp_path, "src/repro/memory/allocator.py", ALLOC_SRC)
    _write(tmp_path, "src/repro/runner/exec.py", caught)
    report = run_lint(root=tmp_path, deep=True)
    assert _flow_findings(report, "exception-escape") == []


# ---------------------------------------------------------------------------
# engine mechanics
# ---------------------------------------------------------------------------

def test_symbol_table_chases_package_reexports(tmp_path):
    _write(tmp_path, "src/repro/runner/journal.py", JOURNAL_SRC)
    _write(tmp_path, "src/repro/runner/__init__.py",
           '"""doc."""\nfrom .journal import RunJournal\n')
    program = FlowProgram(tmp_path, discover_files(tmp_path))
    assert program.table.canonicalize("repro.runner.RunJournal") == \
        "repro.runner.journal.RunJournal"


def test_callgraph_resolves_cha_overrides(tmp_path):
    _write(tmp_path, "src/repro/core/shapes.py", (
        '"""doc."""\n'
        "class Base:\n"
        "    def handle(self):\n"
        "        return 0\n"
        "class Override(Base):\n"
        "    def handle(self):\n"
        "        return 1\n"
        "def call_it(obj):\n"
        "    return obj.handle()\n"
    ))
    program = FlowProgram(tmp_path, discover_files(tmp_path))
    callees = program.graph.callees("repro.core.shapes.call_it")
    assert "repro.core.shapes.Base.handle" in callees
    assert "repro.core.shapes.Override.handle" in callees


def test_callgraph_binds_typed_receivers(tmp_path):
    _write(tmp_path, "src/repro/core/typed.py", (
        '"""doc."""\n'
        "from dataclasses import dataclass\n"
        "class Unit:\n"
        "    def go(self):\n"
        "        return 1\n"
        "@dataclass\n"
        "class Task:\n"
        "    unit: Unit\n"
        "def drive(task: Task):\n"
        "    return task.unit.go()\n"
    ))
    program = FlowProgram(tmp_path, discover_files(tmp_path))
    callees = program.graph.callees("repro.core.typed.drive")
    assert "repro.core.typed.Unit.go" in callees


def test_dump_callgraph_artifact(tmp_path):
    root = _taint_sandbox(tmp_path)
    out = tmp_path / "graph.json"
    run_lint(root=root, deep=True, dump_callgraph=out)
    doc = json.loads(out.read_text())
    assert doc["schema"] == "repro-callgraph/1"
    quals = {f["qual"] for f in doc["functions"]}
    assert "repro.analysis.app.record" in quals
    record = next(f for f in doc["functions"]
                  if f["qual"] == "repro.analysis.app.record")
    assert "repro.analysis.app.jitter" in record["calls"]


# ---------------------------------------------------------------------------
# baseline workflow
# ---------------------------------------------------------------------------

def test_baseline_grandfathers_and_goes_stale(tmp_path):
    root = _taint_sandbox(tmp_path)
    raw = run_lint(root=root, deep=True, use_baseline=False)
    hits = _flow_findings(raw, "determinism-taint")
    assert len(hits) == 1

    write_baseline(root / ".reprolint-baseline.json", hits)
    clean = run_lint(root=root, deep=True)
    assert _flow_findings(clean, "determinism-taint") == []
    assert clean.baselined == 1

    # fix the code: the entry goes stale and warns, never blocks
    _write(root, "src/repro/analysis/app.py", TAINT_APP_SRC.replace(
        "    return time.perf_counter()", "    return 0.0"))
    after = run_lint(root=root, deep=True)
    assert _flow_findings(after, "determinism-taint") == []
    stale = [f for f in after.findings if f.rule == "stale-baseline"]
    assert len(stale) == 1 and stale[0].severity == "warning"


# ---------------------------------------------------------------------------
# stale suppressions
# ---------------------------------------------------------------------------

def test_stale_suppression_warns(tmp_path):
    _write(tmp_path, "src/repro/mod.py", (
        '"""doc."""\n'
        "x = 1  # reprolint: disable=mutable-default\n"
    ))
    report = run_lint(root=tmp_path)
    stale = [f for f in report.findings if f.rule == "stale-suppression"]
    assert len(stale) == 1
    assert stale[0].line == 2 and stale[0].severity == "warning"
    assert "mutable-default" in stale[0].message


def test_used_suppression_does_not_warn(tmp_path):
    _write(tmp_path, "src/repro/mod.py", (
        '"""doc."""\n'
        "def f(x=[]):  # reprolint: disable=mutable-default\n"
        "    return x\n"
    ))
    report = run_lint(root=tmp_path)
    assert not [f for f in report.findings
                if f.rule == "stale-suppression"]


def test_docstring_disable_text_is_not_a_suppression(tmp_path):
    _write(tmp_path, "src/repro/mod.py", (
        '"""Example: # reprolint: disable=mutable-default ."""\n'
        "x = 1\n"
    ))
    report = run_lint(root=tmp_path)
    assert not [f for f in report.findings
                if f.rule == "stale-suppression"]


def test_stale_flowcheck_annotation_warns(tmp_path):
    _write(tmp_path, "src/repro/mod.py", (
        '"""doc."""\n'
        "# flowcheck: boundary(nothing here needs this)\n"
        "x = 1\n"
    ))
    report = run_lint(root=tmp_path, deep=True)
    stale = [f for f in report.findings if f.rule == "stale-suppression"]
    assert len(stale) == 1
    assert "boundary" in stale[0].message


# ---------------------------------------------------------------------------
# driver failure edges
# ---------------------------------------------------------------------------

def test_syntax_error_becomes_structured_finding(tmp_path):
    path = _write(tmp_path, "src/repro/broken.py",
                  '"""doc."""\ndef f(:\n    pass\n')
    kept, suppressed = lint_file(str(path), str(tmp_path), FILE_RULE_IDS)
    assert suppressed == 0
    assert [f.rule for f in kept] == ["syntax-error"]
    assert kept[0].severity == "error"
    assert kept[0].path == "src/repro/broken.py"


def test_syntax_error_survives_parallel_and_deep(tmp_path):
    _write(tmp_path, "src/repro/broken.py", '"""doc."""\ndef f(:\n')
    _write(tmp_path, "src/repro/fine.py", '"""doc."""\nx = 1\n')
    serial = run_lint(root=tmp_path, deep=True, jobs=1)
    parallel = run_lint(root=tmp_path, deep=True, jobs=2)
    assert serial.render() == parallel.render()
    assert any(f.rule == "syntax-error" for f in serial.findings)


def test_empty_file_is_handled(tmp_path):
    path = _write(tmp_path, "src/repro/empty.py", "")
    kept, suppressed = lint_file(str(path), str(tmp_path), FILE_RULE_IDS)
    assert suppressed == 0
    assert [f.rule for f in kept] == ["module-docstring"]


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_deep_lint_exits_zero(capsys):
    assert analysis_main(["lint", "--deep"]) == 0
    out = capsys.readouterr().out
    assert "reprolint: OK" in out
    assert "baselined" in out


def test_cli_sarif_export(tmp_path, capsys):
    out = tmp_path / "lint.sarif.json"
    assert analysis_main(["lint", "--deep", "--sarif", str(out)]) == 0
    capsys.readouterr()
    doc = json.loads(out.read_text())
    assert doc["version"] == "2.1.0"
    assert doc["runs"][0]["tool"]["driver"]["name"] == "reprolint"


def test_cli_dump_callgraph(tmp_path, capsys):
    out = tmp_path / "graph.json"
    assert analysis_main(
        ["lint", "--deep", "--dump-callgraph", str(out)]) == 0
    capsys.readouterr()
    doc = json.loads(out.read_text())
    assert doc["schema"] == "repro-callgraph/1"
    assert "repro.check.driver.run_lint" in {
        f["qual"] for f in doc["functions"]}


# ---------------------------------------------------------------------------
# ci.sh
# ---------------------------------------------------------------------------

def test_ci_script_is_executable_and_green():
    script = ROOT / "scripts" / "ci.sh"
    assert script.is_file()
    assert script.stat().st_mode & stat.S_IXUSR, "ci.sh lost its +x bit"
    text = script.read_text()
    assert "--deep" in text and "pytest" in text

    env = dict(os.environ, CI_SKIP_TESTS="1")
    env.pop("PYTHONPATH", None)          # the script must set it itself
    proc = subprocess.run(["bash", str(script)], env=env,
                          capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "ci: OK" in proc.stdout
