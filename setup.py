"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation`` on this offline machine falls
back to the legacy ``setup.py develop`` path, which needs this file.
All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
