"""§VII-C/D/E — energy/area overheads and the offset-calculation adder.

Paper: BPC <0.4% of channel power; metadata cache access <0.8% of a
DRAM read; offset adder <1.5K NAND gates, 38 -> 32 gate delays, one
visible cycle at DDR4-2666.
"""

from repro.analysis import run_sec7_energy_area

from conftest import run_once


def test_sec7_energy_area(benchmark, scale, show):
    result = run_once(benchmark, run_sec7_energy_area)
    show(result)
    values = {row["quantity"]: row["value"] for row in result.rows}
    assert values["bpc_vs_channel_power"] < 0.004 + 1e-9
    assert values["metadata_vs_dram_read"] < 0.008 + 1e-9
    assert values["adder_nand_gates"] < 1500
    assert values["adder_gate_delays_optimized"] <= 32
    assert values["adder_visible_cycles"] == 1
