"""Fig. 6 — data-movement reduction as optimizations are applied.

Paper ladder (averages): 63% -> 36% (alignment) -> 26% (prediction)
-> 19% (IR expansion) -> 15% (metadata cache).
"""

from repro.analysis import run_fig6

from conftest import run_once


def test_fig6_optimization_ladder(benchmark, scale, show):
    result = run_once(benchmark, run_fig6, scale)
    show(result)
    means = [value for key, value in result.summary.items()]
    baseline, final = means[0], means[-1]
    # The full optimization stack must cut extra accesses materially,
    # with alignment the single biggest step (as in the paper).
    assert final < baseline * 0.8
    assert means[1] < baseline
