"""Fig. 9 — SimPoint vs CompressPoint representativeness.

Paper: BBV-only SimPoints badly misrepresent the compressibility of
phase-heavy benchmarks (GemsFDTD swings ~1-13x); CompressPoints track it.
"""

from repro.analysis import run_fig9

from conftest import run_once


def test_fig9_compresspoints(benchmark, scale, show):
    result = run_once(benchmark, run_fig9, scale)
    show(result)
    # Where SimPoint misrepresents compressibility materially (the
    # phase-heavy benchmarks, e.g. GemsFDTD), CompressPoint must do
    # better; where both errors are tiny the ordering is noise.
    sim_total = sum(row["simpoint_err"] for row in result.rows)
    comp_total = sum(row["compresspoint_err"] for row in result.rows)
    assert comp_total <= sim_total + 0.02
    for row in result.rows:
        if row["simpoint_err"] > 0.05:
            assert row["compresspoint_err"] < row["simpoint_err"]
