"""Fig. 7 — compression squandered without dynamic repacking.

Paper: 24% of storage benefits squandered without repacking; dynamic
repacking recovers it down to 2.6% for only 1.8% extra accesses.
"""

from repro.analysis import run_fig7

from conftest import run_once


def test_fig7_repacking(benchmark, scale, show):
    result = run_once(benchmark, run_fig7, scale)
    show(result)
    mean_relative = result.summary[
        "mean relative ratio (no repack / repack)"]
    # Without repacking the retained compression must be strictly worse.
    assert mean_relative < 0.995
