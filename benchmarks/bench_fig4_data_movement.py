"""Fig. 4 — extra data movement of an unoptimized compressed system.

Paper: 63% additional accesses on average (max 180%), split between
split-access lines, overflow handling, and metadata-cache misses.
"""

from repro.analysis import run_fig4

from conftest import run_once


def test_fig4_data_movement(benchmark, scale, show):
    result = run_once(benchmark, run_fig4, scale)
    show(result)
    fixed = result.summary["fixed mean extra"]
    # The problem the paper demonstrates must be material: tens of
    # percent of extra traffic before any optimization.
    assert fixed > 0.25
    assert result.summary["max extra"] > 0.8
