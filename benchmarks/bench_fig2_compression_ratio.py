"""Fig. 2 — compression ratio of {BPC, BDI} x {LinePack, LCP}.

Paper: BPC+LinePack averages 1.85x; LCP packing loses ~13% with BPC
but only ~2.3% with BDI.
"""

from repro.analysis import run_fig2

from conftest import run_once


def test_fig2_compression_ratio(benchmark, scale, show):
    result = run_once(benchmark, run_fig2, scale)
    show(result)
    ratios = result.summary
    # Shape assertions: BPC+LinePack is the best combination and LCP
    # costs BPC more than it costs BDI (relatively).
    assert ratios["bpc+linepack mean"] >= ratios["bpc+lcp mean"]
    assert ratios["bpc+linepack mean"] > ratios["bdi+linepack mean"]
    assert 1.4 < ratios["bpc+linepack mean"] < 3.0
