"""Fig. 10 — single-core performance (cycle-based, capacity, overall).

Paper: cycle geomeans LCP 0.938 / LCP+Align 0.961 / Compresso 0.998;
capacity means at 70% LCP 1.11 / Compresso 1.29 / unconstrained 1.39;
overall LCP 1.03 / LCP+Align 1.06 / Compresso 1.28 (Compresso +24%).
"""

from repro.analysis import run_fig10

from conftest import run_once


def test_fig10_single_core(benchmark, scale, show):
    result = run_once(benchmark, run_fig10, scale)
    show(result)
    s = result.summary
    # Compresso's cycle-based performance stays near the uncompressed
    # system while plain LCP pays a visible penalty.
    assert s["compresso cycle geomean"] > s["lcp cycle geomean"]
    # Capacity: compression beats the constrained baseline, bounded by
    # the unconstrained system.
    assert s["compresso capacity mean"] >= s["lcp capacity mean"] - 0.02
    assert (s["compresso capacity mean"]
            <= s["unconstrained capacity mean"] + 0.02)
    # Overall: Compresso delivers the biggest end-to-end win.
    assert s["compresso overall geomean"] > s["lcp overall geomean"]
