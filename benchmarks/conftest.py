"""Shared configuration for the paper-reproduction benchmark harness.

Each ``bench_*`` file regenerates one table or figure of the paper via
:mod:`repro.analysis.experiments` and prints the paper-shaped rows
(visible with ``pytest benchmarks/ --benchmark-only -s`` or in the
captured output).

Problem size is selected with the ``REPRO_BENCH_SCALE`` environment
variable: ``quick`` (seconds per experiment, 4 benchmarks), ``default``
(the full 30-benchmark suite at reduced trace length — the shipped
EXPERIMENTS.md numbers), or ``full`` (sharper statistics, slow).
"""

import os

import pytest

from repro.analysis import DEFAULT, FULL, QUICK, render

_SCALES = {"quick": QUICK, "default": DEFAULT, "full": FULL}


@pytest.fixture(scope="session")
def scale():
    name = os.environ.get("REPRO_BENCH_SCALE", "default").lower()
    if name not in _SCALES:
        raise ValueError(
            f"REPRO_BENCH_SCALE must be one of {sorted(_SCALES)}, got {name!r}"
        )
    return _SCALES[name]


@pytest.fixture(scope="session")
def show():
    """Print a rendered experiment result (survives pytest capture)."""

    def _show(result):
        text = render(result)
        print()
        print(text)
        return text

    return _show


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    These are minutes-long end-to-end experiments; statistical rounds
    would add nothing but wall-clock.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
