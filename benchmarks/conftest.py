"""Shared configuration for the paper-reproduction benchmark harness.

Each ``bench_*`` file regenerates one table or figure of the paper via
:mod:`repro.analysis.experiments` and prints the paper-shaped rows
(visible with ``pytest benchmarks/ --benchmark-only -s`` or in the
captured output).

Problem size is selected with the ``REPRO_BENCH_SCALE`` environment
variable: ``quick`` (seconds per experiment, 4 benchmarks), ``default``
(the full 30-benchmark suite at reduced trace length — the shipped
EXPERIMENTS.md numbers), or ``full`` (sharper statistics, slow).

Execution goes through :class:`repro.runner.Runner` (docs/RUNNER.md),
configured via environment variables:

* ``REPRO_BENCH_JOBS`` — worker processes per experiment (default 1,
  the deterministic serial path).
* ``REPRO_BENCH_CACHE`` — set to ``1`` to reuse/populate the
  ``.repro_cache/`` content-addressed result cache.
* ``REPRO_BENCH_CACHE_DIR`` — cache directory (default
  ``.repro_cache``).
* ``REPRO_BENCH_JOURNAL`` — path of a ``runs.jsonl`` journal to append
  per-unit events to (default: journaling off).
"""

import os

import pytest

from repro.analysis import DEFAULT, FULL, QUICK, render
from repro.runner import ResultCache, RunJournal, Runner

_SCALES = {"quick": QUICK, "default": DEFAULT, "full": FULL}

_TRUTHY = ("1", "true", "yes", "on")


def _env_runner() -> Runner:
    """Build the shared Runner from REPRO_BENCH_* environment knobs."""
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    cache = None
    if os.environ.get("REPRO_BENCH_CACHE", "").lower() in _TRUTHY:
        cache = ResultCache(
            os.environ.get("REPRO_BENCH_CACHE_DIR", ".repro_cache"))
    journal_path = os.environ.get("REPRO_BENCH_JOURNAL", "")
    journal = RunJournal(journal_path) if journal_path else None
    return Runner(jobs=jobs, cache=cache, journal=journal)


_RUNNER = None


def _shared_runner() -> Runner:
    global _RUNNER
    if _RUNNER is None:
        _RUNNER = _env_runner()
    return _RUNNER


@pytest.fixture(scope="session")
def scale():
    name = os.environ.get("REPRO_BENCH_SCALE", "default").lower()
    if name not in _SCALES:
        raise ValueError(
            f"REPRO_BENCH_SCALE must be one of {sorted(_SCALES)}, got {name!r}"
        )
    return _SCALES[name]


@pytest.fixture(scope="session")
def runner():
    """The env-configured work-unit runner shared by the whole session."""
    return _shared_runner()


@pytest.fixture(scope="session")
def show():
    """Print a rendered experiment result (survives pytest capture)."""

    def _show(result):
        text = render(result)
        print()
        print(text)
        return text

    return _show


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    These are minutes-long end-to-end experiments; statistical rounds
    would add nothing but wall-clock.  Work is submitted through the
    env-configured :class:`repro.runner.Runner`, so ``REPRO_BENCH_JOBS``
    / ``REPRO_BENCH_CACHE`` parallelize and memoize the harness without
    touching the bench files.
    """
    kwargs.setdefault("runner", _shared_runner())
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
