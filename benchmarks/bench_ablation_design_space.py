"""Design-space ablations the paper calls out in its §IV-A trade-offs.

Paper: 8 line bins compress better than 4 (1.82 vs 1.59) but take
17.5% more line overflows; alignment-friendly bins cut split accesses
30.9% -> 3.2% for only 0.25% compression.
"""

from repro.analysis import run_ablation_design_space

from conftest import run_once


def test_ablation_design_space(benchmark, scale, show):
    result = run_once(benchmark, run_ablation_design_space, scale)
    show(result)
    rows = {row["config"]: row for row in result.rows}
    aligned = rows["4-bins-aligned (0/8/32/64)"]
    prior = rows["4-bins-prior (0/22/44/64)"]
    eight = rows["8-bins (0/8/16/24/32/40/52/64)"]
    # More bins -> better compression; aligned bins -> far fewer splits.
    assert eight["ratio"] >= aligned["ratio"] - 0.02
    assert aligned["split_fraction"] < prior["split_fraction"]
