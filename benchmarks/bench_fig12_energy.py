"""Fig. 12 — DRAM and core energy relative to the uncompressed system.

Paper: Compresso reduces DRAM energy by 11% on average (60% more
savings than LCP, 19% over LCP+Align) with equal core energy.
"""

from repro.analysis import run_fig12

from conftest import run_once


def test_fig12_energy(benchmark, scale, show):
    result = run_once(benchmark, run_fig12, scale)
    show(result)
    s = result.summary
    # Compresso's DRAM energy beats both LCP variants on average.
    assert s["compresso:dram mean"] < s["lcp:dram mean"]
    # Core energy tracks runtime: close to the uncompressed system.
    assert 0.8 < s["compresso:core mean"] < 1.3
