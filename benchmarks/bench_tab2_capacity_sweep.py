"""Tab. II — capacity-impact speedups at 80/70/60% memory budgets.

Paper (1-core, relative to the uncompressed constrained system):
80%: LCP 1.04 / Compresso 1.15 / unconstrained 1.24
70%: LCP 1.11 / Compresso 1.29 / unconstrained 1.39
60%: LCP 1.28 / Compresso 1.56 / unconstrained 1.72
"""

from repro.analysis import run_tab2

from conftest import run_once


def test_tab2_capacity_sweep(benchmark, scale, show):
    result = run_once(benchmark, run_tab2, scale)
    show(result)
    rows = {row["budget"]: row for row in result.rows}
    # Tighter budgets help compression more (monotone in the fraction).
    assert rows["60%"]["compresso"] >= rows["70%"]["compresso"] - 0.05
    assert rows["70%"]["compresso"] >= rows["80%"]["compresso"] - 0.05
    for row in result.rows:
        assert row["compresso"] >= row["lcp"] - 0.03
        assert row["compresso"] <= row["unconstrained"] + 0.02
