"""Kernel micro-benchmarks — scalar compressors vs. numpy batch kernels.

Times ``repro.compression.vector`` against the scalar reference on the
mixed-class corpus from ``repro.analysis.bench`` and prints the same
report table the ``python -m repro.analysis bench`` CLI emits
(docs/KERNELS.md).  Unlike the figure benchmarks these are seconds-long
micro runs, so pytest-benchmark's statistical rounds are left on.
"""

import pytest

from repro.analysis.bench import (
    bench_algorithm,
    make_corpus,
    render_table,
    run_bench,
)
from repro.compression.vector import vectorized_algorithms
from repro.compression.vector.batch import BatchCompressor

_CORPUS = make_corpus(1000, seed=0)


@pytest.mark.parametrize("algorithm", vectorized_algorithms())
def test_kernel_vector_compress(benchmark, algorithm):
    batch = BatchCompressor(algorithm)
    out = benchmark(batch.batch_compress, _CORPUS)
    assert len(out) == len(_CORPUS)


@pytest.mark.parametrize("algorithm", vectorized_algorithms())
def test_kernel_scalar_compress(benchmark, algorithm):
    batch = BatchCompressor(algorithm)
    scalar = batch._scalar
    out = benchmark(lambda: [scalar.compress(line) for line in _CORPUS])
    assert len(out) == len(_CORPUS)


@pytest.mark.parametrize("algorithm", vectorized_algorithms())
def test_kernel_sizes_only(benchmark, algorithm):
    batch = BatchCompressor(algorithm)
    sizes = benchmark(batch.batch_size_bits, _CORPUS)
    assert len(sizes) == len(_CORPUS)


def test_kernel_report(show):
    """One consolidated speedup table (also checks byte equality)."""
    doc = run_bench(n_lines=1000, repeat=1)
    print()
    print(render_table(doc))
    assert all(entry["match"] for entry in doc["algorithms"].values())


def test_kernel_equivalence_on_corpus():
    """The bench corpus itself round-trips byte-identically."""
    for algorithm in vectorized_algorithms():
        entry = bench_algorithm(algorithm, _CORPUS[:200], repeat=1)
        assert entry["match"], algorithm
