"""Fig. 11 — 4-core performance over the Tab. IV mixes.

Paper: cycle geomeans LCP 0.90 / LCP+Align 0.95 / Compresso 0.975;
capacity LCP 1.97 / Compresso 2.33 (unconstrained 2.51); overall
LCP 1.78 / LCP+Align 1.90 / Compresso 2.27 (Compresso +27.5%).
"""

from repro.analysis import run_fig11

from conftest import run_once


def test_fig11_multi_core(benchmark, scale, show):
    result = run_once(benchmark, run_fig11, scale)
    show(result)
    s = result.summary
    assert s["compresso cycle geomean"] > s["lcp cycle geomean"]
    assert s["compresso overall geomean"] > s["lcp overall geomean"]
    assert (s["compresso capacity mean"]
            <= s["unconstrained capacity mean"] + 0.02)
