#!/usr/bin/env python
"""Design-space exploration: the §IV-A trade-offs, interactively.

An architect's tour of the knobs the paper studies: line-size bins
(count and placement), packing scheme, and each data-movement
optimization — measured on one workload so the trade-offs are visible
in minutes.

Run:  python examples/design_space_explorer.py [benchmark]
"""

import sys

from repro.core.config import (
    ALIGNMENT_FRIENDLY_LINE_BINS,
    EIGHT_LINE_BINS,
    PRIOR_WORK_LINE_BINS,
    compresso_config,
    lcp_config,
)
from repro.simulation import SimulationConfig, simulate
from repro.workloads import get_profile

SIM = SimulationConfig(n_events=3000, scale=0.03, seed=5)


def run(profile, label, config):
    result = simulate(profile, label, SIM, config=config)
    stats = result.controller_stats
    breakdown = stats.breakdown()
    return {
        "design": label,
        "ratio": result.final_ratio,
        "extra": stats.relative_extra_accesses(),
        "split": breakdown["split"],
        "overflow": breakdown["overflow"],
        "line_ovf": stats.line_overflows,
    }


def show(rows):
    print(f"{'design':28s} {'ratio':>6s} {'extra':>7s} {'split':>7s} "
          f"{'ovflow':>7s} {'lovf':>6s}")
    for row in rows:
        print(f"{row['design']:28s} {row['ratio']:6.2f} {row['extra']:6.1%} "
              f"{row['split']:6.1%} {row['overflow']:6.1%} "
              f"{row['line_ovf']:6d}")
    print()


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    profile = get_profile(name)
    print(f"design space on '{name}' "
          f"({SIM.n_events} events, footprint scale {SIM.scale})\n")

    print("--- line-size bins (count and placement, §IV-A1/B1) ---")
    base = compresso_config(enable_overflow_prediction=False,
                            enable_ir_expansion=False,
                            enable_metadata_half_entries=False,
                            enable_repacking=False)
    show([
        run(profile, "4 bins, prior (0/22/44/64)",
            base.replace(line_bins=PRIOR_WORK_LINE_BINS)),
        run(profile, "4 bins, aligned (0/8/32/64)",
            base.replace(line_bins=ALIGNMENT_FRIENDLY_LINE_BINS)),
        run(profile, "8 bins",
            base.replace(line_bins=EIGHT_LINE_BINS)),
    ])

    print("--- packing scheme (§II-C) ---")
    show([
        run(profile, "linepack", base),
        run(profile, "lcp (class targets)", lcp_config()),
    ])

    print("--- data-movement optimizations (§IV-B), cumulative ---")
    config = base
    rows = [run(profile, "none", config)]
    for label, overrides in [
        ("+prediction", dict(enable_overflow_prediction=True)),
        ("+ir-expansion", dict(enable_ir_expansion=True)),
        ("+repacking", dict(enable_repacking=True)),
        ("+metadata half-entries", dict(enable_metadata_half_entries=True)),
    ]:
        config = config.replace(**overrides)
        rows.append(run(profile, label, config))
    show(rows)
    print("the last row is the full Compresso design point")


if __name__ == "__main__":
    main()
