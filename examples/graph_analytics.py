#!/usr/bin/env python
"""Graph analytics on a compressed-memory server (the paper's §I pitch).

Graph workloads (Pagerank, Graph500, Forestfire) are exactly the
memory-hungry, pointer-heavy applications the paper motivates Compresso
with — and also the ones that stress its metadata cache hardest (Fig. 6,
Mix10).  This example runs the three graph workloads end to end:
cycle-level performance, effective capacity under a constrained budget,
and the overall picture, for the uncompressed baseline, the LCP
baseline, and Compresso.

Run:  python examples/graph_analytics.py
"""

from repro.simulation import (
    CapacityConfig,
    SimulationConfig,
    capacity_impact,
    simulate,
)
from repro.workloads import get_profile

GRAPH_WORKLOADS = ("Forestfire", "Pagerank", "Graph500")
SYSTEMS = ("lcp", "compresso")
SIM = SimulationConfig(n_events=4000, scale=0.03, seed=2)


def main() -> None:
    print("graph-analytics server: 70% of the working footprint in DRAM\n")
    header = (f"{'workload':12s} {'system':10s} {'cycle-perf':>10s} "
              f"{'md-hit':>7s} {'ratio':>6s} {'capacity':>9s} "
              f"{'overall':>8s}")
    print(header)
    print("-" * len(header))
    for name in GRAPH_WORKLOADS:
        profile = get_profile(name)
        runs = {
            system: simulate(profile, system, SIM)
            for system in ("uncompressed",) + SYSTEMS
        }
        capacity = capacity_impact(
            profile,
            {system: runs[system].ratio_timeline for system in SYSTEMS},
            CapacityConfig(memory_fraction=0.7, n_touches=15000,
                           footprint_pages=300),
        )
        baseline = runs["uncompressed"]
        for system in SYSTEMS:
            run = runs[system]
            cycle = run.speedup_over(baseline)
            cap = capacity.relative(system)
            print(f"{name:12s} {system:10s} {cycle:9.2f}x "
                  f"{run.metadata_hit_rate:6.1%} {run.final_ratio:5.2f}x "
                  f"{cap:8.2f}x {cycle * cap:7.2f}x")
        print(f"{'':12s} {'(unconstrained bound: '}"
              f"{capacity.relative('unconstrained'):.2f}x capacity)")
    print()
    print("reading the table: graph data compresses well (index arrays, "
          "sparse rows), so the capacity")
    print("column carries the win even where metadata misses dent the "
          "cycle-level column — the")
    print("trade the paper's Mix10 discussion walks through.")


if __name__ == "__main__":
    main()
