#!/usr/bin/env python
"""Capacity planning: how much effective memory does compression buy?

The paper's motivation (§I): machine learning, graph analytics and
database servers are memory-capacity bound; hardware compression grows
effective capacity without buying DRAM.  This example plays a capacity
planner: given a server's workload mix, it estimates the effective
capacity Compresso provides, how close a constrained machine gets to an
unconstrained one, and what happens when memory runs out (the §V-B
ballooning path).

Run:  python examples/capacity_planning.py
"""

from repro.core import (
    BalloonDriver,
    CompressedMemoryController,
    compresso_config,
)
from repro.memory import MemoryGeometry
from repro.osmodel import DynamicBudget, StaticBudget, VirtualMemory
from repro.osmodel.paging import PagingCostModel, run_capacity_simulation
from repro.workloads import Workload, get_profile


def estimate_effective_capacity(server_mix) -> dict:
    print("=== effective capacity per workload ===")
    print(f"{'workload':12s} {'ratio':>7s} {'8GB feels like':>15s}")
    ratios = {}
    for name in server_mix:
        profile = get_profile(name)
        workload = Workload(profile, scale=0.02, seed=7)
        geometry = MemoryGeometry(installed_bytes=16 << 20,
                                  advertised_ratio=3.0)
        controller = CompressedMemoryController(compresso_config(), geometry)
        for page in range(min(workload.pages, 60)):
            controller.install_page(page, workload.page_lines(page))
        ratios[name] = controller.compression_ratio()
        print(f"{name:12s} {ratios[name]:6.2f}x {ratios[name] * 8:11.1f} GB")
    print()
    return ratios


def constrained_performance(server_mix, ratios,
                            budget_fraction: float) -> None:
    print(f"=== running in {budget_fraction:.0%} of the footprint ===")
    print(f"{'workload':12s} {'no compression':>15s} {'compresso':>10s} "
          f"{'unconstrained':>14s}")
    for name in server_mix:
        profile = get_profile(name)
        footprint = 300
        budget = int(footprint * budget_fraction)
        ratio = ratios[name]  # measured on this workload's data above
        _, t_plain = run_capacity_simulation(
            profile, StaticBudget(budget), n_touches=20000,
            footprint_pages=footprint)
        _, t_comp = run_capacity_simulation(
            profile, DynamicBudget(budget, [ratio]), n_touches=20000,
            footprint_pages=footprint)
        _, t_full = run_capacity_simulation(
            profile, StaticBudget(footprint), n_touches=20000,
            footprint_pages=footprint)
        print(f"{name:12s} {'1.00x (base)':>15s} "
              f"{t_plain / t_comp:9.2f}x {t_plain / t_full:13.2f}x")
    print()


def out_of_memory_drill() -> None:
    print("=== out-of-memory drill (ballooning, §V-B) ===")
    geometry = MemoryGeometry(installed_bytes=2 << 20, advertised_ratio=4.0)
    controller = CompressedMemoryController(compresso_config(), geometry)
    vm = VirtualMemory(total_pages=geometry.ospa_pages)
    BalloonDriver(controller, vm, safety_chunks=32)

    workload = Workload(get_profile("mcf"), scale=0.1, seed=3)
    # The application allocates its full working set up front, then
    # streams poorly-compressing data in.  When machine memory runs
    # out, the balloon reclaims the coldest guest pages instead of
    # crashing or requiring a compression-aware kernel.
    pages = [vm.allocate_page() for _ in range(900)]
    written = 0
    for index, ospa in enumerate(pages):
        if not vm.is_allocated(ospa):
            continue  # the balloon took this one back already
        for line in range(64):
            controller.write_line(ospa, line,
                                  workload.line_data(index, line))
        if vm.is_allocated(ospa):
            vm.touch(ospa, dirty=True)
        written += 1
    print(f"wrote {written} pages into "
          f"{geometry.installed_bytes >> 20} MB of machine memory")
    print(f"balloon inflations: {controller.stats.balloon_inflations}, "
          f"pages reclaimed from the guest: "
          f"{controller.stats.balloon_pages_reclaimed}")
    print("the OS never saw a compression-specific event — just its own "
          "balloon driver asking for pages")


if __name__ == "__main__":
    server_mix = ["Pagerank", "Graph500", "xalancbmk", "mcf"]
    ratios = estimate_effective_capacity(server_mix)
    constrained_performance(server_mix, ratios, budget_fraction=0.7)
    out_of_memory_drill()
