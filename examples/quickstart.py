#!/usr/bin/env python
"""Quickstart: compress cache lines, then run a Compresso memory system.

Walks through the library bottom-up:

1. compress individual 64-byte cache lines with the paper's algorithms;
2. stand up a Compresso memory controller (OSPA -> MPA translation,
   LinePack packing, inflation room, predictor, repacking);
3. write/read data through it and inspect compression + data movement.

Run:  python examples/quickstart.py
"""

import struct

from repro.compression import (
    BDICompressor,
    BPCCompressor,
    FPCCompressor,
    LZCompressor,
)
from repro.core import CompressedMemoryController, compresso_config
from repro.memory import MemoryGeometry


def demo_compression() -> None:
    print("=== 1. cache-line compression ===")
    samples = {
        "zeros": bytes(64),
        "counter array": struct.pack("<16I", *range(1000, 1016)),
        "pointers": struct.pack("<8Q", *[0x7F00DEAD0000 + i * 64
                                         for i in range(8)]),
        "ascii text": (b"the quick brown fox jumps over the lazy dog"
                       + b" " * 64)[:64],
        "random": bytes((i * 197 + 89) % 256 for i in range(64)),
    }
    algorithms = [BPCCompressor(), BDICompressor(), FPCCompressor(),
                  LZCompressor()]
    header = f"{'data':16s}" + "".join(f"{a.name:>8s}" for a in algorithms)
    print(header)
    for label, line in samples.items():
        row = f"{label:16s}"
        for algorithm in algorithms:
            compressed = algorithm.compress(line)
            assert algorithm.decompress(compressed) == line
            row += f"{compressed.size_bytes:7d}B"
        print(row)
    print("(all algorithms verified by decompressing back to the input)\n")


def demo_controller() -> None:
    print("=== 2. Compresso memory controller ===")
    geometry = MemoryGeometry(installed_bytes=64 << 20, advertised_ratio=2.0)
    controller = CompressedMemoryController(compresso_config(), geometry)
    print(f"installed: {geometry.installed_bytes >> 20} MB, advertised to "
          f"the OS: {geometry.advertised_bytes >> 20} MB "
          f"(metadata overhead {geometry.metadata_overhead:.1%})")

    # An application writes a mix of data.
    for page in range(16):
        for line in range(64):
            if page < 10:   # compressible: small integers
                data = struct.pack("<16I", *[(page * 64 + line + i) & 0xFFFF
                                             for i in range(16)])
            elif page < 13:  # zeros (untouched-style)
                data = bytes(64)
            else:            # incompressible
                data = bytes((line * 255 + i * 37 + page) % 256
                             for i in range(64))
            controller.write_line(page, line, data)

    # Read back and verify.
    check = controller.read_line(3, 5)
    expected = struct.pack("<16I", *[(3 * 64 + 5 + i) & 0xFFFF
                                     for i in range(16)])
    assert check.data == expected
    print(f"compression ratio: {controller.compression_ratio():.2f}x")
    print(f"machine memory used: {controller.used_bytes() >> 10} KB for "
          f"{16 * 4} KB of OS data")

    stats = controller.stats
    print(f"demand accesses: {stats.demand_accesses}, "
          f"zero-line shortcuts: {stats.saved_accesses}, "
          f"extra (movement) accesses: {stats.extra_accesses} "
          f"({stats.relative_extra_accesses():.1%})")
    print(f"line overflows: {stats.line_overflows}, "
          f"IR expansions: {stats.ir_expansions}, "
          f"metadata hit rate: {stats.metadata_hit_rate():.1%}")


if __name__ == "__main__":
    demo_compression()
    demo_controller()
