"""Shared cache-line packing machinery (paper §II-C).

A *packing scheme* decides where each variable-sized compressed line
lives inside its page allocation, which determines three costs the
paper trades off: compression ratio, offset-calculation complexity, and
split accesses (compressed lines straddling 64-byte DRAM boundaries).
Concrete schemes are :mod:`.linepack` and :mod:`.lcp`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Sequence, Tuple


def choose_bin(size_bytes: int, bins: Sequence[int]) -> int:
    """Index of the smallest bin that holds ``size_bytes`` (bins sorted).

    Sizes beyond the largest bin clamp to it — the line is then stored
    uncompressed (the largest bin is always the raw line size).
    """
    for index, capacity in enumerate(bins):
        if size_bytes <= capacity:
            return index
    return len(bins) - 1


def blocks_spanned(offset: int, size: int, block: int = 64) -> int:
    """Number of ``block``-byte DRAM blocks a [offset, offset+size) access touches."""
    if size <= 0:
        return 0
    return (offset + size - 1) // block - offset // block + 1


@dataclass(frozen=True)
class LineLocation:
    """Where one line's data lives inside the page allocation."""

    offset: int          # byte offset from the start of the page allocation
    size: int            # allocated slot size in bytes
    inflated: bool       # stored raw in the inflation/exception room?

    def accesses(self, block: int = 64) -> int:
        """DRAM accesses needed to fetch this line (2 if split, §IV-A2)."""
        return blocks_spanned(self.offset, self.size, block)


@dataclass(frozen=True)
class PageLayout:
    """Full layout of a compressed page."""

    slot_offsets: Tuple[int, ...]   # per line, offset of its regular slot
    slot_sizes: Tuple[int, ...]     # per line, size of its regular slot
    data_bytes: int                 # bytes used by the regular slots
    inflated_lines: Tuple[int, ...] # lines living in the inflation room

    @property
    def inflation_bytes(self) -> int:
        return 64 * len(self.inflated_lines)

    @property
    def inflation_base(self) -> int:
        """Start of the inflation room: just above the compressed slots,
        aligned to 64 B so inflated lines never split (§III, Fig. 5a).

        Anchoring the room to the *bottom* of the free space (rather
        than the end of the allocation) keeps existing inflated slots
        stable when Dynamic IR Expansion grows the allocation by a
        chunk (§IV-B3) — the expansion costs one cache-line write, not
        a shuffle of the room.
        """
        return (self.data_bytes + 63) // 64 * 64

    @property
    def total_bytes(self) -> int:
        """Minimum allocation that holds slots + inflation room."""
        if not self.inflated_lines:
            return self.data_bytes
        return self.inflation_base + self.inflation_bytes

    def locate(self, line: int) -> LineLocation:
        """Physical location of ``line`` within the page allocation."""
        if line in self.inflated_lines:
            slot = self.inflated_lines.index(line)
            offset = self.inflation_base + 64 * slot
            return LineLocation(offset=offset, size=64, inflated=True)
        return LineLocation(
            offset=self.slot_offsets[line],
            size=self.slot_sizes[line],
            inflated=False,
        )


class PackingScheme(abc.ABC):
    """Strategy object: LinePack or LCP."""

    name: str = "abstract"

    def __init__(self, line_bins: Sequence[int], line_size: int = 64,
                 max_exceptions: int = 17) -> None:
        if line_bins[-1] != line_size:
            raise ValueError("largest bin must equal the raw line size")
        self.line_bins = tuple(line_bins)
        self.line_size = line_size
        self.max_exceptions = max_exceptions

    def bin_index(self, size_bytes: int) -> int:
        return choose_bin(size_bytes, self.line_bins)

    def bin_bytes(self, bin_index: int) -> int:
        return self.line_bins[bin_index]

    @abc.abstractmethod
    def pack(self, line_sizes: Sequence[int]) -> PageLayout:
        """Lay out a page from fresh per-line compressed sizes (bytes).

        Used on initial allocation and on every repack.
        """

    def pack_candidates(self, line_sizes: Sequence[int]) -> List["PageLayout"]:
        """All reasonable layouts for fresh sizes.

        LinePack has exactly one; LCP has one per feasible target size,
        and the *allocation-aware* caller picks the one that minimizes
        the allocated size class (leaving exception headroom within the
        class rather than sitting exactly on its boundary).
        """
        return [self.pack(line_sizes)]

    @abc.abstractmethod
    def layout_from_bins(self, slot_bins: Sequence[int],
                         inflated_lines: Sequence[int]) -> PageLayout:
        """Reconstruct the layout from metadata (slot bins + inflation list)."""

    @property
    @abc.abstractmethod
    def offset_calc_cycles(self) -> int:
        """Extra cycles to compute a line offset (LinePack's adder, §VII-E)."""
