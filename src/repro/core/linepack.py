"""LinePack: per-line size bins packed back to back (paper §II-C).

Each line compresses to one of (typically four) allowed sizes and is
stored immediately after its predecessor.  The offset of line *i* is
the sum of the encoded sizes of lines 0..i-1 — computed by a 63-input
4-bit adder in one extra cycle (§VII-E).  LinePack keeps the highest
compression ratio (Fig. 2) at the cost of that adder and of split
accesses when bins are not alignment friendly (§IV-B1).
"""

from __future__ import annotations

from typing import Sequence

from .packing import PackingScheme, PageLayout


class LinePack(PackingScheme):
    """Compresso's packing scheme."""

    name = "linepack"

    def pack(self, line_sizes: Sequence[int]) -> PageLayout:
        """Pack fresh sizes: every line gets its own best-fit bin."""
        slot_bins = [self.bin_index(size) for size in line_sizes]
        return self.layout_from_bins(slot_bins, inflated_lines=())

    def layout_from_bins(self, slot_bins: Sequence[int],
                         inflated_lines: Sequence[int]) -> PageLayout:
        offsets = []
        cursor = 0
        sizes = []
        for bin_index in slot_bins:
            size = self.bin_bytes(bin_index)
            offsets.append(cursor)
            sizes.append(size)
            cursor += size
        return PageLayout(
            slot_offsets=tuple(offsets),
            slot_sizes=tuple(sizes),
            data_bytes=cursor,
            inflated_lines=tuple(inflated_lines),
        )

    @property
    def offset_calc_cycles(self) -> int:
        # The 63-input adder partially overlaps the metadata cache
        # lookup, leaving one visible cycle (§VII-E).
        return 1


def split_access_fraction(line_sizes: Sequence[int], bins: Sequence[int],
                          lines_per_page: int = 64) -> float:
    """Fraction of lines whose LinePack slot straddles a 64 B boundary.

    ``line_sizes`` is consumed in consecutive ``lines_per_page`` groups,
    each packed as its own page (offsets restart at every page).  This
    is the metric behind the §IV-B1 numbers (30.9% with 0/22/44/64 bins
    vs. 3.2% with 0/8/32/64).
    """
    pack = LinePack(bins)
    stored = split = 0
    for start in range(0, len(line_sizes), lines_per_page):
        page = list(line_sizes[start : start + lines_per_page])
        layout = pack.pack(page)
        for line, size in enumerate(layout.slot_sizes):
            if size == 0:
                continue
            stored += 1
            if layout.locate(line).accesses() > 1:
                split += 1
    return split / stored if stored else 0.0
