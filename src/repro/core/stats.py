"""Event and data-movement counters for compressed-memory systems.

The paper's central measurement (Figs. 4 and 6) is *additional memory
accesses relative to an uncompressed baseline*, broken into three
sources: split-access cache lines, compressibility changes (line/page
overflows, inflation-room traffic, repacking) and metadata-cache misses
(§IV).  These counters mirror that taxonomy exactly.

The counters are the canonical storage (plain integer fields, so the
hot-path ``+=`` sites stay native speed), and the class is rebased onto
the observability layer two ways without changing its public API:

* every counter site in the controller has a matching
  :mod:`repro.obs.tracer` event emit (linted by
  ``scripts/check_instrumentation.py``), so the aggregate counters and
  the event timeline reconcile exactly;
* :meth:`ControllerStats.bind_registry` publishes every counter and
  derived aggregate into a :class:`repro.obs.metrics.MetricRegistry`
  as lazily-read pull metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Optional

from ..obs.metrics import MetricRegistry


@dataclass
class ControllerStats:
    """Counters accumulated by a memory controller model."""

    # Demand traffic (what an uncompressed system would also do).
    demand_reads: int = 0
    demand_writes: int = 0
    # Demand accesses eliminated by compression.
    zero_line_reads: int = 0           # served from metadata alone
    zero_line_writes: int = 0
    prefetch_hits: int = 0             # adjacent line arrived in same burst

    # Extra accesses: split-access cache lines (§IV source i).
    split_accesses: int = 0

    # Extra accesses: compressibility change (§IV source ii).
    line_overflows: int = 0            # events
    line_underflows: int = 0           # events
    overflow_accesses: int = 0         # accesses to handle line overflows
    page_overflows: int = 0            # events
    page_overflow_accesses: int = 0    # accesses to move pages
    ir_expansions: int = 0             # Dynamic IR Expansion events (§IV-B3)
    repack_events: int = 0
    repack_accesses: int = 0
    speculation_wasted_accesses: int = 0  # LCP speculative read of an exception

    # Extra accesses: metadata (§IV source iii).
    metadata_hits: int = 0
    metadata_misses: int = 0
    metadata_miss_accesses: int = 0
    metadata_writebacks: int = 0

    # Predictor bookkeeping (§IV-B2).
    predictor_inflations: int = 0      # pages speculatively stored uncompressed
    predictor_false_positives: int = 0
    predictor_false_negatives: int = 0

    # OS-aware cost: page fault per page overflow in LCP-like systems.
    os_page_faults: int = 0

    # Ballooning (§V-B).
    balloon_inflations: int = 0
    balloon_pages_reclaimed: int = 0

    # Fault detection and recovery (docs/ROBUSTNESS.md).
    faults_detected: int = 0           # sanitizer violations acted upon
    recoveries: int = 0                # pages/structures repaired
    recovery_failures: int = 0         # violations that persisted after repair
    # Degraded mode: graceful handling of allocator exhaustion.
    alloc_exhaustions: int = 0         # pool dry even after pressure relief
    alloc_denials: int = 0             # allocations denied (page parked)
    emergency_repacks: int = 0         # repack sweeps under pressure
    degraded_exits: int = 0            # headroom restored after frees

    # -- derived aggregates ----------------------------------------------

    @property
    def demand_accesses(self) -> int:
        """Accesses an uncompressed system would perform for this trace."""
        return self.demand_reads + self.demand_writes

    @property
    def compression_change_accesses(self) -> int:
        return (
            self.overflow_accesses
            + self.page_overflow_accesses
            + self.repack_accesses
            + self.speculation_wasted_accesses
        )

    @property
    def extra_accesses(self) -> int:
        """All compression-induced accesses (the Fig. 4 numerator)."""
        return (
            self.split_accesses
            + self.compression_change_accesses
            + self.metadata_miss_accesses
            + self.metadata_writebacks
        )

    @property
    def saved_accesses(self) -> int:
        """Demand accesses compression eliminated (zero lines, prefetch)."""
        return self.zero_line_reads + self.zero_line_writes + self.prefetch_hits

    @property
    def metadata_lookups(self) -> int:
        """Metadata-cache probes: hits + misses (0 = no metadata traffic)."""
        return self.metadata_hits + self.metadata_misses

    def relative_extra_accesses(self) -> float:
        """Extra accesses / demand accesses (the Fig. 4 / Fig. 6 metric)."""
        if self.demand_accesses == 0:
            return 0.0
        return self.extra_accesses / self.demand_accesses

    def breakdown(self) -> dict:
        """Fig. 4-style breakdown, each term relative to demand accesses."""
        demand = max(1, self.demand_accesses)
        return {
            "split": self.split_accesses / demand,
            "overflow": self.compression_change_accesses / demand,
            "metadata": (self.metadata_miss_accesses + self.metadata_writebacks)
            / demand,
        }

    def metadata_hit_rate(self) -> Optional[float]:
        """Metadata-cache hit rate, or ``None`` when there was no
        metadata traffic at all — a run that never probed the cache has
        no hit rate, and reporting 1.0 would fake a perfect one."""
        lookups = self.metadata_lookups
        return self.metadata_hits / lookups if lookups else None

    def merge(self, other: "ControllerStats") -> None:
        """Accumulate another stats object into this one.

        Only plain integer counter fields merge; anything else (a
        derived value or a non-counter that leaked into a field) is
        skipped defensively rather than summed into nonsense.
        """
        for f in fields(self):
            mine = getattr(self, f.name)
            theirs = getattr(other, f.name)
            if (isinstance(mine, int) and not isinstance(mine, bool)
                    and isinstance(theirs, int)
                    and not isinstance(theirs, bool)):
                setattr(self, f.name, mine + theirs)

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def bind_registry(self, registry: MetricRegistry,
                      prefix: str = "controller") -> MetricRegistry:
        """Publish every counter (and the derived aggregates) into a
        :class:`~repro.obs.metrics.MetricRegistry` as pull metrics.

        The registry reads the live fields lazily at collect time, so
        binding costs nothing on the controller's hot path.
        """
        for f in fields(self):
            registry.register(f"{prefix}.{f.name}",
                              lambda name=f.name: getattr(self, name))
        for name in ("demand_accesses", "compression_change_accesses",
                     "extra_accesses", "saved_accesses", "metadata_lookups"):
            registry.register(f"{prefix}.{name}",
                              lambda name=name: getattr(self, name))
        registry.register(f"{prefix}.relative_extra_accesses",
                          self.relative_extra_accesses)
        registry.register(f"{prefix}.metadata_hit_rate",
                          self.metadata_hit_rate)
        return registry
