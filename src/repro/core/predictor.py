"""Page-overflow prediction (paper §IV-B2, Fig. 5b).

Streaming incompressible data over a previously compressible page (the
classic zero-initialized-then-filled buffer) causes a cascade of line
overflows and repeated page overflows as the page climbs through the
size bins one by one.  Compresso predicts this and jumps the page
straight to uncompressed (4 KB):

* a **local** 2-bit saturating counter per metadata-cache entry,
  incremented on a line overflow in that page and decremented on a line
  underflow;
* a **global** 3-bit saturating counter tracking whether the system as
  a whole is experiencing page overflows.

The prediction fires only when both counters have their high bit set.
False negatives lose data-movement savings; false positives squander
compression (later restored by repacking, §IV-B4).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs.tracer import NULL_TRACER


@dataclass
class SaturatingCounter:
    """An n-bit saturating counter."""

    bits: int
    value: int = 0

    def __post_init__(self) -> None:
        if self.bits <= 0:
            raise ValueError("counter needs at least one bit")
        if not 0 <= self.value <= self.max_value:
            raise ValueError(f"initial value {self.value} out of range")

    @property
    def max_value(self) -> int:
        return (1 << self.bits) - 1

    @property
    def high_bit_set(self) -> bool:
        return bool(self.value >> (self.bits - 1))

    def increment(self) -> None:
        if self.value < self.max_value:
            self.value += 1

    def decrement(self) -> None:
        if self.value > 0:
            self.value -= 1


class PageOverflowPredictor:
    """Combined local + global page-overflow predictor.

    Local counters live in the metadata cache (they are created on
    fill and dropped on eviction, like the hardware's per-entry bits);
    the cache calls :meth:`drop_page` on eviction.
    """

    LOCAL_BITS = 2
    GLOBAL_BITS = 3

    def __init__(self, enabled: bool = True, tracer=NULL_TRACER) -> None:
        self.enabled = enabled
        self.tracer = tracer
        self._global = SaturatingCounter(self.GLOBAL_BITS)
        self._local: dict = {}

    # -- event hooks -------------------------------------------------------

    def on_line_overflow(self, page: int) -> None:
        self._local_counter(page).increment()

    def on_line_underflow(self, page: int) -> None:
        self._local_counter(page).decrement()

    def on_page_overflow(self) -> None:
        self._global.increment()

    def on_page_shrink(self) -> None:
        """Repacking freed space — system pressure is easing."""
        self._global.decrement()

    def drop_page(self, page: int) -> None:
        """Metadata entry evicted; its local counter bits are gone."""
        self._local.pop(page, None)

    # -- prediction --------------------------------------------------------

    def should_inflate(self, page: int) -> bool:
        """Speculatively grow the page to 4 KB uncompressed? (§IV-B2)"""
        if not self.enabled:
            return False
        local = self._local.get(page)
        fire = (
            local is not None
            and local.high_bit_set
            and self._global.high_bit_set
        )
        if fire:
            self.tracer.emit("predictor_fire", page=page,
                             local=local.value, global_=self._global.value)
        return fire

    def local_value(self, page: int) -> int:
        counter = self._local.get(page)
        return counter.value if counter else 0

    @property
    def global_value(self) -> int:
        return self._global.value

    def _local_counter(self, page: int) -> SaturatingCounter:
        counter = self._local.get(page)
        if counter is None:
            counter = SaturatingCounter(self.LOCAL_BITS)
            self._local[page] = counter
        return counter
