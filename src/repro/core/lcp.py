"""Linearly Compressed Pages (LCP) packing [Pekhimenko et al., MICRO 2013].

LCP compresses every line in a page to the *same* target size, so the
offset of line *i* is simply ``i * target`` — no adder needed, and a
speculative DRAM access can launch in parallel with the metadata fetch.
Lines that do not fit the target are *exceptions*, stored raw in an
exception region and found through explicit pointers in metadata.

Crucially, LCP sizes pages by *physical size class*: a compressed page
occupies one of 512 B / 1 KB / 2 KB / 4 KB, and the target is derived
from the class **after reserving exception room inside it** (the
original design carves the exception storage out of the physical
page).  Deriving targets this way is what keeps a fresh LCP page from
sitting exactly on its class boundary, where the first exception would
force a whole-page relocation.

Two target granularities model the paper's two baselines (§VI-F):

* ``aligned=False`` (plain LCP): byte-granular targets — maximum
  compression, but slots of 22/44-like sizes straddle 64-byte DRAM
  boundaries (the §IV-A2 split-access problem);
* ``aligned=True`` (LCP+Align): targets restricted to 0/8/16/32/64 —
  slot offsets never cross a 64-byte boundary, at some compression
  cost.

The cost against LinePack is packing flexibility: one target must suit
all 64 lines, so LCP trails LinePack by ~13% compression with the
aggressive BPC compressor while staying close for BDI (Fig. 2).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .packing import PackingScheme, PageLayout

#: Physical size classes of compressed LCP pages (§II-D variable chunks).
DEFAULT_SIZE_CLASSES: Tuple[int, ...] = (512, 1024, 2048, 4096)

#: Exception slots reserved inside each class at pack time.
RESERVED_EXCEPTION_SLOTS = 2

#: Targets whose slot offsets never straddle a 64-byte boundary.
ALIGNED_TARGETS: Tuple[int, ...] = (0, 8, 16, 32, 64)


def derive_targets(size_classes: Sequence[int] = DEFAULT_SIZE_CLASSES,
                   aligned: bool = False, line_size: int = 64,
                   lines_per_page: int = 64,
                   reserved_slots: int = RESERVED_EXCEPTION_SLOTS
                   ) -> Tuple[int, ...]:
    """Per-class target line sizes, with exception room reserved.

    For class ``c``: the largest target ``t`` with
    ``lines * t + reserved_slots * line_size <= c`` — rounded down to an
    alignment-friendly value when ``aligned``.  The raw line size is
    always included (uncompressed pages).
    """
    targets = {0, line_size}
    for size_class in size_classes:
        budget = size_class - reserved_slots * line_size
        target = max(0, budget // lines_per_page)
        if aligned:
            target = max(t for t in ALIGNED_TARGETS if t <= target)
        targets.add(min(target, line_size))
    return tuple(sorted(targets))


class LCPPack(PackingScheme):
    """LCP packing with class-derived targets and an exception region."""

    name = "lcp"

    def __init__(self, line_bins: Sequence[int] = None, line_size: int = 64,
                 max_exceptions: int = 17,
                 size_classes: Sequence[int] = DEFAULT_SIZE_CLASSES,
                 aligned: bool = False) -> None:
        self.size_classes = tuple(size_classes)
        self.aligned = aligned
        if line_bins is None:
            line_bins = derive_targets(size_classes, aligned, line_size)
        else:
            # Caller-supplied bins (e.g. the §VI-F configs name the
            # classic 0/22/44/64 or 0/8/32/64 sets): interpret them as
            # the allowed targets, still packing with reserved headroom.
            line_bins = tuple(sorted(set(line_bins) | {0, line_size}))
        super().__init__(line_bins, line_size, max_exceptions)

    def pack_candidates(self, line_sizes: Sequence[int]) -> List[PageLayout]:
        """One layout per feasible (class, target) pair.

        A candidate is feasible when its slots, current exceptions and
        the reserved exception headroom all fit the class.
        """
        lines = len(line_sizes)
        raw_bin = len(self.line_bins) - 1
        candidates = [self.layout_from_bins([raw_bin] * lines, ())]
        seen = set()
        for size_class in self.size_classes:
            target_bin = self._target_bin_for_class(size_class, lines)
            if target_bin is None or target_bin in seen:
                continue
            target = self.bin_bytes(target_bin)
            exceptions = tuple(
                line for line, size in enumerate(line_sizes) if size > target
            )
            if len(exceptions) > self.max_exceptions:
                continue
            # The reserved slots exist *for* exceptions: headroom must
            # cover the larger of (current exceptions, the reserve).
            headroom = max(len(exceptions), RESERVED_EXCEPTION_SLOTS)
            if lines * target + headroom * self.line_size > size_class:
                continue
            seen.add(target_bin)
            candidates.append(
                self.layout_from_bins([target_bin] * lines, exceptions)
            )
        return candidates

    def _target_bin_for_class(self, size_class: int, lines: int):
        """Largest compressed target bin whose slots + reserve fit the class."""
        budget = size_class - RESERVED_EXCEPTION_SLOTS * self.line_size
        best = None
        for index, target in enumerate(self.line_bins[:-1]):
            if target * lines <= budget:
                best = index
        return best

    def pack(self, line_sizes: Sequence[int]) -> PageLayout:
        """Choose the candidate minimizing total storage."""
        return min(self.pack_candidates(line_sizes),
                   key=lambda layout: layout.total_bytes)

    def layout_from_bins(self, slot_bins: Sequence[int],
                         inflated_lines: Sequence[int]) -> PageLayout:
        if len(set(slot_bins)) > 1:
            raise ValueError("LCP requires a single target bin for all lines")
        target = self.bin_bytes(slot_bins[0]) if slot_bins else 0
        offsets = tuple(i * target for i in range(len(slot_bins)))
        sizes = tuple(target for _ in slot_bins)
        return PageLayout(
            slot_offsets=offsets,
            slot_sizes=sizes,
            data_bytes=target * len(slot_bins),
            inflated_lines=tuple(inflated_lines),
        )

    @property
    def offset_calc_cycles(self) -> int:
        return 0  # offset is a multiply by the target
