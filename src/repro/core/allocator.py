"""Compatibility shim: the MPA allocators live in :mod:`repro.memory.allocator`.

They are re-exported here because the allocation scheme (incremental
512-byte chunks vs. variable-sized regions) is one of the paper's §II-D
design choices and callers naturally look for it next to the rest of
the Compresso core.
"""

from ..memory.allocator import (
    AllocatorStats,
    ChunkAllocator,
    OutOfMemoryError,
    VariableAllocator,
)

__all__ = [
    "AllocatorStats",
    "ChunkAllocator",
    "OutOfMemoryError",
    "VariableAllocator",
]
