"""Configuration for compressed-memory systems (paper Tab. III + §II/§IV).

Every design choice the paper discusses is a field here, so the
experiment harness can express the whole design space: packing scheme,
allocation scheme, line-size bins, page-size bins, and each
data-movement optimization independently (they are orthogonal, §IV-B).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Tuple

#: Alignment-friendly line bins Compresso uses (§IV-B1).
ALIGNMENT_FRIENDLY_LINE_BINS: Tuple[int, ...] = (0, 8, 32, 64)
#: Compression-optimal but split-prone bins used by prior work (LCP, RMC).
PRIOR_WORK_LINE_BINS: Tuple[int, ...] = (0, 22, 44, 64)
#: Eight-bin variant evaluated in the §IV-A1 trade-off discussion.
EIGHT_LINE_BINS: Tuple[int, ...] = (0, 8, 16, 24, 32, 40, 52, 64)

#: Compresso page sizes: incremental 512 B chunks, 0..8 chunks (§II-D).
CHUNK_PAGE_SIZES: Tuple[int, ...] = tuple(512 * i for i in range(9))
#: Variable-sized chunk alternative with 4 sizes (plus the zero page).
VARIABLE_PAGE_SIZES: Tuple[int, ...] = (0, 512, 1024, 2048, 4096)


@dataclass(frozen=True)
class CompressoConfig:
    """Full parameterization of one compressed-memory design point."""

    # -- geometry ---------------------------------------------------------
    line_size: int = 64
    page_size: int = 4096
    chunk_size: int = 512

    # -- packing / allocation choices (§II-C, §II-D) ----------------------
    packing: str = "linepack"            # "linepack" | "lcp"
    allocation: str = "chunks"           # "chunks" | "variable"
    line_bins: Tuple[int, ...] = ALIGNMENT_FRIENDLY_LINE_BINS
    page_sizes: Tuple[int, ...] = CHUNK_PAGE_SIZES

    # -- compression ------------------------------------------------------
    compressor: str = "bpc"              # registry name (see compression.selector)

    # -- metadata (§III) --------------------------------------------------
    metadata_entry_bytes: int = 64
    metadata_cache_bytes: int = 96 * 1024
    metadata_cache_assoc: int = 8
    max_inflation_pointers: int = 17

    # -- data-movement optimizations (§IV-B), individually switchable -----
    enable_overflow_prediction: bool = True
    enable_ir_expansion: bool = True
    enable_repacking: bool = True
    enable_metadata_half_entries: bool = True

    # -- OS model (§V) ----------------------------------------------------
    os_transparent: bool = True          # False models the OS-aware LCP system
    speculative_access: bool = False     # LCP's parallel speculative DRAM read

    # -- latencies in CPU cycles (Tab. III) -------------------------------
    compression_latency: int = 12
    decompression_latency: int = 12
    metadata_cache_hit_latency: int = 2
    offset_calc_latency: int = 1         # LinePack adder, §VII-E

    def __post_init__(self) -> None:
        if self.page_size % self.line_size:
            raise ValueError("page_size must be a multiple of line_size")
        if self.page_size % self.chunk_size:
            raise ValueError("page_size must be a multiple of chunk_size")
        if self.packing not in ("linepack", "lcp"):
            raise ValueError(f"unknown packing {self.packing!r}")
        if self.allocation not in ("chunks", "variable"):
            raise ValueError(f"unknown allocation {self.allocation!r}")
        bins = self.line_bins
        if bins[0] != 0 or bins[-1] != self.line_size or list(bins) != sorted(bins):
            raise ValueError(
                f"line_bins must be sorted, start at 0 and end at line_size: {bins}"
            )
        sizes = self.page_sizes
        if sizes[0] != 0 or sizes[-1] != self.page_size or list(sizes) != sorted(sizes):
            raise ValueError(
                f"page_sizes must be sorted, start at 0 and end at page_size: {sizes}"
            )
        if self.allocation == "chunks":
            if any(s % self.chunk_size for s in sizes):
                raise ValueError("chunk allocation requires chunk-multiple page sizes")

    # -- derived ----------------------------------------------------------

    @property
    def lines_per_page(self) -> int:
        return self.page_size // self.line_size

    @property
    def max_chunks_per_page(self) -> int:
        return self.page_size // self.chunk_size

    @property
    def line_bin_bits(self) -> int:
        """Bits of metadata per line to encode its size bin (2 for 4 bins)."""
        return max(1, (len(self.line_bins) - 1).bit_length())

    def replace(self, **overrides) -> "CompressoConfig":
        """Return a copy with the given fields overridden."""
        return dataclasses.replace(self, **overrides)


def compresso_config(**overrides) -> CompressoConfig:
    """The paper's Compresso design point (Tab. III)."""
    return CompressoConfig(**overrides)


def lcp_config(**overrides) -> CompressoConfig:
    """The competitive baseline: an enhanced OS-aware LCP system (§VI-F).

    Optimized BPC, inflation (exception) room, same-size metadata cache,
    4 compressed page sizes, LCP packing with prior-work line bins, and
    LCP's speculative parallel memory access.  None of Compresso's
    data-movement optimizations.
    """
    defaults = dict(
        packing="lcp",
        allocation="variable",
        line_bins=PRIOR_WORK_LINE_BINS,
        page_sizes=VARIABLE_PAGE_SIZES,
        os_transparent=False,
        speculative_access=True,
        enable_overflow_prediction=False,
        enable_ir_expansion=False,
        enable_repacking=False,
        enable_metadata_half_entries=False,
    )
    defaults.update(overrides)
    return CompressoConfig(**defaults)


def lcp_align_config(**overrides) -> CompressoConfig:
    """LCP+Align: the baseline with alignment-friendly line bins (§VI-F)."""
    defaults = dict(line_bins=ALIGNMENT_FRIENDLY_LINE_BINS)
    defaults.update(overrides)
    return lcp_config(**defaults)
