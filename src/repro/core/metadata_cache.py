"""Metadata cache with the half-entry optimization (paper §III, §IV-B5).

Every LLC fill or writeback needs the page's 64-byte metadata entry.
A 96 KB, 8-way cache keeps hot entries; misses cost a DRAM access on
the critical path (the dominant residual overhead in Fig. 6).

The §IV-B5 optimization: for *uncompressed* pages all line sizes are
implicitly 64 B and there are no inflated lines, so only the first
32 bytes of the entry (flags + MPFNs) need caching.  Half-sized entries
double the effective capacity for incompressible working sets — the
cache therefore accounts capacity in 32-byte sub-slots: a full entry
costs 2 slots, a half entry costs 1.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, List, Optional

from ..obs.tracer import NULL_TRACER


@dataclass
class CacheEntry:
    """One resident metadata entry."""

    page: int
    half: bool = False        # half-entry (uncompressed page)?
    dirty: bool = False

    @property
    def slots(self) -> int:
        return 1 if self.half else 2


@dataclass
class MetadataCacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    half_entries_filled: int = 0

    def hit_rate(self) -> Optional[float]:
        """Hit rate, or ``None`` when the cache was never probed."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else None


class MetadataCache:
    """Set-associative metadata cache, LRU within each set.

    ``capacity_bytes`` and ``assoc`` follow Tab. III (96 KB, 8-way,
    64-byte entries).  When ``half_entries`` is enabled, each way can
    hold two half entries, so capacity is managed in 32-byte slots.

    ``on_evict(page, dirty)`` fires for every eviction — Compresso uses
    it as the dynamic-repacking trigger (§IV-B4).
    """

    ENTRY_BYTES = 64

    def __init__(self, capacity_bytes: int = 96 * 1024, assoc: int = 8,
                 half_entries: bool = True,
                 on_evict: Optional[Callable[[int, bool], None]] = None,
                 tracer=NULL_TRACER) -> None:
        if capacity_bytes % (self.ENTRY_BYTES * assoc):
            raise ValueError("capacity must divide into assoc x 64 B sets")
        self.n_sets = capacity_bytes // (self.ENTRY_BYTES * assoc)
        self.assoc = assoc
        self.half_entries = half_entries
        self.slots_per_set = assoc * 2  # capacity in 32 B sub-slots
        self.on_evict = on_evict
        self.tracer = tracer
        self.stats = MetadataCacheStats()
        # Per set: OrderedDict page -> CacheEntry, LRU order (oldest first).
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.n_sets)]

    def _set_for(self, page: int) -> OrderedDict:
        return self._sets[page % self.n_sets]

    def lookup(self, page: int) -> bool:
        """Probe without filling. True on hit (entry becomes MRU)."""
        entries = self._set_for(page)
        if page in entries:
            entries.move_to_end(page)
            self.stats.hits += 1
            self.tracer.emit("mdcache_hit", page=page)
            return True
        self.stats.misses += 1
        self.tracer.emit("mdcache_miss", page=page)
        return False

    def fill(self, page: int, half: bool = False, dirty: bool = False) -> int:
        """Insert an entry after a miss; returns evictions performed."""
        half = half and self.half_entries
        entries = self._set_for(page)
        if page in entries:
            # Refill can change the entry's shape (page became compressed).
            existing = entries[page]
            existing.half = half
            existing.dirty = existing.dirty or dirty
            entries.move_to_end(page)
            return 0
        evictions = 0
        new_entry = CacheEntry(page=page, half=half, dirty=dirty)
        while self._used_slots(entries) + new_entry.slots > self.slots_per_set:
            evictions += self._evict_lru(entries)
        entries[page] = new_entry
        if half:
            self.stats.half_entries_filled += 1
            self.tracer.emit("mdcache_half_fill", page=page)
        return evictions

    def access(self, page: int, half: bool = False,
               make_dirty: bool = False) -> bool:
        """Combined probe+fill. Returns True on hit."""
        hit = self.lookup(page)
        if hit:
            if make_dirty:
                self._set_for(page)[page].dirty = True
        else:
            self.fill(page, half=half, dirty=make_dirty)
        return hit

    def mark_dirty(self, page: int) -> None:
        entries = self._set_for(page)
        if page in entries:
            entries[page].dirty = True

    def reshape(self, page: int, half: bool) -> None:
        """Change an entry between half and full form in place."""
        entries = self._set_for(page)
        entry = entries.get(page)
        if entry is None:
            return
        entry.half = half and self.half_entries
        # Growing a half entry to full may exceed set capacity.
        while self._used_slots(entries) > self.slots_per_set:
            self._evict_lru(entries, skip=page)

    def invalidate(self, page: int) -> None:
        """Drop an entry without the eviction callback (page freed)."""
        self._set_for(page).pop(page, None)

    def flush(self) -> None:
        """Evict everything (end of simulation), firing callbacks."""
        for entries in self._sets:
            while entries:
                self._evict_lru(entries)

    def contains(self, page: int) -> bool:
        return page in self._set_for(page)

    def resident_pages(self) -> List[int]:
        return [page for entries in self._sets for page in entries]

    def entry_items(self):
        """(index page, entry) pairs for every resident entry.

        Exposed for the memory-model sanitizer (entry/page coherence
        checks) and the fault injector (docs/ROBUSTNESS.md); the entry
        objects are the live ones, not copies.
        """
        return [(page, entry) for entries in self._sets
                for page, entry in entries.items()]

    def occupancy(self) -> float:
        """Fraction of the cache's 32-byte sub-slots currently filled."""
        capacity = self.n_sets * self.slots_per_set
        if not capacity:
            return 0.0
        used = sum(self._used_slots(entries) for entries in self._sets)
        return used / capacity

    @staticmethod
    def _used_slots(entries: OrderedDict) -> int:
        return sum(entry.slots for entry in entries.values())

    def _evict_lru(self, entries: OrderedDict, skip: Optional[int] = None) -> int:
        for page in entries:
            if page != skip:
                entry = entries.pop(page)
                self.stats.evictions += 1
                if entry.dirty:
                    self.stats.dirty_evictions += 1
                self.tracer.emit("mdcache_evict", page=entry.page,
                                 dirty=entry.dirty)
                if self.on_evict is not None:
                    self.on_evict(entry.page, entry.dirty)
                return 1
        raise RuntimeError("cannot evict: set holds only the protected entry")
