"""Compressed-memory controller: the OSPA→MPA layer (paper §III–§V).

``CompressedMemoryController`` models everything the paper puts in the
memory controller: per-page metadata and its cache, LinePack or LCP
packing, the inflation room with dynamic expansion, the page-overflow
predictor, dynamic repacking on metadata-cache eviction, zero-line
short cuts, burst prefetch, and — for OS-aware baselines — page faults
on page overflows.  One class covers Compresso, the LCP baseline and
LCP+Align; the :class:`~repro.core.config.CompressoConfig` selects the
behaviour (§VI-F builds all three from it).

The controller is *functionally* exact about layout: offsets, splits
and movement costs derive from real compressed sizes of real line data,
using the same arithmetic the hardware would.  Payload bytes are kept
in a per-page shadow (``PageState.data``) rather than serialized into a
byte array — the bit streams themselves are exercised and verified in
the compression package.

Construct with ``sanitize=True`` to attach the memory-model sanitizer
(:class:`repro.check.sanitizer.MemorySanitizer`, docs/LINTING.md),
which re-verifies the layout, inflation-room and allocator-ownership
invariants after every operation.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..compression import is_zero_line, make_compressor
from ..memory.physical import MemoryGeometry, OutOfMemoryError, PhysicalMemory
from ..memory.request import AccessCategory, AccessKind, AccessResult, MemAccess
from ..obs.tracer import NULL_TRACER
from .config import CompressoConfig
from .lcp import LCPPack
from .linepack import LinePack
from .metadata import PageMetadata
from .metadata_cache import MetadataCache
from .packing import PageLayout
from .predictor import PageOverflowPredictor
from .stats import ControllerStats

_BLOCK = 64  # DRAM access granularity


class _SizeCache:
    """Memoized compressed sizes; synthetic traces repeat line contents.

    The cache is shared process-wide (keyed by algorithm and content)
    because experiment sweeps run the same workload through several
    system configurations using the same compressor.
    """

    _shared: OrderedDict = OrderedDict()
    _MAX = 1 << 18

    def __init__(self, compressor) -> None:
        self._compressor = compressor
        self._key = (compressor.name, compressor.line_size,
                     getattr(compressor, "transform_only", False))

    def size_bytes(self, data: bytes) -> int:
        cache = _SizeCache._shared
        key = (self._key, data)
        cached = cache.get(key)
        if cached is not None:
            cache.move_to_end(key)
            return cached
        size = min(
            self._compressor.compressed_size_bytes(data),
            len(data),  # packing stores raw if compression does not help
        )
        cache[key] = size
        if len(cache) > _SizeCache._MAX:
            cache.popitem(last=False)
        return size


@dataclass
class PageState:
    """Runtime state of one OSPA page."""

    meta: PageMetadata
    data: List[Optional[bytes]]          # None = logically zero line
    ideal_sizes: List[int]               # fresh compressed size per line
    layout: Optional[PageLayout] = None  # cached, derived from meta
    region_base: Optional[int] = None    # variable allocation: base chunk
    #: Set when the overflow predictor stored this page uncompressed;
    #: grants one eviction generation of repacking hysteresis so
    #: prediction and repacking do not ping-pong a streaming page.
    predictor_inflated: bool = False

    @property
    def allocation_bytes(self) -> int:
        return self.meta.size_chunks * 512


class CompressedMemoryController:
    """OSPA→MPA translation and compressed data management."""

    def __init__(self, config: CompressoConfig, geometry: MemoryGeometry,
                 burst_buffer_blocks: int = 16, tracer=NULL_TRACER,
                 sanitize=False) -> None:
        self.config = config
        self.geometry = geometry
        self.tracer = tracer
        self.memory = PhysicalMemory(
            geometry, allocation=config.allocation, chunk_size=config.chunk_size
        )
        self.compressor = make_compressor(config.compressor, config.line_size)
        self._sizes = _SizeCache(self.compressor)
        if config.packing == "linepack":
            self.packer = LinePack(
                config.line_bins, config.line_size, config.max_inflation_pointers
            )
        else:
            self.packer = LCPPack(
                config.line_bins, config.line_size, config.max_inflation_pointers
            )
        self.predictor = PageOverflowPredictor(
            config.enable_overflow_prediction, tracer=tracer
        )
        self.metadata_cache = MetadataCache(
            config.metadata_cache_bytes,
            config.metadata_cache_assoc,
            half_entries=config.enable_metadata_half_entries,
            on_evict=self._on_metadata_evict,
            tracer=tracer,
        )
        self.stats = ControllerStats()
        self.pages: Dict[int, PageState] = {}
        self.balloon = None  # attached by core.ballooning.BalloonDriver
        # Recently fetched (page, block-in-page) pairs: models the free
        # prefetch of neighbouring compressed lines in one burst (§VII-A).
        self._burst_buffer: OrderedDict = OrderedDict()
        self._burst_capacity = burst_buffer_blocks
        self._pending: List[MemAccess] = []
        #: OSPA page of the in-flight operation: the balloon must not
        #: reclaim the page the controller is currently operating on.
        self._active_page: Optional[int] = None
        #: Shadow-state invariant checker (docs/LINTING.md): verifies
        #: layout, inflation-room and allocator-ownership invariants
        #: after every operation when enabled.  Beyond plain True,
        #: ``sanitize`` accepts two modes (docs/ROBUSTNESS.md):
        #: ``"strict"`` raises :class:`SanitizerError` on the first
        #: violation; ``"recover"`` repairs detected corruption via the
        #: decompress-and-mark-uncompressed fallback instead of only
        #: tracing it.
        if sanitize not in (False, True, "strict", "recover"):
            raise ValueError(f"unknown sanitize mode: {sanitize!r}")
        self.recover_mode = sanitize == "recover"
        if sanitize:
            from ..check.sanitizer import MemorySanitizer
            self.sanitizer: Optional[MemorySanitizer] = MemorySanitizer(
                config, tracer=tracer,
                raise_on_violation=sanitize == "strict")
        else:
            self.sanitizer = None
        self._violation_cursor = 0
        self._recovering = False
        #: Degraded mode (docs/ROBUSTNESS.md): entered when machine
        #: memory stays exhausted after ballooning and an emergency
        #: repack sweep.  While set, new compression growth is denied
        #: (pages park unbacked, shadow data intact) instead of the
        #: controller raising; frees restore headroom and exit it.
        self.degraded_mode = False
        #: Tracer clock at the last ``degraded_enter`` (None outside
        #: degraded mode).  The pressure watchdog (repro.pressure,
        #: docs/PRESSURE.md) bounds the dwell time ``clock -
        #: degraded_since`` and escalates when it is exceeded.
        self.degraded_since: Optional[int] = None
        self._in_emergency_repack = False

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def read_line(self, page: int, line: int) -> AccessResult:
        """LLC fill: fetch one 64-byte line."""
        self._check_address(page, line)
        self._active_page = page
        result = AccessResult()
        self.stats.demand_reads += 1
        self.tracer.tick()
        state = self._page(page)

        self._metadata_access(page, state, result, for_write=False)
        data = state.data[line]
        result.data = data if data is not None else bytes(self.config.line_size)

        meta = state.meta
        if not meta.valid or meta.zero:
            self.stats.zero_line_reads += 1
            self.tracer.emit("zero_line_read", page=page)
            result.served_by_metadata = True
            return self._finish(result)

        if not meta.compressed:
            address = self._mpa_address(state, line * self.config.line_size)
            result.accesses.append(
                MemAccess(AccessKind.READ, AccessCategory.DEMAND, address)
            )
            return self._finish(result)

        location = self._layout(state).locate(line)
        if location.size == 0:
            # Zero-size slot: the line is known zero from metadata alone.
            self.stats.zero_line_reads += 1
            self.tracer.emit("zero_line_read", page=page)
            result.served_by_metadata = True
            return self._finish(result)

        result.controller_cycles += self.packer.offset_calc_cycles
        result.controller_cycles += self.config.decompression_latency
        blocks = self._blocks_for(state, location.offset, location.size)
        if all((page, block) in self._burst_buffer for block in blocks):
            self.stats.prefetch_hits += 1
            self.tracer.emit("prefetch_hit", page=page)
            result.prefetch_hit = True
            return self._finish(result)

        for index, block in enumerate(blocks):
            category = AccessCategory.DEMAND if index == 0 else AccessCategory.SPLIT
            result.accesses.append(
                MemAccess(AccessKind.READ, category,
                          self._mpa_address(state, block * _BLOCK))
            )
            self._remember_block(page, block)
        if len(blocks) > 1:
            self.stats.split_accesses += len(blocks) - 1
            self.tracer.emit("split_access", page=page, extra=len(blocks) - 1)
        return self._finish(result)

    def write_line(self, page: int, line: int, data: bytes) -> AccessResult:
        """LLC writeback: store one 64-byte line."""
        self._check_address(page, line)
        if len(data) != self.config.line_size:
            raise ValueError(f"expected {self.config.line_size}-byte line")
        self._active_page = page
        result = AccessResult()
        self.stats.demand_writes += 1
        self.tracer.tick()
        state = self._page(page)

        self._metadata_access(page, state, result, for_write=True)
        zero = is_zero_line(data)
        new_size = 0 if zero else self._sizes.size_bytes(data)
        old_ideal_bin = self.packer.bin_index(state.ideal_sizes[line])
        new_ideal_bin = self.packer.bin_index(new_size)
        state.data[line] = None if zero else bytes(data)
        state.ideal_sizes[line] = new_size
        self._invalidate_burst(page)
        if new_ideal_bin != old_ideal_bin:
            # The encoded size / free-space counter changed (§IV-B4).
            self.metadata_cache.mark_dirty(page)

        try:
            return self._write_line_dispatch(page, line, state, result, zero,
                                             new_size, old_ideal_bin,
                                             new_ideal_bin)
        except OutOfMemoryError:
            # Allocation denied even after pressure relief: degrade
            # gracefully instead of surfacing the error — the shadow
            # payload was already updated above, so reads stay correct
            # and a later write retries via first touch.
            self._deny_allocation(page, state)
            return self._finish(result)

    def _write_line_dispatch(self, page: int, line: int, state: PageState,
                             result: AccessResult, zero: bool, new_size: int,
                             old_ideal_bin: int,
                             new_ideal_bin: int) -> AccessResult:
        """Writeback handling after the shadow payload is updated.

        Separated from :meth:`write_line` so every allocating path
        (first touch, IR expansion, recompression, shift-grow,
        store-uncompressed) sits under one ``OutOfMemoryError`` guard.
        """
        meta = state.meta
        if not meta.valid or meta.zero:
            if zero:
                self.stats.zero_line_writes += 1
                self.tracer.emit("zero_line_write", page=page)
                result.served_by_metadata = True
                return self._finish(result)
            self._first_touch(page, state, result)
            return self._finish(result)

        if not meta.compressed:
            if new_ideal_bin < old_ideal_bin:
                self.stats.line_underflows += 1
                self.tracer.emit("line_underflow", page=page)
                self.predictor.on_line_underflow(page)
            address = self._mpa_address(state, line * self.config.line_size)
            result.accesses.append(
                MemAccess(AccessKind.WRITE, AccessCategory.DEMAND, address,
                          critical=False)
            )
            return self._finish(result)

        # Compressed page.
        location = self._layout(state).locate(line)
        if location.inflated:
            # Already in the inflation room: 64 B raw slot always fits.
            if new_ideal_bin < old_ideal_bin:
                self.stats.line_underflows += 1
                self.tracer.emit("line_underflow", page=page)
                self.predictor.on_line_underflow(page)
            self._write_blocks(state, result, location.offset, _BLOCK,
                               AccessCategory.DEMAND)
            return self._finish(result)

        if zero and location.size == 0:
            self.stats.zero_line_writes += 1
            self.tracer.emit("zero_line_write", page=page)
            result.served_by_metadata = True
            return self._finish(result)

        new_bin = self.packer.bin_index(new_size)
        slot_bin = meta.line_bins[line]
        if self.packer.bin_bytes(new_bin) <= location.size:
            if new_ideal_bin < old_ideal_bin:
                self.stats.line_underflows += 1
                self.tracer.emit("line_underflow", page=page)
                self.predictor.on_line_underflow(page)
            if zero:
                # All-zero writeback: metadata alone records it (§VII-A).
                self.stats.zero_line_writes += 1
                self.tracer.emit("zero_line_write", page=page)
                result.served_by_metadata = True
                return self._finish(result)
            result.controller_cycles += self.config.compression_latency
            self._write_blocks(state, result, location.offset,
                               self.packer.bin_bytes(new_bin),
                               AccessCategory.DEMAND)
            return self._finish(result)

        # Line overflow (§IV, Fig. 1c).  The predictor watches for
        # *incompressible* streams specifically (zero-initialized pages
        # being overwritten with raw data, §IV-B2); a line merely
        # growing into a compressed bin is normal warm-up.
        self.stats.line_overflows += 1
        self.tracer.emit("line_overflow", page=page)
        incompressible = new_bin == len(self.config.line_bins) - 1
        if incompressible:
            self.predictor.on_line_overflow(page)
        result.controller_cycles += self.config.compression_latency
        self._handle_line_overflow(page, state, line, result, incompressible)
        return self._finish(result)

    def install_page(self, page: int, lines) -> None:
        """Warm-boot install: place a page's contents without counting stats.

        Experiments start from a CompressPoint, i.e. mid-execution with
        memory already populated (§VI-B); this models the data having
        been written long before the measured region.
        """
        self._check_address(page, 0)
        if len(lines) != self.config.lines_per_page:
            raise ValueError(f"expected {self.config.lines_per_page} lines")
        state = self._page(page)
        if state.meta.valid:
            raise ValueError(f"page {page} already installed")
        sizes = []
        for line in lines:
            if is_zero_line(line):
                sizes.append(0)
            else:
                sizes.append(self._sizes.size_bytes(bytes(line)))
        if all(size == 0 for size in sizes):
            return  # stays a zero page
        state.data = [
            None if size == 0 else bytes(line)
            for line, size in zip(lines, sizes)
        ]
        state.ideal_sizes = sizes
        meta = state.meta
        meta.valid = True
        meta.zero = False
        layout = self._best_layout(sizes)
        chunks = self._alloc_chunks_for_layout(layout)
        try:
            if self._should_store_raw(layout, chunks):
                # No compression benefit: store the page uncompressed, so
                # reads skip decompression and the metadata cache can use
                # a half entry.
                meta.compressed = False
                raw_bin = len(self.config.line_bins) - 1
                meta.line_bins = [raw_bin] * self.config.lines_per_page
                meta.inflated_lines = []
                state.layout = None
                self._allocate(state, self.config.max_chunks_per_page)
            else:
                meta.compressed = True
                self._apply_layout(state, layout)
                self._allocate(state, chunks)
        except OutOfMemoryError:
            # Machine memory exhausted: park the page unbacked instead of
            # failing the install (docs/ROBUSTNESS.md degraded mode).
            self._deny_allocation(page, state)
        self._sanitize_op(page)

    def prime_size_cache(self, lines) -> int:
        """Batch-prime the shared compressed-size cache (docs/KERNELS.md).

        The demand paths compute one line's compressed size at a time
        through :class:`_SizeCache`; a simulation that already knows
        its working set can instead push every distinct line through
        the vector kernels' sizes-only fast path in one call.  Stores
        exactly what the demand path would (``min(size_bytes,
        line_size)``), so behaviour and statistics are unchanged — only
        wall-clock improves.  Returns the number of entries added.
        """
        cache = _SizeCache._shared
        key = self._sizes._key
        todo: List[bytes] = []
        seen = set()
        for line in lines:
            data = bytes(line)
            if is_zero_line(data) or data in seen or (key, data) in cache:
                continue
            seen.add(data)
            todo.append(data)
        if not todo:
            return 0
        from ..compression.vector.batch import batch_compressor_for

        batch = batch_compressor_for(self.compressor)
        if batch is not None:
            sizes = ((batch.batch_size_bits(todo) + 7) // 8).tolist()
        else:
            # best-of compressors route through their own batch fast
            # path; anything else degrades to the scalar loop.
            sizes = [line.size_bytes
                     for line in self.compressor.batch_compress(todo)]
        for data, size in zip(todo, sizes):
            cache[(key, data)] = min(int(size), len(data))
            cache.move_to_end((key, data))
        while len(cache) > _SizeCache._MAX:
            cache.popitem(last=False)
        return len(todo)

    def compression_ratio(self) -> float:
        """Effective compression: OSPA bytes stored / MPA bytes used."""
        stored = used = 0
        page_size = self.config.page_size
        for state in self.pages.values():
            if not state.meta.valid:
                continue
            stored += page_size
            used += state.allocation_bytes
        if used == 0:
            return float("inf") if stored else 1.0
        return stored / used

    def used_bytes(self) -> int:
        return self.memory.used_bytes

    def flush_metadata(self) -> List[MemAccess]:
        """Flush the metadata cache (fires repack triggers); returns traffic."""
        self.metadata_cache.flush()
        pending, self._pending = self._pending, []
        self._sanitize_all()
        return pending

    def force_repack(self, page: int) -> bool:
        """Explicitly repack one page (used by tests and the balloon)."""
        state = self.pages.get(page)
        if state is None or not state.meta.valid:
            return False
        repacked = self._maybe_repack(page, state)
        self._sanitize_op(page)
        return repacked

    def free_page(self, page: int) -> None:
        """Invalidate an OSPA page and release its storage (balloon path)."""
        state = self.pages.get(page)
        if state is None or not state.meta.valid:
            return
        self._release_storage(state)
        self.metadata_cache.invalidate(page)
        self.predictor.drop_page(page)
        self.pages.pop(page, None)
        self._maybe_exit_degraded()
        self._sanitize_op(None)

    # ------------------------------------------------------------------
    # metadata path
    # ------------------------------------------------------------------

    def _page(self, page: int) -> PageState:
        state = self.pages.get(page)
        if state is None:
            lines = self.config.lines_per_page
            meta = PageMetadata(
                valid=False, zero=True, compressed=True, size_chunks=0,
                mpfns=[], line_bins=[0] * lines, inflated_lines=[],
            )
            state = PageState(
                meta=meta, data=[None] * lines, ideal_sizes=[0] * lines
            )
            self.pages[page] = state
        return state

    def _metadata_access(self, page: int, state: PageState,
                         result: AccessResult, for_write: bool) -> None:
        # Entries are dirtied only when the metadata actually changes
        # (bin updates, inflation, page transitions) — see _touch_meta.
        half = state.meta.is_uncompressed
        hit = self.metadata_cache.access(page, half=half, make_dirty=False)
        if hit:
            self.stats.metadata_hits += 1
            self.tracer.emit("metadata_hit", page=page)
            result.controller_cycles += self.config.metadata_cache_hit_latency
        else:
            self.stats.metadata_misses += 1
            self.stats.metadata_miss_accesses += 1
            self.tracer.emit("metadata_miss", page=page, extra=1)
            critical = not (self.config.speculative_access and not for_write)
            result.accesses.append(
                MemAccess(AccessKind.READ, AccessCategory.METADATA,
                          self.memory.metadata_address(page), critical=critical)
            )
            if self.config.speculative_access and not for_write:
                self._speculate(page, state, result)

    def _speculate(self, page: int, state: PageState,
                   result: AccessResult) -> None:
        """LCP's speculative read in parallel with a metadata miss (§II-C).

        The speculative access assumes the line is *not* an exception;
        if it is, the access is wasted.  Modeled as: the metadata fetch
        leaves the critical path (the parallel data access covers it),
        and exceptions cost one extra wasted access.
        """
        meta = state.meta
        if not meta.valid or meta.zero or not meta.compressed:
            return
        if meta.inflated_lines:
            self.stats.speculation_wasted_accesses += 1
            self.tracer.emit("speculation_wasted", page=page, extra=1)
            address = self._mpa_address(state, 0)
            result.accesses.append(
                MemAccess(AccessKind.READ, AccessCategory.SPECULATIVE, address,
                          critical=False)
            )

    def _on_metadata_evict(self, page: int, dirty: bool) -> None:
        state = self.pages.get(page)
        if dirty:
            self.stats.metadata_writebacks += 1
            self.tracer.emit("metadata_writeback", page=page, extra=1)
            self._pending.append(
                MemAccess(AccessKind.WRITE, AccessCategory.METADATA,
                          self.memory.metadata_address(page), critical=False)
            )
        # The evicted entry's local overflow counter is consulted before
        # it disappears: a page still streaming incompressible data must
        # not be repacked yet, or prediction and repacking would ping-pong
        # the page between compressed and uncompressed forms.
        streaming = self.predictor.enabled and (
            self.predictor.local_value(page) >= 2
            or (state is not None and not state.meta.compressed
                and state.meta.valid
                and self.predictor.global_value >= 4)
        )
        self.predictor.drop_page(page)
        if state is None or not self.config.enable_repacking or streaming:
            return
        if state.predictor_inflated:
            # One generation of hysteresis after a predictor inflation.
            state.predictor_inflated = False
            return
        self._maybe_repack(page, state)

    # ------------------------------------------------------------------
    # allocation / layout helpers
    # ------------------------------------------------------------------

    def _layout(self, state: PageState) -> PageLayout:
        if state.layout is None:
            state.layout = self.packer.layout_from_bins(
                state.meta.line_bins, state.meta.inflated_lines
            )
        return state.layout

    def _alloc_chunks_for_layout(self, layout: PageLayout) -> int:
        """Chunks to allocate for a fresh layout.

        Exception/inflation headroom is whatever slack the allocation
        quantum leaves above ``total_bytes`` — pre-reserving extra slots
        would push boundary-sitting pages a whole size class up and
        squander compression, so growth is handled by the overflow
        machinery instead (inflation room, Dynamic IR Expansion, or an
        LCP page overflow).
        """
        return self._chunks_for(max(512, layout.total_bytes))

    def _best_layout(self, sizes) -> PageLayout:
        """Pack fresh sizes, minimizing the *allocated* footprint.

        For LCP this prefers the target that leaves exception headroom
        inside the size class over one that sits exactly on a class
        boundary (where the first exception would force a relocation).
        """
        return min(
            self.packer.pack_candidates(sizes),
            key=lambda layout: (
                self._alloc_chunks_for_layout(layout),
                layout.total_bytes,
            ),
        )

    def _check_address(self, page: int, line: int) -> None:
        if page < 0 or page >= self.geometry.ospa_pages:
            raise ValueError(f"OSPA page {page} out of range")
        if line < 0 or line >= self.config.lines_per_page:
            raise ValueError(f"line {line} out of range")

    def _chunks_for(self, total_bytes: int) -> int:
        if total_bytes == 0:
            return 0
        chunk = self.config.chunk_size
        chunks = (total_bytes + chunk - 1) // chunk
        if self.config.allocation == "variable":
            # Variable regions come in power-of-two sizes (§II-D).
            size = chunk
            while size < chunks * chunk:
                size *= 2
            chunks = size // chunk
        return max(1, chunks)

    def _allocate(self, state: PageState, chunks: int) -> None:
        """(Re)allocate a page's storage to exactly ``chunks`` chunks."""
        if self.config.allocation == "chunks":
            current = state.meta.size_chunks
            if chunks > current:
                state.meta.mpfns.extend(
                    self._allocate_chunks(chunks - current)
                )
            elif chunks < current:
                self.memory.allocator.free(state.meta.mpfns[chunks:])
                del state.meta.mpfns[chunks:]
            state.meta.size_chunks = chunks
        else:
            if chunks == state.meta.size_chunks and (
                chunks == 0 or state.region_base is not None
            ):
                return
            old_base = state.region_base
            if chunks:
                state.region_base = self._allocate_region(chunks * 512)
            else:
                state.region_base = None
            if old_base is not None:
                self.memory.allocator.free_region(old_base)
            state.meta.size_chunks = chunks
            state.meta.mpfns = (
                [state.region_base] if state.region_base is not None else []
            )

    def _allocate_chunks(self, count: int) -> List[int]:
        try:
            return self.memory.allocator.allocate(count)
        except OutOfMemoryError:
            self._relieve_pressure(count)
            return self.memory.allocator.allocate(count)

    def _allocate_region(self, size_bytes: int) -> int:
        try:
            return self.memory.allocator.allocate_region(size_bytes)
        except OutOfMemoryError:
            self._relieve_pressure(size_bytes // 512)
            return self.memory.allocator.allocate_region(size_bytes)

    def _relieve_pressure(self, chunks_needed: int) -> None:
        """Out of machine memory: balloon (§V-B), emergency-repack, or
        enter degraded mode and deny the request (docs/ROBUSTNESS.md)."""
        if self._in_emergency_repack:
            # A repack relocation under pressure must not recurse into
            # the relief machinery; the repack aborts cleanly instead.
            raise OutOfMemoryError(
                f"allocation pressure during emergency repack "
                f"({chunks_needed} chunks)"
            )
        if self.degraded_mode:
            # Already degraded: deny further compression growth without
            # re-running the relief machinery on every request.
            raise OutOfMemoryError(
                f"degraded mode: {chunks_needed} chunks denied"
            )
        if self.balloon is not None:
            try:
                self.balloon.relieve(chunks_needed)
                return
            except OutOfMemoryError:
                pass  # balloon came up short: try the repack sweep
        if self._emergency_repack(chunks_needed):
            return
        self._enter_degraded_mode(chunks_needed)
        raise OutOfMemoryError(
            f"machine memory exhausted ({chunks_needed} chunks needed); "
            "entering degraded mode"
        )

    def _can_allocate(self, chunks_needed: int) -> bool:
        """Can the allocator satisfy this request without relief?"""
        allocator = self.memory.allocator
        if self.config.allocation == "chunks":
            return allocator.free_chunks >= chunks_needed
        return (allocator.largest_free_region()
                >= chunks_needed * self.config.chunk_size)

    def _emergency_repack(self, chunks_needed: int) -> bool:
        """Sweep resident pages with the §IV-B4 repacker to free space.

        Runs when the balloon is absent or came up short; returns True
        once the allocator can satisfy the request.  Guarded against
        recursion: repack relocations that themselves hit the wall
        abort instead of re-entering the sweep.
        """
        if self._in_emergency_repack:
            return False
        self._in_emergency_repack = True
        try:
            swept = 0
            for page, state in list(self.pages.items()):
                if page == self._active_page or not state.meta.valid:
                    continue
                if self._maybe_repack(page, state):
                    swept += 1
                    if self._can_allocate(chunks_needed):
                        break
            if swept:
                self.stats.emergency_repacks += 1
                self.tracer.emit("emergency_repack", pages=swept,
                                 chunks_needed=chunks_needed)
            return self._can_allocate(chunks_needed)
        finally:
            self._in_emergency_repack = False

    def _enter_degraded_mode(self, chunks_needed: int) -> None:
        """Pool dry even after relief: start denying new compression."""
        if self.degraded_mode:
            return
        self.degraded_mode = True
        self.degraded_since = self.tracer.clock
        self.stats.alloc_exhaustions += 1
        self.tracer.emit("degraded_enter", chunks_needed=chunks_needed)

    def _maybe_exit_degraded(self) -> None:
        """Leave degraded mode once frees restore page-sized headroom."""
        if not self.degraded_mode:
            return
        if not self._can_allocate(self.config.max_chunks_per_page):
            return
        self.degraded_mode = False
        self.degraded_since = None
        self.stats.degraded_exits += 1
        self.tracer.emit("degraded_exit")

    def _deny_allocation(self, page: int, state: PageState) -> None:
        """Deny a storage request: park the page unbacked.

        The shadow payload and its sizes survive, so reads still return
        correct data (served via the zero/invalid metadata path) and a
        later write retries the allocation through first touch.  Only
        storage the corrupt-or-denied metadata provably owns is freed.
        """
        self._defensive_release(page, state)
        meta = state.meta
        meta.valid = False
        meta.zero = True
        meta.compressed = True
        meta.line_bins = [0] * self.config.lines_per_page
        meta.inflated_lines = []
        self.metadata_cache.invalidate(page)
        self.predictor.drop_page(page)
        self.stats.alloc_denials += 1
        self.tracer.emit("alloc_denied", page=page)

    def _release_storage(self, state: PageState) -> None:
        if self.config.allocation == "chunks":
            if state.meta.mpfns:
                self.memory.allocator.free(state.meta.mpfns)
        elif state.region_base is not None:
            self.memory.allocator.free_region(state.region_base)
        state.region_base = None
        state.meta.mpfns = []
        state.meta.size_chunks = 0
        state.meta.valid = False
        state.meta.zero = True
        state.meta.line_bins = [0] * self.config.lines_per_page
        state.meta.inflated_lines = []
        state.layout = None

    def _mpa_address(self, state: PageState, offset: int) -> int:
        """MPA byte address of ``offset`` within the page's allocation."""
        chunk_size = self.config.chunk_size
        if self.config.allocation == "chunks":
            index = offset // chunk_size
            mpfns = state.meta.mpfns
            if index >= len(mpfns):
                raise ValueError(
                    f"offset {offset} beyond allocation "
                    f"({len(mpfns)} chunks)"
                )
            return mpfns[index] * chunk_size + offset % chunk_size
        if state.region_base is None:
            raise ValueError("page has no region allocated")
        return state.region_base * chunk_size + offset

    def _blocks_for(self, state: PageState, offset: int, size: int) -> List[int]:
        """64-byte block indices (within the page allocation) of a range."""
        if size <= 0:
            return []
        first = offset // _BLOCK
        last = (offset + size - 1) // _BLOCK
        return list(range(first, last + 1))

    def _write_blocks(self, state: PageState, result: AccessResult,
                      offset: int, size: int,
                      category: AccessCategory) -> None:
        blocks = self._blocks_for(state, offset, size)
        for index, block in enumerate(blocks):
            if index > 0 and category is AccessCategory.DEMAND:
                self.stats.split_accesses += 1
                self.tracer.emit("split_access", extra=1)
                block_category = AccessCategory.SPLIT
            else:
                block_category = category
            result.accesses.append(
                MemAccess(AccessKind.WRITE, block_category,
                          self._mpa_address(state, block * _BLOCK),
                          critical=False)
            )

    def _remember_block(self, page: int, block: int) -> None:
        key = (page, block)
        self._burst_buffer[key] = True
        self._burst_buffer.move_to_end(key)
        while len(self._burst_buffer) > self._burst_capacity:
            self._burst_buffer.popitem(last=False)

    def _invalidate_burst(self, page: int) -> None:
        stale = [key for key in self._burst_buffer if key[0] == page]
        for key in stale:
            del self._burst_buffer[key]

    # ------------------------------------------------------------------
    # write-path events
    # ------------------------------------------------------------------

    def _first_touch(self, page: int, state: PageState,
                     result: AccessResult) -> None:
        """First non-zero write maps the OSPA page in MPA (§III)."""
        meta = state.meta
        meta.valid = True
        meta.zero = False
        self.metadata_cache.mark_dirty(page)
        if self.predictor.should_inflate(page):
            self._store_uncompressed(page, state, result, moved_lines=0)
            self.stats.predictor_inflations += 1
            self.tracer.emit("predictor_inflation", page=page)
        else:
            meta.compressed = True
            layout = self._best_layout(state.ideal_sizes)
            self._apply_layout(state, layout)
            self._allocate(state, self._alloc_chunks_for_layout(layout))
        self.metadata_cache.reshape(page, half=meta.is_uncompressed)
        line = next(
            i for i, size in enumerate(state.ideal_sizes) if size > 0
        )
        location = self._layout(state).locate(line)
        size = location.size if meta.compressed else self.config.line_size
        self._write_blocks(state, result, location.offset, max(size, 1),
                           AccessCategory.DEMAND)

    def _handle_line_overflow(self, page: int, state: PageState, line: int,
                              result: AccessResult,
                              incompressible: bool = True) -> None:
        meta = state.meta
        config = self.config
        self.metadata_cache.mark_dirty(page)

        # 1. Predictor says this page is streaming incompressible data:
        #    jump straight to uncompressed (§IV-B2).
        if incompressible and self.predictor.should_inflate(page):
            moved = self._page_data_blocks(state)
            self._store_uncompressed(page, state, result, moved_lines=moved)
            self.stats.predictor_inflations += 1
            self.tracer.emit("predictor_inflation", page=page)
            state.predictor_inflated = True
            self.stats.page_overflows += 1
            self.tracer.emit("page_overflow", page=page)
            self.predictor.on_page_overflow()
            address = self._mpa_address(state, line * config.line_size)
            result.accesses.append(
                MemAccess(AccessKind.WRITE, AccessCategory.DEMAND, address,
                          critical=False)
            )
            self._os_page_fault(result)
            return

        # 2. Inflation room with free space and a free pointer (§III).
        layout = self._layout(state)
        room_for_one = layout.inflation_base + layout.inflation_bytes + _BLOCK
        if (
            len(meta.inflated_lines) < config.max_inflation_pointers
            and room_for_one <= state.allocation_bytes
        ):
            self._inflate_line(state, line)
            location = self._layout(state).locate(line)
            self._write_blocks(state, result, location.offset, _BLOCK,
                               AccessCategory.DEMAND)
            return

        # 3. Dynamic Inflation Room Expansion: allocate one more chunk
        #    (chunk allocation only, §IV-B3).
        if (
            config.enable_ir_expansion
            and config.allocation == "chunks"
            and meta.size_chunks < config.max_chunks_per_page
            and len(meta.inflated_lines) < config.max_inflation_pointers
        ):
            self._allocate(state, meta.size_chunks + 1)
            self.stats.ir_expansions += 1
            self.tracer.emit("ir_expansion", page=page)
            # The page just grew a size bin — the cheap form of a page
            # overflow; the global predictor watches this pressure.
            if incompressible:
                self.predictor.on_page_overflow()
            self._inflate_line(state, line)
            location = self._layout(state).locate(line)
            self._write_blocks(state, result, location.offset, _BLOCK,
                               AccessCategory.DEMAND)
            return

        # 4. No room in the inflation room: the naive path (Fig. 1c).
        #    LinePack grows the line's slot in place, moving every line
        #    underneath it — the repeated movement that prediction and
        #    Dynamic IR Expansion exist to avoid.  LCP cannot grow one
        #    slot (all slots share the target), so it recompresses the
        #    whole page with a new target (Fig. 5c option 1).
        pointers_exhausted = (
            len(meta.inflated_lines) >= config.max_inflation_pointers
        )
        if self.config.packing == "lcp" or pointers_exhausted:
            # A full recompress also empties the inflation room, making
            # its pointers reusable.
            self._recompress(page, state, result, overflowing_line=line)
        else:
            new_bin = self.packer.bin_index(state.ideal_sizes[line])
            self._shift_grow(page, state, line, new_bin, result)

    def _shift_grow(self, page: int, state: PageState, line: int,
                    new_bin: int, result: AccessResult) -> None:
        """Grow one slot in place, shifting the lines underneath (§IV).

        This is the expensive naive behaviour the paper's predictor and
        Dynamic IR Expansion exist to avoid: every overflowing write
        moves the rest of the page, and streaming incompressible data
        pays it line after line as the page climbs the size bins.
        """
        meta = state.meta
        old_layout = self._layout(state)
        old_blocks = self._page_data_blocks(state)
        old_chunks = meta.size_chunks
        start = old_layout.slot_offsets[line] // _BLOCK

        meta.line_bins[line] = new_bin
        state.layout = None
        new_layout = self._layout(state)
        new_chunks = self._alloc_chunks_for_layout(new_layout)
        if self._should_store_raw(new_layout, new_chunks):
            # The page no longer fits compressed: store it raw.
            if new_chunks > old_chunks:
                self.stats.page_overflows += 1
                self.tracer.emit("page_overflow", page=page)
                self.predictor.on_page_overflow()
                self._os_page_fault(result)
            self._store_uncompressed(page, state, result,
                                     moved_lines=old_blocks)
            return
        if new_chunks > old_chunks:
            self.stats.page_overflows += 1
            self.tracer.emit("page_overflow", page=page)
            self.predictor.on_page_overflow()
            self._os_page_fault(result)
        self._allocate(state, max(new_chunks, old_chunks)
                       if self.config.allocation == "chunks" else new_chunks)
        new_blocks = (new_layout.total_bytes + _BLOCK - 1) // _BLOCK
        if self.config.allocation == "variable" and new_chunks != old_chunks:
            # Contiguous region: the whole page relocates.
            moved_reads, moved_writes = old_blocks, new_blocks
        else:
            moved_reads = max(0, old_blocks - start)
            moved_writes = max(1, new_blocks - start)
        traffic = moved_reads + moved_writes
        self.stats.overflow_accesses += traffic
        self.tracer.emit("overflow_traffic", page=page, extra=traffic)
        self._count_bulk(result, state, reads=moved_reads,
                         writes=moved_writes,
                         category=AccessCategory.OVERFLOW)

    def _inflate_line(self, state: PageState, line: int) -> None:
        state.meta.inflated_lines.append(line)
        state.layout = None

    def _page_data_blocks(self, state: PageState) -> int:
        """64-byte blocks currently holding page data (movement cost)."""
        layout = self._layout(state)
        return (layout.total_bytes + _BLOCK - 1) // _BLOCK


    def _should_store_raw(self, layout: PageLayout, chunks: int) -> bool:
        """Store the page uncompressed instead of using this layout?

        Only when compression buys nothing: the layout's slots are all
        raw-size anyway, or it cannot fit the 8-MPFN metadata budget
        (slots + inflation room beyond 8 chunks).  A compressed layout
        that happens to need a full-size allocation is kept compressed —
        prior-work LCP pages at the largest size class still serve
        compressed (and split-prone) line reads.
        """
        if chunks > self.config.max_chunks_per_page:
            return True
        return all(size >= self.config.line_size
                   for size in layout.slot_sizes)

    def _store_uncompressed(self, page: int, state: PageState,
                            result: AccessResult, moved_lines: int) -> None:
        """Switch the page to a full uncompressed 4 KB allocation."""
        meta = state.meta
        old_blocks = moved_lines
        meta.compressed = False
        raw_bin = len(self.config.line_bins) - 1
        meta.line_bins = [raw_bin] * self.config.lines_per_page
        meta.inflated_lines = []
        state.layout = None
        self._allocate(state, self.config.max_chunks_per_page)
        self.metadata_cache.reshape(page, half=True)
        if old_blocks:
            lines_with_data = sum(1 for d in state.data if d is not None)
            traffic = old_blocks + lines_with_data
            self.stats.overflow_accesses += traffic
            self.tracer.emit("overflow_traffic", page=page, extra=traffic)
            self._count_bulk(result, state, reads=old_blocks,
                             writes=lines_with_data,
                             category=AccessCategory.OVERFLOW)

    def _recompress(self, page: int, state: PageState, result: AccessResult,
                    overflowing_line: int) -> None:
        """Rewrite the page with fresh bins (line-overflow fallback)."""
        meta = state.meta
        old_blocks = self._page_data_blocks(state)
        old_chunks = meta.size_chunks
        layout = self._best_layout(state.ideal_sizes)
        new_chunks = self._alloc_chunks_for_layout(layout)
        if self._should_store_raw(layout, new_chunks):
            # Compression no longer pays for this page: go uncompressed.
            if new_chunks > old_chunks:
                self.stats.page_overflows += 1
                self.tracer.emit("page_overflow", page=page)
                self.predictor.on_page_overflow()
                self._os_page_fault(result)
            self._store_uncompressed(page, state, result,
                                     moved_lines=old_blocks)
            return
        self._apply_layout(state, layout)
        if new_chunks > old_chunks:
            self.stats.page_overflows += 1
            self.tracer.emit("page_overflow", page=page)
            self.predictor.on_page_overflow()
            self._os_page_fault(result)
        self._allocate(state, new_chunks)
        new_blocks = (layout.total_bytes + _BLOCK - 1) // _BLOCK
        if self.config.allocation == "variable" and new_chunks != old_chunks:
            # The whole page relocates to a new contiguous region.
            moved_reads, moved_writes = old_blocks, new_blocks
        else:
            # In-place shuffle: lines from the overflowing one onward move.
            start = layout.slot_offsets[overflowing_line] // _BLOCK
            moved_writes = max(1, new_blocks - start)
            moved_reads = max(0, old_blocks - start)
        traffic = moved_reads + moved_writes
        self.stats.overflow_accesses += traffic
        self.tracer.emit("overflow_traffic", page=page, extra=traffic)
        self._count_bulk(result, state, reads=moved_reads, writes=moved_writes,
                         category=AccessCategory.OVERFLOW)

    def _os_page_fault(self, result: AccessResult) -> None:
        """OS-aware systems take a page fault on every page overflow."""
        if not self.config.os_transparent:
            self.stats.os_page_faults += 1
            self.tracer.emit("os_page_fault")

    def _apply_layout(self, state: PageState, layout: PageLayout) -> None:
        state.meta.line_bins = [
            self.packer.bin_index(size) for size in layout.slot_sizes
        ]
        state.meta.inflated_lines = list(layout.inflated_lines)
        state.layout = layout

    def _count_bulk(self, result: AccessResult, state: PageState,
                    reads: int, writes: int,
                    category: AccessCategory) -> None:
        """Emit bulk movement accesses (page shuffles, repacks)."""
        allocation = max(state.allocation_bytes, _BLOCK)
        for i in range(reads):
            offset = (i * _BLOCK) % allocation
            result.accesses.append(
                MemAccess(AccessKind.READ, category,
                          self._mpa_address(state, offset), critical=False)
            )
        for i in range(writes):
            offset = (i * _BLOCK) % allocation
            result.accesses.append(
                MemAccess(AccessKind.WRITE, category,
                          self._mpa_address(state, offset), critical=False)
            )

    # ------------------------------------------------------------------
    # dynamic repacking (§IV-B4)
    # ------------------------------------------------------------------

    def _maybe_repack(self, page: int, state: PageState) -> bool:
        """Repack on metadata-cache eviction if ≥ 1 chunk is reclaimable."""
        meta = state.meta
        if not meta.valid or meta.zero:
            return False
        if all(size == 0 for size in state.ideal_sizes):
            # The page became all-zero: drop its storage entirely.
            if meta.size_chunks == 0:
                return False
            self._allocate(state, 0)
            meta.zero = True
            meta.compressed = True
            meta.line_bins = [0] * self.config.lines_per_page
            meta.inflated_lines = []
            state.layout = None
            self.stats.repack_events += 1
            self.tracer.emit("repack", page=page, extra=0, zero_drop=True)
            self.predictor.on_page_shrink()
            return True
        layout = self._best_layout(state.ideal_sizes)
        new_chunks = self._alloc_chunks_for_layout(layout)
        if new_chunks >= meta.size_chunks:
            return False
        old_blocks = self._page_data_blocks(state) if meta.compressed else (
            self.config.page_size // _BLOCK
        )
        new_blocks = (layout.total_bytes + _BLOCK - 1) // _BLOCK
        was_uncompressed = not meta.compressed
        old_bins = list(meta.line_bins)
        old_inflated = list(meta.inflated_lines)
        old_layout = state.layout
        meta.compressed = True
        self._apply_layout(state, layout)
        try:
            self._allocate(state, new_chunks)
        except OutOfMemoryError:
            # Variable allocation relocates into a new region before
            # freeing the old one; under exhaustion there may be nothing
            # to relocate into.  A repack is an optimization — abort it
            # and restore the page's previous shape.
            meta.compressed = not was_uncompressed
            meta.line_bins = old_bins
            meta.inflated_lines = old_inflated
            state.layout = old_layout
            return False
        if was_uncompressed and self.metadata_cache.contains(page):
            self.metadata_cache.reshape(page, half=False)
        traffic = old_blocks + new_blocks
        self.stats.repack_events += 1
        self.stats.repack_accesses += traffic
        self.tracer.emit("repack", page=page, extra=traffic)
        self.predictor.on_page_shrink()
        for index in range(traffic):
            kind = AccessKind.READ if index < old_blocks else AccessKind.WRITE
            self._pending.append(
                MemAccess(kind, AccessCategory.REPACK,
                          self._mpa_address(state, 0), critical=False)
            )
        return True

    # ------------------------------------------------------------------

    def _finish(self, result: AccessResult) -> AccessResult:
        if self._pending:
            result.accesses.extend(self._pending)
            self._pending = []
        self._maybe_exit_degraded()
        self._sanitize_op(self._active_page)
        return result

    # ------------------------------------------------------------------
    # fault detection and recovery (docs/ROBUSTNESS.md)
    # ------------------------------------------------------------------

    def _sanitize_op(self, page: Optional[int]) -> None:
        """Post-op sanitizer hook; repairs new violations in recover mode."""
        if self.sanitizer is None or self._recovering:
            return
        self.sanitizer.after_op(self, page)
        if self.recover_mode:
            self._handle_new_violations()

    def _sanitize_all(self) -> None:
        """Full-sweep sanitizer hook (flush paths); repairs in recover mode."""
        if self.sanitizer is None or self._recovering:
            return
        self.sanitizer.check_all(self)
        if self.recover_mode:
            self._handle_new_violations()

    def scrub(self, page: Optional[int] = None) -> int:
        """On-demand sanitizer sweep, modelling a background scrubber.

        Checks one page (plus the allocator) or, with ``page=None``,
        everything; in ``sanitize="recover"`` mode detected corruption
        is repaired.  Returns the number of new violations observed
        (0 when no sanitizer is attached).
        """
        if self.sanitizer is None:
            return 0
        before = len(self.sanitizer.violations)
        if page is None:
            self._sanitize_all()
        else:
            self._sanitize_op(page)
        return len(self.sanitizer.violations) - before

    def _handle_new_violations(self) -> None:
        """Dispatch recovery for violations recorded since the last op.

        Each afflicted structure gets one recovery attempt per batch:
        corrupted pages fall back to decompress-and-mark-uncompressed,
        corrupt metadata-cache entries are invalidated, allocator book
        corruption is repaired, orphaned storage is reclaimed.  A
        re-check afterwards reports anything that persisted.
        """
        sanitizer = self.sanitizer
        if len(sanitizer.violations) <= self._violation_cursor:
            return
        new = sanitizer.violations[self._violation_cursor:]
        self._violation_cursor = len(sanitizer.violations)
        self._recovering = True
        try:
            pages: List[int] = []
            mdcache_pages: List[int] = []
            books = leak = False
            for violation in new:
                if violation.invariant == "mdcache-desync":
                    if violation.page not in mdcache_pages:
                        mdcache_pages.append(violation.page)
                elif violation.invariant == "alloc-books":
                    books = True
                elif violation.page is None:
                    leak = True     # alloc-leak is the page-less invariant
                elif violation.page not in pages:
                    pages.append(violation.page)
            for page in mdcache_pages:
                self.stats.faults_detected += 1
                self.tracer.emit("fault_detected", page=page,
                                 invariants=["mdcache-desync"])
                self._recover_mdcache_entry(page)
            if books:
                self.stats.faults_detected += 1
                self.tracer.emit("fault_detected", invariants=["alloc-books"])
                self._recover_allocator_books()
            for page in pages:
                self.stats.faults_detected += 1
                self.tracer.emit(
                    "fault_detected", page=page,
                    invariants=sorted({v.invariant for v in new
                                       if v.page == page}))
                self._recover_page(page)
            if leak:
                self.stats.faults_detected += 1
                self.tracer.emit("fault_detected", invariants=["alloc-leak"])
                self._recover_leaked_storage()
            self._verify_recovery(pages)
        finally:
            self._recovering = False
            self._violation_cursor = len(self.sanitizer.violations)

    def _verify_recovery(self, pages: List[int]) -> None:
        """Re-check recovered pages and the allocator books once.

        Recovery gets one attempt per violation batch — a residual
        violation is reported (``recovery_failed``), not retried, so a
        fault the fallback cannot absorb can never loop the controller.
        """
        sanitizer = self.sanitizer
        before = len(sanitizer.violations)
        for page in pages:
            state = self.pages.get(page)
            if state is not None:
                sanitizer.check_page(self, page, state)
        sanitizer.check_allocator(self)
        residual = sanitizer.violations[before:]
        if residual:
            self.stats.recovery_failures += len(residual)
            self.tracer.emit(
                "recovery_failed",
                invariants=sorted({v.invariant for v in residual}))

    def _recover_page(self, page: int) -> None:
        """Detected page corruption: rebuild the page uncompressed.

        The decompress-and-mark-uncompressed fallback: defensively
        release whatever storage the corrupt metadata provably owns,
        recompute line sizes from the shadow payload, and re-store the
        page as a plain raw allocation.  If even that allocation is
        denied, the page parks unbacked via the degraded-mode path.
        """
        state = self.pages.get(page)
        if state is None:
            return
        self._defensive_release(page, state)
        meta = state.meta
        sizes = [0 if data is None else self._sizes.size_bytes(data)
                 for data in state.data]
        state.ideal_sizes = sizes
        if all(size == 0 for size in sizes):
            # Only zero lines survived: the page reverts to a zero page.
            meta.valid = False
            meta.zero = True
            meta.compressed = True
            meta.line_bins = [0] * self.config.lines_per_page
            meta.inflated_lines = []
        else:
            meta.valid = True
            meta.zero = False
            meta.compressed = False
            raw_bin = len(self.config.line_bins) - 1
            meta.line_bins = [raw_bin] * self.config.lines_per_page
            meta.inflated_lines = []
            try:
                self._allocate(state, self.config.max_chunks_per_page)
            except OutOfMemoryError:
                self._deny_allocation(page, state)
                return
        self.metadata_cache.invalidate(page)
        self.predictor.drop_page(page)
        self.stats.recoveries += 1
        self.tracer.emit("recovery_uncompressed", page=page)

    def _defensive_release(self, page: int, state: PageState) -> None:
        """Free only the storage this page's metadata *provably* owns.

        Corrupt MPFNs or region pointers cannot be trusted: freeing a
        chunk another page owns would spread the corruption.  A chunk
        is released only if the allocator has it allocated and no other
        page references it; anything left over is the leak-reclaim
        sweep's job.
        """
        allocator = self.memory.allocator
        if self.config.allocation == "chunks":
            others: set = set()
            for other, other_state in self.pages.items():
                if other != page:
                    others.update(other_state.meta.mpfns)
            owned = allocator.owned_chunks()
            to_free = [c for c in dict.fromkeys(state.meta.mpfns)
                       if c in owned and c not in others]
            if to_free:
                allocator.free(to_free)
        else:
            base = state.region_base
            if base is not None and base in allocator.owned_regions():
                shared = any(
                    other_state.region_base == base
                    for other, other_state in self.pages.items()
                    if other != page
                )
                if not shared:
                    allocator.free_region(base)
        state.meta.mpfns = []
        state.meta.size_chunks = 0
        state.region_base = None
        state.layout = None

    def _recover_mdcache_entry(self, page: int) -> None:
        """Corrupt metadata-cache entry: invalidate for a clean refetch."""
        self.metadata_cache.invalidate(page)
        self.stats.recoveries += 1
        self.tracer.emit("recovery_mdcache", page=page)

    def _recover_allocator_books(self) -> None:
        """Free-list corruption: drop entries the allocated books refute."""
        repaired = self.memory.allocator.repair_books()
        self.stats.recoveries += 1
        self.tracer.emit("recovery_alloc_books", entries=repaired)

    def _recover_leaked_storage(self) -> None:
        """Reclaim storage the allocator holds but no page references."""
        allocator = self.memory.allocator
        if self.config.allocation == "chunks":
            referenced: set = set()
            for state in self.pages.values():
                referenced.update(state.meta.mpfns)
            leaked = [c for c in allocator.owned_chunks()
                      if c not in referenced]
            if leaked:
                allocator.free(leaked)
        else:
            bases = {state.region_base for state in self.pages.values()
                     if state.region_base is not None}
            leaked = [b for b in allocator.owned_regions()
                      if b not in bases]
            for base in leaked:
                allocator.free_region(base)
        self.stats.recoveries += 1
        self.tracer.emit("recovery_leak_reclaim", regions=len(leaked))
