"""Per-OSPA-page translation metadata (paper §III, Fig. 3).

Compresso keeps one 64-byte metadata entry per OSPA page in a dedicated
MPA region (1.6% storage overhead).  An entry holds:

* a control section — valid / zero / compressed flags, the page size,
  and the tracked free space that drives repacking decisions;
* up to 8 machine page-frame numbers (MPFNs) pointing at the 512-byte
  chunks that make up the compressed page;
* 64 x 2-bit encoded line sizes (16 bytes);
* 17 six-bit inflation pointers plus a six-bit count of inflated lines.

``PageMetadata`` is the working (object) form used by the controller;
``encode``/``decode`` prove the layout actually fits the 64-byte budget
bit-for-bit, which the test suite checks for every reachable state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..compression.bitstream import BitReader, BitWriter, Bits
from .config import CompressoConfig

#: Field widths (bits).  8 MPFNs of 28 bits address 2^28 chunks of 512 B
#: = 128 TB of machine memory, comfortably above any DDR4 system.
_FLAG_BITS = 3          # valid, zero, compressed
_SIZE_BITS = 4          # page size index (0..8 chunks)
_FREE_BITS = 7          # tracked free space in 64 B units (0..64)
_MPFN_BITS = 28
_N_MPFNS = 8
_INFLATION_PTR_BITS = 6
_N_INFLATION_PTRS = 17
_INFLATION_COUNT_BITS = 6
_LINE_BIN_BITS = 2
_N_LINES = 64

#: Total must fit in a 64-byte entry.
TOTAL_BITS = (
    _FLAG_BITS
    + _SIZE_BITS
    + _FREE_BITS
    + _N_MPFNS * _MPFN_BITS
    + _N_INFLATION_PTRS * _INFLATION_PTR_BITS
    + _INFLATION_COUNT_BITS
    + _N_LINES * _LINE_BIN_BITS
)
assert TOTAL_BITS <= 64 * 8, f"metadata entry overflows 64 B: {TOTAL_BITS} bits"

#: The half-entry optimization (§IV-B5) caches only the first 32 bytes
#: for uncompressed pages: flags, size, free space and the MPFNs fit in
#: the first half; line sizes are implicitly 64 B and there are no
#: inflated lines.
HALF_ENTRY_BITS = _FLAG_BITS + _SIZE_BITS + _FREE_BITS + _N_MPFNS * _MPFN_BITS
assert HALF_ENTRY_BITS <= 32 * 8, f"half entry overflows 32 B: {HALF_ENTRY_BITS} bits"


@dataclass
class PageMetadata:
    """Decoded metadata for one OSPA page."""

    valid: bool = False
    zero: bool = True                 # an untouched OSPA page reads as zeros
    compressed: bool = True
    size_chunks: int = 0              # allocated 512 B chunks (0..8)
    free_space: int = 0               # reclaimable space, 64 B units
    mpfns: List[int] = field(default_factory=list)
    line_bins: List[int] = field(default_factory=lambda: [0] * _N_LINES)
    inflated_lines: List[int] = field(default_factory=list)

    def copy(self) -> "PageMetadata":
        return PageMetadata(
            valid=self.valid,
            zero=self.zero,
            compressed=self.compressed,
            size_chunks=self.size_chunks,
            free_space=self.free_space,
            mpfns=list(self.mpfns),
            line_bins=list(self.line_bins),
            inflated_lines=list(self.inflated_lines),
        )

    # -- invariant checks used throughout the tests -----------------------

    def check(self, config: CompressoConfig) -> None:
        """Raise if any structural invariant is violated."""
        if self.size_chunks < 0 or self.size_chunks > config.max_chunks_per_page:
            raise ValueError(f"size_chunks out of range: {self.size_chunks}")
        if len(self.mpfns) != self.size_chunks:
            raise ValueError(
                f"{len(self.mpfns)} MPFNs for {self.size_chunks} chunks"
            )
        if len(self.line_bins) != config.lines_per_page:
            raise ValueError(f"expected {config.lines_per_page} line bins")
        n_bins = len(config.line_bins)
        if any(b < 0 or b >= n_bins for b in self.line_bins):
            raise ValueError("line bin index out of range")
        if len(self.inflated_lines) > config.max_inflation_pointers:
            raise ValueError(
                f"{len(self.inflated_lines)} inflated lines exceed "
                f"{config.max_inflation_pointers} pointers"
            )
        if len(set(self.inflated_lines)) != len(self.inflated_lines):
            raise ValueError("duplicate inflation pointers")
        if self.zero and self.size_chunks:
            raise ValueError("zero page must have no storage")

    @property
    def is_uncompressed(self) -> bool:
        return self.valid and not self.compressed

    # -- bit-exact 64-byte encoding ---------------------------------------

    def encode(self) -> Bits:
        """Pack into the 64-byte on-DRAM layout."""
        writer = BitWriter()
        writer.write(int(self.valid), 1)
        writer.write(int(self.zero), 1)
        writer.write(int(self.compressed), 1)
        writer.write(self.size_chunks, _SIZE_BITS)
        writer.write(self.free_space, _FREE_BITS)
        for i in range(_N_MPFNS):
            writer.write(self.mpfns[i] if i < len(self.mpfns) else 0, _MPFN_BITS)
        writer.write(len(self.inflated_lines), _INFLATION_COUNT_BITS)
        for i in range(_N_INFLATION_PTRS):
            line = self.inflated_lines[i] if i < len(self.inflated_lines) else 0
            writer.write(line, _INFLATION_PTR_BITS)
        for bin_index in self.line_bins:
            writer.write(bin_index, _LINE_BIN_BITS)
        return writer.to_bits()

    @classmethod
    def decode(cls, bits: Bits) -> "PageMetadata":
        """Inverse of :meth:`encode`."""
        reader = BitReader(bits)
        valid = bool(reader.read(1))
        zero = bool(reader.read(1))
        compressed = bool(reader.read(1))
        size_chunks = reader.read(_SIZE_BITS)
        free_space = reader.read(_FREE_BITS)
        mpfns = [reader.read(_MPFN_BITS) for _ in range(_N_MPFNS)][:size_chunks]
        n_inflated = reader.read(_INFLATION_COUNT_BITS)
        pointers = [reader.read(_INFLATION_PTR_BITS) for _ in range(_N_INFLATION_PTRS)]
        line_bins = [reader.read(_LINE_BIN_BITS) for _ in range(_N_LINES)]
        return cls(
            valid=valid,
            zero=zero,
            compressed=compressed,
            size_chunks=size_chunks,
            free_space=free_space,
            mpfns=mpfns,
            line_bins=line_bins,
            inflated_lines=pointers[:n_inflated],
        )


def metadata_region_bytes(ospa_pages: int, config: CompressoConfig) -> int:
    """Size of the dedicated metadata region (one entry per OSPA page)."""
    return ospa_pages * config.metadata_entry_bytes


def metadata_overhead_fraction(config: CompressoConfig) -> float:
    """Metadata storage overhead relative to advertised capacity (~1.6%)."""
    return config.metadata_entry_bytes / config.page_size
