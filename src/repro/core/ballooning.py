"""OS-transparent out-of-memory handling via ballooning (paper §V-B, Fig. 8).

When poorly-compressing data exhausts machine memory, prior systems
raise an exception to a compression-aware OS.  Compresso instead reuses
the memory-ballooning facility every modern OS already ships for
virtualization: a driver "inflates" by demanding pages from the OS
(which pages out cold data to satisfy it), then tells the hardware the
page numbers it got.  The controller marks those OSPA pages invalid —
they need no MPA storage — relieving the pressure with zero OS changes.

``BalloonDriver`` models that driver plus the slice of guest-OS paging
behaviour it relies on: the OS hands over free pages first, then cold
(least-recently-touched) pages, paying a page-out cost for dirty ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Set

from ..memory.allocator import OutOfMemoryError
from ..obs.tracer import NULL_TRACER


@dataclass
class BalloonStats:
    inflations: int = 0
    pages_reclaimed: int = 0
    pages_paged_out: int = 0       # cold pages the guest had to swap out
    deflations: int = 0
    pages_protected: int = 0       # reclaim candidates skipped as protected


class BalloonDriver:
    """Compresso's balloon driver + the guest OS allocation behaviour.

    Args:
        controller: the compressed-memory controller to relieve.
        os_pages: an object with ``take_free_page()`` returning a free
            OSPA page number or ``None``, and ``take_cold_page()``
            returning a (page, dirty) tuple or ``None`` — normally a
            :class:`repro.osmodel.vm.VirtualMemory`.
        safety_chunks: extra chunks to free beyond the immediate need,
            so the balloon is not re-entered on every allocation.
    """

    def __init__(self, controller, os_pages, safety_chunks: int = 64) -> None:
        self.controller = controller
        self.os_pages = os_pages
        self.safety_chunks = safety_chunks
        self.stats = BalloonStats()
        self._held_pages: List[int] = []
        #: OSPA pages the balloon must not invalidate (repro.pressure
        #: shields high-priority tenants' resident sets this way,
        #: docs/PRESSURE.md).  A protected page taken from the OS is
        #: still held, like the in-flight ``_active_page``, but its
        #: hardware state is left untouched.
        self._protected: Set[int] = set()
        controller.balloon = self

    @property
    def _tracer(self):
        """The controller's tracer (resolved per call, so a tracer
        attached after construction is still observed)."""
        return getattr(self.controller, "tracer", NULL_TRACER)

    def relieve(self, chunks_needed: int) -> None:
        """Free at least ``chunks_needed`` chunks of machine memory."""
        target = chunks_needed + self.safety_chunks
        freed = 0
        self.stats.inflations += 1
        self.controller.stats.balloon_inflations += 1
        self._tracer.emit("balloon_inflation", chunks_needed=chunks_needed)
        while freed < target:
            page = self.os_pages.take_free_page()
            dirty = False
            if page is None:
                taken = self.os_pages.take_cold_page()
                if taken is None:
                    break
                page, dirty = taken
                if dirty:
                    self.stats.pages_paged_out += 1
                    self._tracer.emit("balloon_page_out", page=page)
            freed += self._reclaim(page)
        if freed < chunks_needed:
            raise OutOfMemoryError(
                f"balloon could not free {chunks_needed} chunks "
                f"(got {freed}); guest memory fully hot"
            )

    def deflate(self, pages: Optional[int] = None) -> List[int]:
        """Return held pages to the guest OS when pressure eases."""
        count = len(self._held_pages) if pages is None else pages
        released, self._held_pages = (
            self._held_pages[:count],
            self._held_pages[count:],
        )
        if released:
            self.stats.deflations += 1
            self._tracer.emit("balloon_deflate", extra=0,
                              pages=len(released))
        return released

    @property
    def held_pages(self) -> int:
        return len(self._held_pages)

    def protect(self, pages: Iterable[int]) -> None:
        """Shield OSPA pages from reclaim (per-tenant priority)."""
        self._protected.update(pages)

    def unprotect(self, pages: Optional[Iterable[int]] = None) -> None:
        """Lift protection (all pages when ``pages`` is None)."""
        if pages is None:
            self._protected.clear()
        else:
            self._protected.difference_update(pages)

    @property
    def protected_pages(self) -> int:
        return len(self._protected)

    def _reclaim(self, page: int) -> int:
        """Invalidate one OSPA page in hardware; returns chunks freed."""
        self._held_pages.append(page)
        if page == getattr(self.controller, "_active_page", None):
            # The controller is mid-operation on this very page (the
            # balloon fired from inside its allocator); hold the page
            # for the OS but leave the hardware state untouched.
            return 0
        if page in self._protected:
            self.stats.pages_protected += 1
            self._tracer.emit("balloon_protect_skip", page=page)
            return 0
        state = self.controller.pages.get(page)
        chunks = state.meta.size_chunks if state is not None else 0
        self.controller.free_page(page)
        self.stats.pages_reclaimed += 1
        self.controller.stats.balloon_pages_reclaimed += 1
        self._tracer.emit("balloon_reclaim", page=page, chunks=chunks)
        return chunks


class FreeListOSModel:
    """Minimal stand-in for the guest OS used in unit tests.

    Real experiments use :class:`repro.osmodel.vm.VirtualMemory`; this
    class serves the balloon from explicit lists.
    """

    def __init__(self, free_pages: List[int],
                 cold_pages: Optional[List[tuple]] = None) -> None:
        self._free = list(free_pages)
        self._cold = list(cold_pages or [])

    def take_free_page(self) -> Optional[int]:
        return self._free.pop(0) if self._free else None

    def take_cold_page(self) -> Optional[tuple]:
        return self._cold.pop(0) if self._cold else None
