"""Compresso core: the paper's primary contribution.

The compressed-memory controller (OSPA→MPA translation, packing,
inflation room, prediction, repacking) and all of its building blocks.
DESIGN.md maps each module to the paper's sections; the fault-recovery
behaviour is documented in docs/ROBUSTNESS.md.
"""

from ..memory.allocator import (
    AllocatorStats,
    ChunkAllocator,
    OutOfMemoryError,
    VariableAllocator,
)
from .ballooning import BalloonDriver, BalloonStats, FreeListOSModel
from .config import (
    ALIGNMENT_FRIENDLY_LINE_BINS,
    CHUNK_PAGE_SIZES,
    EIGHT_LINE_BINS,
    PRIOR_WORK_LINE_BINS,
    VARIABLE_PAGE_SIZES,
    CompressoConfig,
    compresso_config,
    lcp_align_config,
    lcp_config,
)
from .controller import CompressedMemoryController, PageState
from .lcp import LCPPack
from .linepack import LinePack, split_access_fraction
from .metadata import (
    HALF_ENTRY_BITS,
    TOTAL_BITS,
    PageMetadata,
    metadata_overhead_fraction,
    metadata_region_bytes,
)
from .metadata_cache import MetadataCache, MetadataCacheStats
from .packing import LineLocation, PageLayout, blocks_spanned, choose_bin
from .predictor import PageOverflowPredictor, SaturatingCounter
from .stats import ControllerStats

__all__ = [
    "ALIGNMENT_FRIENDLY_LINE_BINS",
    "AllocatorStats",
    "BalloonDriver",
    "BalloonStats",
    "CHUNK_PAGE_SIZES",
    "ChunkAllocator",
    "CompressedMemoryController",
    "CompressoConfig",
    "ControllerStats",
    "EIGHT_LINE_BINS",
    "FreeListOSModel",
    "HALF_ENTRY_BITS",
    "LCPPack",
    "LineLocation",
    "LinePack",
    "MetadataCache",
    "MetadataCacheStats",
    "OutOfMemoryError",
    "PRIOR_WORK_LINE_BINS",
    "PageLayout",
    "PageMetadata",
    "PageOverflowPredictor",
    "PageState",
    "SaturatingCounter",
    "TOTAL_BITS",
    "VARIABLE_PAGE_SIZES",
    "VariableAllocator",
    "blocks_spanned",
    "choose_bin",
    "compresso_config",
    "lcp_align_config",
    "lcp_config",
    "metadata_overhead_fraction",
    "metadata_region_bytes",
    "split_access_fraction",
]
