"""Energy model for compressed-memory systems (paper §VII-C, Fig. 12).

The paper's energy story has three parts:

* **DRAM energy** — dominated by access count: compression removes
  demand accesses (zero lines, prefetch) but adds movement traffic
  (splits, overflows, metadata misses), plus a background term
  proportional to runtime.
* **Core energy** — proportional to runtime (slowdown costs energy).
* **Memory-controller additions** — the BPC compressor/decompressor
  (7 mW active, <0.4% of a DDR4-2666 channel's active power) and the
  96 KB metadata cache (0.08 nJ/access, <0.8% of a DRAM read).

Constants follow the paper's reported synthesis numbers plus standard
DDR4 access energies; results are reported *relative to the
uncompressed system*, as in Fig. 12.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.stats import ControllerStats


@dataclass(frozen=True)
class EnergyConstants:
    """Energy per event / power levels (from §VII-C and DDR4 datasheets)."""

    dram_read_nj: float = 10.0        # 64 B read (activate+IO amortized)
    dram_write_nj: float = 11.0
    dram_background_mw: float = 150.0  # per channel, always-on
    core_active_w: float = 12.0        # one 3 GHz OOO core
    bpc_active_mw: float = 7.0         # paper: 40 nm synthesis @800 MHz
    bpc_access_nj: float = 0.00875     # 7 mW / 800 MHz per line
    metadata_cache_access_nj: float = 0.08  # paper: 8-way 96 KB

    def sanity_fractions(self) -> dict:
        """The paper's two headline overhead claims (§VII-C)."""
        dram_channel_active_mw = 2000.0  # ~2 W active DDR4-2666 channel
        return {
            "bpc_vs_channel_power": self.bpc_active_mw / dram_channel_active_mw,
            "metadata_vs_dram_read": self.metadata_cache_access_nj
            / self.dram_read_nj,
        }


@dataclass
class EnergyBreakdown:
    """Absolute energy (nJ) for one run."""

    dram_dynamic_nj: float
    dram_background_nj: float
    core_nj: float
    compressor_nj: float
    metadata_cache_nj: float

    @property
    def dram_nj(self) -> float:
        return self.dram_dynamic_nj + self.dram_background_nj

    @property
    def total_nj(self) -> float:
        return (self.dram_nj + self.core_nj + self.compressor_nj
                + self.metadata_cache_nj)


class EnergyModel:
    """Computes Fig. 12-style energy from simulation outputs."""

    def __init__(self, constants: EnergyConstants = EnergyConstants(),
                 cpu_freq_ghz: float = 3.0) -> None:
        self.constants = constants
        self.cpu_freq_ghz = cpu_freq_ghz

    def _seconds(self, cycles: int) -> float:
        return cycles / (self.cpu_freq_ghz * 1e9)

    def evaluate(self, cycles: int, dram_reads: int, dram_writes: int,
                 stats: ControllerStats = None) -> EnergyBreakdown:
        """Energy for one run.

        ``stats`` is None for the uncompressed baseline (no compressor
        or metadata-cache activity).
        """
        k = self.constants
        seconds = self._seconds(cycles)
        dram_dynamic = (dram_reads * k.dram_read_nj
                        + dram_writes * k.dram_write_nj)
        dram_background = k.dram_background_mw * 1e-3 * seconds * 1e9
        core = k.core_active_w * seconds * 1e9

        compressor = metadata = 0.0
        if stats is not None:
            compressed_ops = (
                stats.demand_accesses - stats.zero_line_reads
                - stats.zero_line_writes
            )
            compressor = max(0, compressed_ops) * k.bpc_access_nj
            lookups = stats.metadata_hits + stats.metadata_misses
            metadata = lookups * k.metadata_cache_access_nj
        return EnergyBreakdown(
            dram_dynamic_nj=dram_dynamic,
            dram_background_nj=dram_background,
            core_nj=core,
            compressor_nj=compressor,
            metadata_cache_nj=metadata,
        )

    def relative(self, run: EnergyBreakdown,
                 baseline: EnergyBreakdown) -> dict:
        """Fig. 12 metrics: DRAM and core energy relative to baseline."""
        return {
            "dram": run.dram_nj / baseline.dram_nj,
            "core": run.core_nj / baseline.core_nj,
            "total": run.total_nj / baseline.total_nj,
        }
