"""Area and circuit-latency models (paper §VII-D and §VII-E).

Encodes the paper's synthesis results (40 nm TSMC, 800 MHz):

* BPC compressor unit: 43 Kµm², ~61K NAND2-equivalent gates;
* 96 KB single-port metadata cache: ~100 Kµm²;
* the LinePack offset adder: summing up to 63 two-bit-encoded line
  sizes.  Shifting the 0/8/32/64 bins right by 3 bits reduces them to
  0/1/4/8, so the circuit is a 63-input 4-bit adder — under 1.5K NAND
  gates, 38 NAND delays naively, 32 with input-aware optimization;
  DDR4-2666 allows ~30 gate delays per cycle, and partial overlap with
  the metadata-cache lookup leaves one visible cycle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

#: Paper-reported synthesis numbers (§VII-D).
BPC_AREA_UM2 = 43_000.0
BPC_GATES_NAND2 = 61_000
METADATA_CACHE_AREA_UM2 = 100_000.0
GATE_DELAYS_PER_CYCLE_DDR4_2666 = 30


@dataclass(frozen=True)
class AdderModel:
    """Gate-level estimate for the LinePack offset calculation (§VII-E)."""

    n_inputs: int = 63
    input_bits: int = 4

    @property
    def output_bits(self) -> int:
        # Sum of 63 4-bit values fits in 4 + ceil(log2(63)) = 10 bits.
        return self.input_bits + math.ceil(math.log2(self.n_inputs))

    @property
    def nand_gates(self) -> int:
        """Carry-save tree: ~5 NAND2 per full adder, one FA per reduced bit."""
        # A Wallace-style tree over n inputs needs about (n-2) rows of
        # full adders per output column; 63 x 4-bit with growth to 10
        # bits lands comfortably under 1.5K gates, as the paper states.
        full_adders = (self.n_inputs - 2) * self.input_bits
        return 5 * full_adders + 10 * self.output_bits

    @property
    def gate_delays_naive(self) -> int:
        """Balanced-tree reduction depth plus the final carry propagate."""
        # Each 3:2 compressor layer costs 2 NAND delays; log_{3/2}(63)
        # layers, then a ~10-bit carry-propagate adder (~2 delays/bit).
        layers = math.ceil(math.log(self.n_inputs / 2) / math.log(1.5))
        return 2 * layers + 2 * self.output_bits

    @property
    def gate_delays_optimized(self) -> int:
        """Inputs are 0/1/4/8 only: the low two bits are constant zero
        for the 4/8 values, letting several layers collapse (§VII-E)."""
        return self.gate_delays_naive - 6

    def visible_cycles(self, overlap_with_metadata_lookup: bool = True) -> int:
        """Cycles exposed on the access path at DDR4-2666."""
        delays = self.gate_delays_optimized
        cycles = math.ceil(delays / GATE_DELAYS_PER_CYCLE_DDR4_2666)
        if overlap_with_metadata_lookup:
            cycles = max(1, cycles - 1)
        return cycles


def offset_adder_for_bins(line_bins: Sequence[int]) -> AdderModel:
    """Adder shape for a bin set: widths shrink by the common shift."""
    nonzero = [b for b in line_bins if b]
    shift = min((b & -b).bit_length() - 1 for b in nonzero)
    max_addend = max(nonzero) >> shift
    return AdderModel(n_inputs=63, input_bits=max(1, max_addend.bit_length()))


@dataclass(frozen=True)
class AreaReport:
    """§VII-D summary for one Compresso instance."""

    bpc_um2: float = BPC_AREA_UM2
    metadata_cache_um2: float = METADATA_CACHE_AREA_UM2

    @property
    def total_um2(self) -> float:
        return self.bpc_um2 + self.metadata_cache_um2

    @property
    def total_mm2(self) -> float:
        return self.total_um2 / 1e6
