"""Small shared utilities."""

from __future__ import annotations

import hashlib


def stable_seed(*key) -> int:
    """Deterministic 31-bit seed from a structured key.

    Python's built-in ``hash`` is randomized per process for strings,
    which would make traces differ between runs; every stochastic
    component derives its RNG seed through this helper instead.
    """
    digest = hashlib.sha256(
        "/".join(str(part) for part in key).encode()
    ).digest()
    return (int.from_bytes(digest[:4], "big") & 0x7FFFFFFF) or 1
