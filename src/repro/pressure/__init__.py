"""Memory-pressure resilience: multi-tenant overload control (docs/PRESSURE.md).

Compresso's pragmatic claim is that a compressed-memory system must
survive compressibility collapse gracefully — balloon away the
capacity it over-promised instead of crashing the OS (§V-B).  This
package makes that ladder a tested, multi-tenant subsystem:

* :class:`PressureController` layers admission control (token-bucket
  gate), priority-class request shedding, per-tenant budget
  enforcement and a degraded-mode watchdog over the existing
  :class:`~repro.core.controller.CompressedMemoryController` +
  :class:`~repro.core.ballooning.BalloonDriver` stack.  The
  degradation ladder runs balloon → emergency repack → degraded mode
  → per-tenant page-out, every transition traced via registered
  ``obs`` events.
* :class:`PressureCampaign` sweeps overload scenarios (compressibility
  collapse, tenant stampedes, diurnal bursts — see
  :mod:`repro.workloads.bursts`) across intensities and allocation
  schemes, reconciling shed/denied/recovery counts against the trace
  with zero silent drops, and asserting the node always exits degraded
  mode once pressure recedes.

See docs/PRESSURE.md for the ladder states, the knob reference, the
campaign spec grammar and the fairness metrics.
"""

from .controller import (
    PRIORITY_BEST_EFFORT,
    PRIORITY_CRITICAL,
    PRIORITY_STANDARD,
    STALL_BOUNDS,
    PressureConfig,
    PressureController,
    PressureStats,
    TenantSpec,
    TokenBucket,
    jain_index,
)
from .campaign import (
    PRESSURE_INTENSITIES,
    PRESSURE_SCENARIOS,
    PressureCampaign,
    PressureCellOutcome,
    parse_pressure_spec,
    pressure_cell,
    run_recovery_drill,
)

__all__ = [
    "PRESSURE_INTENSITIES",
    "PRESSURE_SCENARIOS",
    "PRIORITY_BEST_EFFORT",
    "PRIORITY_CRITICAL",
    "PRIORITY_STANDARD",
    "STALL_BOUNDS",
    "PressureCampaign",
    "PressureCellOutcome",
    "PressureConfig",
    "PressureController",
    "PressureStats",
    "TenantSpec",
    "TokenBucket",
    "jain_index",
    "parse_pressure_spec",
    "pressure_cell",
    "run_recovery_drill",
]
