"""Pressure campaigns: sweep overload scenarios, reconcile, drill.

A campaign cell builds a small compressed-memory node (tight
:class:`~repro.memory.physical.MemoryGeometry`, balloon attached),
puts three priority-classed tenants behind a
:class:`~repro.pressure.controller.PressureController`, and drives
them with one :class:`~repro.workloads.bursts.BurstSchedule` overload
scenario.  After the burst recedes the cell runs a **recovery drill**
(:func:`run_recovery_drill`): tenants release their transient pages,
the balloon deflates, and the node must exit degraded mode — the
headline resilience claims (docs/PRESSURE.md) are that across the
whole sweep

* zero :class:`~repro.memory.allocator.OutOfMemoryError` escape the
  pressure layer,
* zero shed/denied/escalation transitions are unreconciled against
  the trace (no silent drops), and
* every cell that entered degraded mode exits it once pressure
  recedes.

Campaign spec grammar (CLI / test filters):
``scenario:intensity[:tenant-count]`` — e.g. ``collapse:1.5`` or
``stampede:2.0:3``; scenario names come from
:data:`~repro.workloads.bursts.BURST_SHAPES`.

Cells are seeded and wallclock-free, so they are content-addressable
by the runner cache like every other experiment unit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .._util import stable_seed
from ..core.ballooning import BalloonDriver
from ..core.config import compresso_config
from ..core.controller import CompressedMemoryController
from ..inject.campaign import matches
from ..memory.allocator import OutOfMemoryError
from ..memory.physical import MemoryGeometry
from ..obs import Tracer
from ..osmodel.cgroups import StaticBudget
from ..osmodel.vm import VirtualMemory
from ..workloads.bursts import BURST_SHAPES, BurstSchedule
from ..workloads.datagen import LineClass, make_line
from .controller import (
    PRIORITY_BEST_EFFORT,
    PRIORITY_CRITICAL,
    PRIORITY_STANDARD,
    PressureConfig,
    PressureController,
    TenantSpec,
)

#: Default campaign sweep axes (>= 3 scenarios x >= 3 intensities).
PRESSURE_SCENARIOS = BURST_SHAPES
PRESSURE_INTENSITIES = (0.5, 1.0, 2.0)

#: Installed machine-memory pages for a campaign cell: small enough
#: that three tenants' working sets overwhelm it once compressibility
#: collapses (32 installed pages -> 64 OSPA pages at 2x advertised,
#: ~248 data chunks against ~46 pages of degrading content).
_CELL_INSTALLED_PAGES = 32

#: (name, priority, budget pages, footprint pages, base writes/step).
#: Footprints sit just inside the budgets: steady state fills machine
#: memory through content degradation (the Compresso failure mode)
#: rather than through trivially-over-budget tenants.
_TENANT_ROSTER = (
    ("crit", PRIORITY_CRITICAL, 12, 10, 3),
    ("std", PRIORITY_STANDARD, 20, 18, 5),
    ("batch", PRIORITY_BEST_EFFORT, 20, 18, 6),
)

#: Cell admission gate: the roster's baseline is 14 writes/step, so a
#: stampede pulse (2-3x) drains the bucket and gets throttled/shed
#: while steady-state traffic passes untouched.
_CELL_PRESSURE = PressureConfig(admission_rate=16.0, admission_burst=40,
                                max_degraded_clock=64)


def parse_pressure_spec(spec: str) -> Tuple[str, float, int]:
    """Parse ``scenario:intensity[:tenants]`` into its parts."""
    parts = spec.split(":")
    if len(parts) not in (2, 3):
        raise ValueError(
            f"bad pressure spec {spec!r}; want scenario:intensity[:tenants]")
    scenario = parts[0]
    if scenario not in BURST_SHAPES:
        raise ValueError(
            f"unknown scenario {scenario!r}; known: {BURST_SHAPES}")
    try:
        intensity = float(parts[1])
    except ValueError:
        raise ValueError(f"bad intensity in pressure spec {spec!r}") from None
    if intensity <= 0:
        raise ValueError("pressure intensity must be positive")
    tenants = len(_TENANT_ROSTER)
    if len(parts) == 3:
        try:
            tenants = int(parts[2])
        except ValueError:
            raise ValueError(
                f"bad tenant count in pressure spec {spec!r}") from None
        if not 1 <= tenants <= len(_TENANT_ROSTER):
            raise ValueError(
                f"tenant count must be 1..{len(_TENANT_ROSTER)}")
    return scenario, intensity, tenants


@dataclass
class PressureCellOutcome:
    """Reconciled outcome of one (scenario, intensity, allocation) cell."""

    scenario: str
    intensity: float
    allocation: str
    seed: int = 0
    oom_escaped: int = 0
    degraded_enters: int = 0
    degraded_exits: int = 0
    recovered: bool = True
    #: Human-readable reconciliation failures; empty == nothing silent.
    unreconciled: List[str] = field(default_factory=list)
    #: Flat metrics digest from :meth:`PressureController.metrics`.
    metrics: Dict[str, float] = field(default_factory=dict)

    def as_row(self) -> Dict[str, object]:
        metrics = self.metrics
        return {
            "scenario": self.scenario,
            "intensity": self.intensity,
            "allocation": self.allocation,
            "requests": int(metrics.get("requests", 0)),
            "admitted": int(metrics.get("admitted", 0)),
            "throttled": int(metrics.get("throttled", 0)),
            "shed": int(metrics.get("shed", 0)),
            "denied": int(metrics.get("denied", 0)),
            "oom_absorbed": int(metrics.get("oom_absorbed", 0)),
            "page_outs": int(metrics.get("page_outs", 0)),
            "escalations": int(metrics.get("escalations", 0)),
            "degraded_enters": self.degraded_enters,
            "degraded_exits": self.degraded_exits,
            "oom_escaped": self.oom_escaped,
            "recovered": int(self.recovered),
            "unreconciled": len(self.unreconciled),
            "jain_fairness": metrics.get("jain_fairness", 1.0),
            "stall_p95": metrics.get("stall_p95", 0.0),
            "stall_p99": metrics.get("stall_p99", 0.0),
        }


def _reconcile(pressure: PressureController, tracer: Tracer,
               outcome: PressureCellOutcome) -> None:
    """Cross-check every counter against the trace; record mismatches."""
    counts = tracer.counts()
    stats = pressure.stats
    exact = (
        ("request_shed", stats.shed),
        ("admission_throttled", stats.throttled),
        ("tenant_over_budget", stats.over_budget),
        ("tenant_page_out", stats.page_outs),
        ("watchdog_escalation", stats.escalations),
        ("pressure_oom_absorbed", stats.oom_absorbed),
        ("pressure_enter", stats.pressure_enters),
        ("pressure_exit", stats.pressure_exits),
    )
    for name, counter in exact:
        if counts.get(name, 0) != counter:
            outcome.unreconciled.append(
                f"{name}: {counts.get(name, 0)} events vs "
                f"{counter} counted")
    denials = pressure.controller.stats.alloc_denials
    if counts.get("alloc_denied", 0) != denials:
        outcome.unreconciled.append(
            f"alloc_denied: {counts.get('alloc_denied', 0)} events vs "
            f"{denials} controller denials")
    if stats.denied > counts.get("alloc_denied", 0) + stats.oom_absorbed:
        outcome.unreconciled.append(
            f"denied requests ({stats.denied}) exceed traced denials + "
            f"absorbed OOMs")
    if stats.requests != stats.admitted + stats.shed + stats.denied:
        outcome.unreconciled.append(
            f"request ledger: {stats.requests} != {stats.admitted} admitted "
            f"+ {stats.shed} shed + {stats.denied} denied")
    # Every escalation must have produced a consequence in the trace:
    # a forced page-out or a degraded exit at/after its clock.
    for event in tracer.events:
        if event.name != "watchdog_escalation":
            continue
        if not matches(tracer.events, ("tenant_page_out", "degraded_exit"),
                       clock=event.clock):
            outcome.unreconciled.append(
                f"escalation at clock {event.clock} with no page-out or "
                f"degraded exit after it")


def run_recovery_drill(pressure: PressureController,
                       tenant_pages: Dict[str, List[int]],
                       vm: Optional[VirtualMemory] = None,
                       keep: int = 2, progress: float = 1.0) -> bool:
    """Drain transient pages once pressure recedes; must exit degraded.

    Frees every tenant page beyond a small survivor set (the node must
    recover *while still hosting tenants*, not only when empty),
    deflates the balloon and scrubs.  Returns True when the node ends
    outside degraded mode with the books clean.
    """
    for tenant, pages in sorted(tenant_pages.items()):
        while len(pages) > keep:
            page = pages.pop()
            pressure.free(tenant, page)
            if vm is not None and vm.is_allocated(page):
                vm.free_page(page)
    if pressure.balloon is not None:
        pressure.balloon.unprotect()
        pressure.balloon.deflate()
    problems = pressure.controller.scrub()
    pressure.step(progress)
    return not pressure.controller.degraded_mode and problems == 0


def pressure_cell(scenario: str, intensity: float,
                  allocation: str = "chunks", seed: int = 0,
                  n_tenants: int = len(_TENANT_ROSTER),
                  n_steps: int = 160,
                  config: Optional[PressureConfig] = None
                  ) -> PressureCellOutcome:
    """Run one overload scenario against a small multi-tenant node."""
    schedule = BurstSchedule(scenario, intensity)
    if config is None:
        config = _CELL_PRESSURE
    outcome = PressureCellOutcome(scenario=scenario, intensity=intensity,
                                  allocation=allocation, seed=seed)
    tracer = Tracer()
    geometry = MemoryGeometry(installed_bytes=_CELL_INSTALLED_PAGES * 4096,
                              advertised_ratio=2.0)
    controller = CompressedMemoryController(
        compresso_config(allocation=allocation), geometry, tracer=tracer)
    vm = VirtualMemory(total_pages=geometry.ospa_pages)
    balloon = BalloonDriver(controller, vm, safety_chunks=8)
    roster = _TENANT_ROSTER[:max(1, min(n_tenants, len(_TENANT_ROSTER)))]
    specs = [TenantSpec(name=name, budget=StaticBudget(budget),
                        priority=priority)
             for name, priority, budget, _, _ in roster]
    pressure = PressureController(controller, specs, balloon=balloon,
                                  config=config)
    rng = np.random.RandomState(
        stable_seed("pressure", scenario, allocation, seed))
    lines_per_page = controller.config.lines_per_page

    tenant_pages: Dict[str, List[int]] = {spec.name: [] for spec in specs}
    carry = {spec.name: 0.0 for spec in specs}

    def one_write(name: str, footprint: int, progress: float) -> None:
        pages = tenant_pages[name]
        incompressible = schedule.incompressible_fraction(progress)
        line_class = (LineClass.RANDOM if rng.rand() < incompressible
                      else LineClass.INT_DELTA)
        if len(pages) < footprint and vm.free_pages > 0:
            page = vm.allocate_page()
            vm.touch(page, dirty=True)
            image = [make_line(line_class, rng)
                     for _ in range(lines_per_page)]
            if pressure.install(name, page, image, progress) == "shed":
                vm.free_page(page)
            else:
                pages.append(page)
        elif pages:
            page = pages[int(rng.randint(len(pages)))]
            line = int(rng.randint(lines_per_page))
            pressure.write(name, page, line,
                           make_line(line_class, rng), progress)
            if vm.is_allocated(page):
                vm.touch(page, dirty=True)

    for step in range(n_steps):
        progress = step / max(1, n_steps - 1)
        for name, _, _, footprint, base_rate in roster:
            rate = schedule.rate_at(progress) * base_rate
            carry[name] += rate
            writes = int(carry[name])
            carry[name] -= writes
            for _ in range(writes):
                try:
                    one_write(name, footprint, progress)
                except OutOfMemoryError:
                    # The resilience contract: the pressure layer
                    # absorbs exhaustion.  Anything arriving here is a
                    # broken ladder, and the campaign reports it.
                    outcome.oom_escaped += 1
        pressure.step(progress)

    # Snapshot fairness/stall/utilization at the end of the burst,
    # before the drill drains the tenants (post-drain fairness is a
    # statement about the drill, not about the overload).
    outcome.metrics = pressure.metrics()
    outcome.recovered = run_recovery_drill(pressure, tenant_pages, vm=vm)
    counts = tracer.counts()
    outcome.degraded_enters = counts.get("degraded_enter", 0)
    outcome.degraded_exits = counts.get("degraded_exit", 0)
    if outcome.degraded_enters > outcome.degraded_exits:
        outcome.recovered = False
    # The drill's own transitions (frees, deflate, possible degraded
    # exit) must reconcile too — refresh the counters it moved.
    final = pressure.metrics()
    for key in ("page_outs", "escalations", "pressure_enters",
                "pressure_exits", "oom_absorbed"):
        outcome.metrics[key] = final[key]
    _reconcile(pressure, tracer, outcome)
    return outcome


class PressureCampaign:
    """Sweep scenarios x intensities x allocation schemes.

    The driver behind ``python -m repro.analysis pressure``: across the
    whole sweep, ``oom_escaped == 0``, ``unreconciled == 0`` and every
    cell recovers — overload is survived, accounted for, and shaken
    off (docs/PRESSURE.md).
    """

    def __init__(self, scenarios: Sequence[str] = PRESSURE_SCENARIOS,
                 intensities: Sequence[float] = PRESSURE_INTENSITIES,
                 allocations: Sequence[str] = ("chunks", "variable"),
                 seed: int = 0, n_steps: int = 160,
                 config: Optional[PressureConfig] = None) -> None:
        unknown = [s for s in scenarios if s not in BURST_SHAPES]
        if unknown:
            raise ValueError(f"unknown scenarios: {unknown}")
        self.scenarios = tuple(scenarios)
        self.intensities = tuple(intensities)
        self.allocations = tuple(allocations)
        self.seed = seed
        self.n_steps = n_steps
        self.config = config
        self.cells: List[PressureCellOutcome] = []

    def run(self) -> List[PressureCellOutcome]:
        """Run every cell; results are cached on the instance."""
        self.cells = [
            pressure_cell(scenario, intensity, allocation=allocation,
                          seed=self.seed, n_steps=self.n_steps,
                          config=self.config)
            for scenario in self.scenarios
            for intensity in self.intensities
            for allocation in self.allocations
        ]
        return self.cells

    @property
    def oom_escaped(self) -> int:
        return sum(cell.oom_escaped for cell in self.cells)

    @property
    def unreconciled(self) -> int:
        return sum(len(cell.unreconciled) for cell in self.cells)

    @property
    def all_recovered(self) -> bool:
        return all(cell.recovered for cell in self.cells)

    def rows(self) -> List[Dict[str, object]]:
        return [cell.as_row() for cell in self.cells]
