"""Multi-tenant overload control over the compressed-memory node.

:class:`PressureController` wraps a live
:class:`~repro.core.controller.CompressedMemoryController` (plus its
:class:`~repro.core.ballooning.BalloonDriver`) and imposes the
policies a shared node needs when compressibility collapses
(docs/PRESSURE.md):

* **admission control** — a deterministic token bucket gates
  allocating requests; when it runs dry, requests stall (bounded by
  ``max_stall_clock``) or are shed by priority class;
* **per-tenant budgets** — each tenant's resident OSPA set is tracked
  in an :class:`~repro.osmodel.paging.LRUPagingSimulator` against its
  :mod:`~repro.osmodel.cgroups` budget; over-budget tenants have their
  coldest pages paged out before the new page is admitted;
* **backpressure state** — a hysteretic ``in_pressure`` flag keyed on
  machine-memory utilization and degraded mode, traced via
  ``pressure_enter`` / ``pressure_exit``;
* **watchdog** — degraded-mode dwell (``tracer.clock -
  controller.degraded_since``) is bounded; past the bound the
  watchdog escalates to forced per-tenant page-out, extending the
  paper's ladder (balloon → emergency repack → degraded) with a
  fourth, tenant-aware rung.

Every transition emits a registered trace event, so campaign
reconciliation (:mod:`repro.pressure.campaign`) can prove nothing was
shed, denied or recovered silently.  All state advances on the
tracer's access clock plus an internal request counter — no wallclock,
no RNG — keeping runs content-addressable by the runner cache.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..memory.allocator import OutOfMemoryError
from ..obs.metrics import Histogram
from ..osmodel.paging import LRUPagingSimulator

#: Priority classes, lowest number = most important.
PRIORITY_CRITICAL = 0
PRIORITY_STANDARD = 1
PRIORITY_BEST_EFFORT = 2

#: Stall-cycle histogram bucket edges (admission wait, in clock units).
STALL_BOUNDS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
                256.0, 512.0)


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index over non-negative allocations.

    1.0 when every tenant gets an equal share, 1/n when one tenant
    gets everything.  An empty or all-zero vector is vacuously fair.
    """
    values = [max(0.0, float(v)) for v in values]
    total = sum(values)
    if not values or total == 0.0:
        return 1.0
    return total * total / (len(values) * sum(v * v for v in values))


@dataclass(frozen=True)
class PressureConfig:
    """Knobs of the overload-control layer (DESIGN.md §6.4)."""

    #: Token-bucket refill rate: allocating requests admitted per
    #: admission-clock unit (one unit per driver ``step()``).
    admission_rate: float = 4.0
    #: Token-bucket capacity: burst of requests admitted without stall.
    admission_burst: int = 64
    #: Machine-memory utilization at which backpressure engages.
    enter_utilization: float = 0.92
    #: Utilization below which backpressure releases (hysteresis).
    exit_utilization: float = 0.80
    #: Longest admission stall, in clock units, before shedding instead.
    max_stall_clock: int = 64
    #: Degraded-mode dwell bound before the watchdog escalates.
    max_degraded_clock: int = 256
    #: Pages forcibly paged out of the victim tenant per escalation.
    watchdog_page_out: int = 4

    def __post_init__(self) -> None:
        if self.admission_rate <= 0:
            raise ValueError("admission_rate must be positive")
        if self.admission_burst < 1:
            raise ValueError("admission_burst must be at least 1")
        if not 0.0 < self.exit_utilization < self.enter_utilization <= 1.0:
            raise ValueError(
                "need 0 < exit_utilization < enter_utilization <= 1")
        if self.max_stall_clock < 0:
            raise ValueError("max_stall_clock must be non-negative")
        if self.max_degraded_clock < 1:
            raise ValueError("max_degraded_clock must be at least 1")
        if self.watchdog_page_out < 1:
            raise ValueError("watchdog_page_out must be at least 1")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: identity, entitlement, priority class.

    ``budget`` is any object with ``resident_limit(progress) -> int``
    (:class:`~repro.osmodel.cgroups.StaticBudget`,
    :class:`~repro.osmodel.cgroups.DynamicBudget` or
    :class:`~repro.osmodel.cgroups.ScaledBudget`).
    """

    name: str
    budget: object
    priority: int = PRIORITY_STANDARD

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant needs a name")
        if self.priority not in (PRIORITY_CRITICAL, PRIORITY_STANDARD,
                                 PRIORITY_BEST_EFFORT):
            raise ValueError(f"unknown priority class {self.priority}")
        if not hasattr(self.budget, "resident_limit"):
            raise TypeError("budget must provide resident_limit(progress)")


class TokenBucket:
    """Deterministic clock-driven token bucket (admission gate)."""

    def __init__(self, rate: float, burst: int) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst < 1:
            raise ValueError("burst must be at least 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.clock = 0

    def _refill(self, now: int) -> None:
        if now > self.clock:
            self.tokens = min(self.burst,
                              self.tokens + (now - self.clock) * self.rate)
            self.clock = now

    def take(self, now: int) -> bool:
        """Consume one token at clock ``now``; False if the bucket is dry."""
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def wait_clocks(self, now: int) -> int:
        """Clock units until one token will be available at ``now``."""
        self._refill(now)
        deficit = 1.0 - self.tokens
        if deficit <= 0.0:
            return 0
        return int(math.ceil(deficit / self.rate))


@dataclass
class PressureStats:
    """Counters reconciled one-for-one against trace events."""

    requests: int = 0
    admitted: int = 0
    throttled: int = 0        # == admission_throttled events
    shed: int = 0             # == request_shed events
    denied: int = 0           # == alloc_denied events under this layer
    oom_absorbed: int = 0     # == pressure_oom_absorbed events
    over_budget: int = 0      # == tenant_over_budget events
    page_outs: int = 0        # == tenant_page_out events
    escalations: int = 0      # == watchdog_escalation events
    pressure_enters: int = 0  # == pressure_enter events
    pressure_exits: int = 0   # == pressure_exit events


@dataclass
class _TenantState:
    """Book-keeping for one tenant (resident set, stalls, outcomes)."""

    spec: TenantSpec
    pager: LRUPagingSimulator
    stall: Histogram
    requests: int = 0
    admitted: int = 0
    shed: int = 0
    denied: int = 0
    paged_out: int = 0


class PressureController:
    """Admission control + budgets + watchdog over a compressed node.

    The wrapped controller keeps full responsibility for the paper's
    ladder (balloon relief, emergency repack, degraded mode); this
    layer decides *which requests reach it* and *which tenant pays*
    when the node stays degraded too long.  See docs/PRESSURE.md.
    """

    def __init__(self, controller, tenants: Sequence[TenantSpec],
                 balloon=None, config: Optional[PressureConfig] = None
                 ) -> None:
        if not tenants:
            raise ValueError("need at least one tenant")
        names = [spec.name for spec in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {names}")
        self.controller = controller
        self.balloon = balloon
        self.config = config or PressureConfig()
        self.tracer = controller.tracer
        self.stats = PressureStats()
        self.bucket = TokenBucket(self.config.admission_rate,
                                  self.config.admission_burst)
        self.in_pressure = False
        self.tenants: Dict[str, _TenantState] = {
            spec.name: _TenantState(
                spec=spec,
                pager=LRUPagingSimulator(spec.budget),
                stall=Histogram(f"pressure.stall.{spec.name}", STALL_BOUNDS),
            )
            for spec in tenants
        }
        self.stall = Histogram("pressure.stall", STALL_BOUNDS)
        #: OSPA page -> owning tenant name (for escalation accounting).
        self._owner: Dict[int, str] = {}
        #: Admission clock: one unit per :meth:`step` call (the
        #: driver's simulation step) plus stall waits.  Deliberately
        #: *not* the tracer's access clock: admission_rate is "requests
        #: per driver step", so a burst of requests within one step
        #: drains the bucket and gets throttled, which is the point.
        self._now = 0

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------

    def write(self, tenant: str, page: int, line: int, data: bytes,
              progress: float = 0.0) -> str:
        """One tenant write; returns "admitted" | "shed" | "denied"."""
        return self._request(tenant, progress, page,
                             lambda: self.controller.write_line(
                                 page, line, data))

    def install(self, tenant: str, page: int, lines,
                progress: float = 0.0) -> str:
        """Install a fresh OSPA page for a tenant (first touch)."""
        return self._request(tenant, progress, page,
                             lambda: self.controller.install_page(
                                 page, lines))

    def read(self, tenant: str, page: int, line: int,
             progress: float = 0.0):
        """Tenant read: never gated or shed (reads allocate nothing),
        but refreshes the tenant's LRU recency for the page."""
        state = self._tenant(tenant)
        if page in self._owner:
            state.pager.touch(page, progress)
        return self.controller.read_line(page, line)

    def free(self, tenant: str, page: int) -> None:
        """Tenant releases a page; may let the node exit degraded mode."""
        state = self._tenant(tenant)
        self.controller.free_page(page)
        state.pager.drop(page)
        self._owner.pop(page, None)
        self._update_pressure_state()

    def step(self, progress: float = 0.0) -> None:
        """End-of-step tick: advance the admission clock (refilling the
        token bucket), refresh backpressure state, run the watchdog."""
        self._now += 1
        self._update_pressure_state()
        self._watchdog(progress)

    def _request(self, tenant: str, progress: float, page: int, op) -> str:
        state = self._tenant(tenant)
        self.stats.requests += 1
        state.requests += 1
        self._update_pressure_state()
        stall = self._admit(state)
        if stall is None:
            return "shed"
        self.stall.observe(stall)
        state.stall.observe(stall)
        self._watchdog(progress)
        self._enforce_budget(state, page, progress)
        denials_before = self.controller.stats.alloc_denials
        outcome = "admitted"
        try:
            op()
        except OutOfMemoryError:
            # The wrapped controller denies most exhaustion internally;
            # whatever still escapes (repack/conversion corner paths)
            # stops here — the campaign guarantee is that no OOM ever
            # crosses the pressure layer.
            self.stats.oom_absorbed += 1
            self.tracer.emit("pressure_oom_absorbed", page=page,
                             tenant=tenant)
            outcome = "denied"
        if self.controller.stats.alloc_denials > denials_before:
            outcome = "denied"
        if outcome == "denied":
            self.stats.denied += 1
            state.denied += 1
        else:
            self.stats.admitted += 1
            state.admitted += 1
        self._owner[page] = tenant
        state.pager.touch(page, progress)
        self._update_pressure_state()
        return outcome

    # ------------------------------------------------------------------
    # admission gate
    # ------------------------------------------------------------------

    def _admit(self, state: _TenantState) -> Optional[int]:
        """Pass one request through the token bucket.

        Returns the stall (clock units, 0 if immediate) or None when
        the request was shed.  Shedding policy by priority class:
        best-effort sheds whenever the bucket is dry; standard sheds
        under backpressure or past the stall bound; critical always
        stalls, however long the wait.
        """
        if self.bucket.take(self._now):
            return 0
        wait = max(1, self.bucket.wait_clocks(self._now))
        priority = state.spec.priority
        shed = (priority >= PRIORITY_BEST_EFFORT
                or (priority >= PRIORITY_STANDARD
                    and (self.in_pressure
                         or wait > self.config.max_stall_clock)))
        if shed:
            self.stats.shed += 1
            state.shed += 1
            self.tracer.emit("request_shed", extra=wait,
                             tenant=state.spec.name, priority=priority)
            return None
        self._now += wait
        if not self.bucket.take(self._now):  # pragma: no cover - invariant
            raise AssertionError("token bucket dry after computed wait")
        self.stats.throttled += 1
        self.tracer.emit("admission_throttled", extra=wait,
                         tenant=state.spec.name)
        return wait

    # ------------------------------------------------------------------
    # budgets and escalation
    # ------------------------------------------------------------------

    def _enforce_budget(self, state: _TenantState, page: int,
                        progress: float) -> None:
        """Page out a tenant's coldest pages before it exceeds budget."""
        limit = max(1, state.spec.budget.resident_limit(progress))
        incoming = 0 if page in self._owner else 1
        overflow = state.pager.resident_pages + incoming - limit
        if overflow <= 0:
            return
        self.stats.over_budget += 1
        self.tracer.emit("tenant_over_budget", extra=overflow,
                         tenant=state.spec.name, limit=limit)
        self._page_out(state, overflow)

    def _page_out(self, state: _TenantState, n: int) -> int:
        """Evict the tenant's ``n`` coldest pages node-wide (traced)."""
        victims = state.pager.evict_coldest(n)
        for victim in victims:
            self.controller.free_page(victim)
            self._owner.pop(victim, None)
            state.paged_out += 1
            self.stats.page_outs += 1
            self.tracer.emit("tenant_page_out", page=victim,
                             tenant=state.spec.name)
        return len(victims)

    def _watchdog(self, progress: float) -> None:
        """Bound degraded-mode dwell; escalate to forced page-out.

        The paper's ladder ends at "deny further growth"; a shared
        node cannot sit there forever, so past ``max_degraded_clock``
        access cycles the watchdog picks the least-important tenant
        with the largest resident set and pages part of it out, then
        re-arms the dwell timer.
        """
        controller = self.controller
        if not controller.degraded_mode or controller.degraded_since is None:
            return
        dwell = self.tracer.clock - controller.degraded_since
        if dwell <= self.config.max_degraded_clock:
            return
        self.stats.escalations += 1
        self.tracer.emit("watchdog_escalation", extra=dwell)
        victim = self._escalation_victim()
        if victim is not None:
            self._page_out(victim, self.config.watchdog_page_out)
        controller.scrub()
        if controller.degraded_mode:
            # Still degraded: re-arm so the next escalation waits a
            # full dwell period instead of firing on every request.
            controller.degraded_since = self.tracer.clock
        self._update_pressure_state()

    def _escalation_victim(self) -> Optional[_TenantState]:
        """Least-important tenant with the largest resident set."""
        candidates = [state for state in self.tenants.values()
                      if state.pager.resident_pages > 0]
        if not candidates:
            return None
        return max(candidates, key=lambda s: (s.spec.priority,
                                              s.pager.resident_pages,
                                              s.spec.name))

    # ------------------------------------------------------------------
    # backpressure state machine
    # ------------------------------------------------------------------

    def utilization(self) -> float:
        """Fraction of machine-memory data chunks currently allocated."""
        allocator = self.controller.memory.allocator
        total = allocator.total_chunks
        if not total:
            return 0.0
        return 1.0 - allocator.free_chunks / total

    def _update_pressure_state(self) -> None:
        """Hysteretic enter/exit of backpressure (always traced)."""
        utilization = self.utilization()
        degraded = self.controller.degraded_mode
        if not self.in_pressure and (degraded or utilization
                                     >= self.config.enter_utilization):
            self.in_pressure = True
            self.stats.pressure_enters += 1
            self.tracer.emit("pressure_enter",
                             extra=int(utilization * 1000))
        elif self.in_pressure and not degraded and (
                utilization <= self.config.exit_utilization):
            self.in_pressure = False
            self.stats.pressure_exits += 1
            self.tracer.emit("pressure_exit",
                             extra=int(utilization * 1000))

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------

    def fairness(self, progress: float = 1.0) -> float:
        """Jain's index over tenants' satisfied capacity fractions.

        Each tenant's allocation is ``resident / entitlement`` capped
        at 1.0 — how much of its budget the node actually honours; the
        index says whether squeeze was shared or dumped on one tenant.
        """
        shares: List[float] = []
        for state in self.tenants.values():
            limit = max(1, state.spec.budget.resident_limit(progress))
            shares.append(min(1.0, state.pager.resident_pages / limit))
        return jain_index(shares)

    def metrics(self, progress: float = 1.0) -> Dict[str, float]:
        """Flat str -> number digest (journal ``stats`` compatible)."""
        stats = self.stats
        out: Dict[str, float] = {
            "requests": stats.requests,
            "admitted": stats.admitted,
            "throttled": stats.throttled,
            "shed": stats.shed,
            "denied": stats.denied,
            "oom_absorbed": stats.oom_absorbed,
            "over_budget": stats.over_budget,
            "page_outs": stats.page_outs,
            "escalations": stats.escalations,
            "pressure_enters": stats.pressure_enters,
            "pressure_exits": stats.pressure_exits,
            "utilization": round(self.utilization(), 6),
            "jain_fairness": round(self.fairness(progress), 6),
            "stall_p50": round(self.stall.percentile(50.0), 3),
            "stall_p95": round(self.stall.percentile(95.0), 3),
            "stall_p99": round(self.stall.percentile(99.0), 3),
            "stall_mean": round(self.stall.mean, 6),
        }
        for name, state in sorted(self.tenants.items()):
            out[f"tenant_{name}_resident"] = state.pager.resident_pages
            out[f"tenant_{name}_shed"] = state.shed
            out[f"tenant_{name}_paged_out"] = state.paged_out
            out[f"tenant_{name}_stall_p95"] = round(
                state.stall.percentile(95.0), 3)
        return out

    # ------------------------------------------------------------------

    def _tenant(self, name: str) -> _TenantState:
        try:
            return self.tenants[name]
        except KeyError:
            raise KeyError(f"unknown tenant {name!r}; "
                           f"known: {sorted(self.tenants)}") from None
