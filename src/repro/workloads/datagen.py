"""Synthetic memory-content generation (the SPEC/graph trace substitute).

The paper's experiments need real memory *contents* — compression
ratios, overflow behaviour and zero-line rates all derive from the
bytes.  We cannot ship SPEC CPU2006 memory dumps, so each benchmark is
modeled as a mix of *data classes* whose BPC compressibility spans the
same range the paper reports (incompressible ~1x up to zeusmp's ~7x):

=============== ====================================== ================
 class           models                                 BPC behaviour
=============== ====================================== ================
 ZERO            untouched / zeroed allocations         free (0 bits)
 INT_SMALL       counters, small-domain arrays          ~10-25x
 INT_DELTA       index arrays, sequential ids           ~8-20x
 POINTER         heap pointer fields, 16 B-aligned      ~3-6x
 FLOAT           FP arrays w/ shared exponents          ~1.3-2.5x
 TEXT            ASCII buffers                          ~1.5-2.5x
 SPARSE          mostly-zero structs                    ~4-10x
 RANDOM          encrypted/compressed/hashed data       ~1x
=============== ====================================== ================

Lines are drawn from per-class *pools* of deterministic pseudo-random
lines.  Pools keep the number of distinct byte strings bounded, which
(a) matches real programs, where values repeat heavily, and (b) lets
the controller's compressed-size memoization work.
"""

from __future__ import annotations

import enum
import struct
from typing import Dict, List

import numpy as np

from .._util import stable_seed

LINE_SIZE = 64
LINES_PER_PAGE = 64


class LineClass(enum.Enum):
    """Data classes with distinct compressibility signatures."""

    ZERO = "zero"
    INT_SMALL = "int_small"
    INT_DELTA = "int_delta"
    POINTER = "pointer"
    FLOAT = "float"
    TEXT = "text"
    SPARSE = "sparse"
    RANDOM = "random"


def _rng(*key) -> np.random.RandomState:
    """Deterministic RNG from a structured key."""
    return np.random.RandomState(stable_seed(*key))


def make_line(line_class: LineClass, rng: np.random.RandomState) -> bytes:
    """Generate one 64-byte line of the given class."""
    if line_class is LineClass.ZERO:
        return bytes(LINE_SIZE)
    if line_class is LineClass.INT_SMALL:
        base = int(rng.randint(0, 4096))
        values = [(base + int(rng.randint(0, 64))) & 0xFFFFFFFF for _ in range(16)]
        return struct.pack("<16I", *values)
    if line_class is LineClass.INT_DELTA:
        base = int(rng.randint(0, 1 << 24))
        stride = int(rng.choice([1, 2, 4, 8, 16]))
        values = [(base + i * stride) & 0xFFFFFFFF for i in range(16)]
        return struct.pack("<16I", *values)
    if line_class is LineClass.POINTER:
        # 64-bit pointers into one object arena: shared high bits,
        # 64-byte-aligned objects a small stride apart.
        arena = 0x7F00_0000_0000 + int(rng.randint(0, 256)) * (1 << 20)
        base = arena + int(rng.randint(0, 1 << 10)) * 64
        values = [base + int(rng.randint(0, 32)) * 64 for _ in range(8)]
        return struct.pack("<8Q", *values)
    if line_class is LineClass.FLOAT:
        # float32 arrays with a shared exponent and coarsely quantized
        # mantissas — typical of physical-simulation state, where BPC's
        # bit-plane transform exposes the idle mantissa bits.
        exponent = float(rng.choice([0.25, 1.0, 4.0]))
        values = exponent * (rng.randint(0, 512, 16) / 256.0)
        return struct.pack("<16f", *values.astype(np.float32))
    if line_class is LineClass.TEXT:
        alphabet = b"etaoin shrdlucmfwypvbgkjqxz,.ETAOIN"
        indices = rng.randint(0, len(alphabet), LINE_SIZE)
        return bytes(alphabet[i] for i in indices)
    if line_class is LineClass.SPARSE:
        line = bytearray(LINE_SIZE)
        for _ in range(int(rng.randint(1, 4))):
            offset = int(rng.randint(0, 14)) * 4
            line[offset : offset + 4] = struct.pack(
                "<I", int(rng.randint(0, 1 << 16))
            )
        return bytes(line)
    if line_class is LineClass.RANDOM:
        return rng.bytes(LINE_SIZE)
    raise ValueError(f"unknown line class {line_class}")


class LinePool:
    """A bounded pool of deterministic lines for one (context, class)."""

    def __init__(self, context: str, line_class: LineClass,
                 size: int = 512) -> None:
        self.context = context
        self.line_class = line_class
        self.size = size
        self._lines: Dict[int, bytes] = {}

    def line(self, index: int) -> bytes:
        slot = index % self.size
        cached = self._lines.get(slot)
        if cached is None:
            rng = _rng(self.context, self.line_class.value, slot)
            cached = make_line(self.line_class, rng)
            self._lines[slot] = cached
        return cached


class PageImageGenerator:
    """Materializes page contents for one benchmark run.

    A page is assigned a dominant class from ``mix`` (a class→weight
    dict); individual lines follow the page's class, with a
    per-benchmark fraction of zero lines sprinkled in (modeling
    partially initialized structures — leslie3d's 43% and soplex's 25%
    zero lines come from here).

    ``line(page, line, version)`` is fully deterministic, so any
    (re)read of the same coordinates yields identical bytes.
    """

    def __init__(self, name: str, mix: Dict[LineClass, float],
                 zero_line_fraction: float = 0.0,
                 mixed_fraction: float = 0.08,
                 pool_size: int = 512) -> None:
        if not mix:
            raise ValueError("page class mix must not be empty")
        total = sum(mix.values())
        if total <= 0:
            raise ValueError("mix weights must sum to a positive value")
        self.name = name
        self.classes = sorted(mix, key=lambda c: c.value)
        self.weights = [mix[c] / total for c in self.classes]
        self.zero_line_fraction = zero_line_fraction
        self.mixed_fraction = mixed_fraction
        self._pools: Dict[LineClass, LinePool] = {
            cls: LinePool(name, cls, pool_size) for cls in LineClass
        }

    def page_class(self, page: int) -> LineClass:
        rng = _rng(self.name, "pageclass", page)
        return self.classes[
            int(rng.choice(len(self.classes), p=self.weights))
        ]

    def secondary_class(self, page: int) -> LineClass:
        """Minority class sprinkled into a page (real pages are not
        perfectly homogeneous — e.g. headers inside data arrays)."""
        rng = _rng(self.name, "secondary", page)
        return self.classes[
            int(rng.choice(len(self.classes), p=self.weights))
        ]

    def line(self, page: int, line: int, version: int = 0,
             override: LineClass = None) -> bytes:
        """Content of a line; ``version`` advances on writebacks."""
        cls = override or self.page_class(page)
        if override is None and cls is not LineClass.ZERO \
                and self.mixed_fraction:
            rng = _rng(self.name, "hetero", page, line)
            if rng.rand() < self.mixed_fraction:
                cls = self.secondary_class(page)
        if cls is LineClass.ZERO:
            return bytes(LINE_SIZE)
        if self.zero_line_fraction:
            rng = _rng(self.name, "zline", page, line)
            if rng.rand() < self.zero_line_fraction:
                return bytes(LINE_SIZE)
        index = hash((page, line, version)) & 0x7FFFFFFF
        return self._pools[cls].line(index)

    def page_lines(self, page: int, version: int = 0) -> List[bytes]:
        return [
            self.line(page, line, version) for line in range(LINES_PER_PAGE)
        ]
