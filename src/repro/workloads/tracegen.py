"""LLC-level trace generation (the zsim / CompressPoint substitute).

The simulator consumes the stream a memory controller actually sees:
LLC miss fills and dirty writebacks, annotated with instruction gaps.
``Workload`` owns the evolving memory contents (versions per line,
class overrides applied by overwrite phases); ``TraceGenerator``
produces the deterministic event stream from the benchmark profile's
locality/miss-rate parameters.

Traces model a CompressPoint: memory is already populated when the
region starts (the simulator installs the initial image), and the
stream mixes re-reads, rewrites of similar data, and phase-dependent
overwrites that change compressibility — the behaviour that drives the
paper's overflow, repacking and prediction machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from .._util import stable_seed
from .datagen import LINES_PER_PAGE, LineClass, PageImageGenerator
from .profiles import BenchmarkProfile


@dataclass(frozen=True)
class TraceEvent:
    """One LLC-level memory event."""

    gap: int            # instructions retired since the previous event
    is_writeback: bool
    page: int
    line: int


class Workload:
    """Evolving memory contents for one benchmark instance."""

    def __init__(self, profile: BenchmarkProfile, scale: float = 1.0,
                 seed: int = 0) -> None:
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.profile = profile
        self.seed = seed
        self.pages = max(16, int(profile.footprint_pages * scale))
        mix = dict(profile.mix)
        if profile.zero_page_fraction > 0:
            remaining = 1.0 - profile.zero_page_fraction
            mix = {cls: w * remaining for cls, w in mix.items()}
            mix[LineClass.ZERO] = profile.zero_page_fraction
        self.generator = PageImageGenerator(
            f"{profile.name}#{seed}", mix,
            zero_line_fraction=profile.zero_line_fraction,
        )
        self._versions: Dict[Tuple[int, int], int] = {}
        self._overrides: Dict[Tuple[int, int], LineClass] = {}

    def line_data(self, page: int, line: int) -> bytes:
        """Current content of a line."""
        key = (page, line)
        return self.generator.line(
            page, line,
            version=self._versions.get(key, 0),
            override=self._overrides.get(key),
        )

    def apply_writeback(self, page: int, line: int,
                        override: Optional[LineClass]) -> bytes:
        """Advance a line to its next version; returns the new content.

        A writeback replaces the line's content entirely: with an
        ``override`` the line takes that class; without one it reverts
        to the page's own class (clearing any earlier override).
        """
        key = (page, line)
        self._versions[key] = self._versions.get(key, 0) + 1
        if override is not None:
            self._overrides[key] = override
        else:
            self._overrides.pop(key, None)
        return self.line_data(page, line)

    def page_lines(self, page: int):
        return [self.line_data(page, line) for line in range(LINES_PER_PAGE)]

    def touched_lines(self) -> int:
        return len(self._versions)


class TraceGenerator:
    """Deterministic LLC event stream from a benchmark profile."""

    def __init__(self, workload: Workload, seed: int = 0) -> None:
        self.workload = workload
        self.profile = workload.profile
        self.seed = seed

    def events(self, n_events: int) -> Iterator[TraceEvent]:
        """Yield ``n_events`` trace events.

        Page choice: hot set with probability ``hot_weight``, else the
        whole footprint.  Line choice: continue a sequential run with
        probability ``sequential``, else jump.  Event kind: writeback
        with probability ``write_fraction``.
        """
        profile = self.profile
        pages = self.workload.pages
        hot_pages = max(1, int(pages * profile.hot_fraction))
        rng = np.random.RandomState(
            stable_seed(profile.name, "trace", self.seed)
        )
        gap_p = min(1.0, profile.mpki / 1000.0)

        page = int(rng.randint(0, pages))
        line = int(rng.randint(0, LINES_PER_PAGE))
        for _ in range(n_events):
            if rng.rand() < profile.sequential:
                line += 1
                if line >= LINES_PER_PAGE:
                    line = 0
                    page = (page + 1) % pages
            else:
                if rng.rand() < profile.hot_weight:
                    # Popularity within the hot set is skewed (zipf-like):
                    # skew=1 is uniform, larger concentrates on few pages.
                    page = int(hot_pages * (rng.rand() ** profile.skew))
                else:
                    page = int(rng.randint(0, pages))
                line = int(rng.randint(0, LINES_PER_PAGE))
            is_writeback = bool(rng.rand() < profile.write_fraction)
            gap = int(rng.geometric(gap_p))
            yield TraceEvent(gap=gap, is_writeback=is_writeback,
                             page=page, line=line)

    def overwrite_class_at(self, progress: float,
                           rng: np.random.RandomState) -> Optional[LineClass]:
        """Class override for a writeback at ``progress`` through the trace."""
        _, override, rate = self.profile.phase_at(progress)
        if override is not None and rng.rand() < rate:
            return override
        if self.profile.churn and rng.rand() < self.profile.churn:
            return LineClass.RANDOM
        return None
