"""Multi-core workload mixes (paper Tab. IV).

The paper groups benchmarks by single-core speedup, metadata-cache hit
rate, and memory sensitivity, then builds ten 4-benchmark mixes with
equal representation from each group; Mix10 is the compression-overhead
worst case (three metadata-cache thrashers plus cactusADM).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .profiles import PROFILES, BenchmarkProfile

#: Tab. IV verbatim.
MIXES: Dict[str, Tuple[str, str, str, str]] = {
    "mix1": ("mcf", "GemsFDTD", "libquantum", "soplex"),
    "mix2": ("milc", "astar", "gamess", "tonto"),
    "mix3": ("Forestfire", "lbm", "leslie3d", "hmmer"),
    "mix4": ("sjeng", "omnetpp", "gcc", "namd"),
    "mix5": ("xalancbmk", "cactusADM", "calculix", "sphinx3"),
    "mix6": ("perlbench", "bzip2", "gromacs", "gobmk"),
    "mix7": ("bwaves", "povray", "h264ref", "Pagerank"),
    "mix8": ("mcf", "bwaves", "Graph500", "perlbench"),
    "mix9": ("Forestfire", "povray", "gamess", "hmmer"),
    "mix10": ("Forestfire", "Pagerank", "Graph500", "cactusADM"),
}

MIX_ORDER = tuple(MIXES)


def mix_profiles(mix_name: str) -> List[BenchmarkProfile]:
    """The four profiles of a mix, in order."""
    try:
        names = MIXES[mix_name]
    except KeyError:
        raise ValueError(
            f"unknown mix {mix_name!r}; known: {sorted(MIXES)}"
        ) from None
    return [PROFILES[name] for name in names]
