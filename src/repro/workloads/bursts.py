"""Deterministic overload traffic shapes for pressure campaigns.

The pressure subsystem (repro.pressure, docs/PRESSURE.md) drives the
compressed-memory node through sustained multi-tenant overload.  The
traffic side of every scenario comes from a :class:`BurstSchedule`:
for any progress in ``[0, 1]`` it answers *how hard is this tenant
pushing* (``rate_at`` — a multiplier over the tenant's base request
rate) and *how compressible is what it writes*
(``incompressible_fraction`` — the share of freshly written lines that
take random, incompressible content).

Three shapes cover the overload regimes the campaigns sweep:

* ``collapse`` — compressibility-collapse ramp: traffic stays level
  while the data written degrades from compressible to random, the
  exact failure mode Compresso's ballooning ladder exists for (§V-B).
* ``stampede`` — a tenant stampede: a square pulse of extra traffic
  (everyone piles in at once), data compressibility unchanged.
* ``diurnal`` — a smooth daily cycle: sinusoidal rate swing with a
  mild compressibility dip at the peak (peak-hour content is messier).

Every shape recedes by the end of the window (the tail returns to the
baseline), so campaigns can assert recovery after pressure passes.
All functions are pure and float-deterministic: the same (shape,
intensity, progress) triple always yields the same numbers, keeping
campaign cells content-addressable by the runner cache.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Registered burst shapes (the campaign spec grammar's scenario names).
BURST_SHAPES = ("collapse", "stampede", "diurnal")

#: Fraction of the window over which every shape has receded: the last
#: ``RECEDE_TAIL`` of progress is guaranteed back at baseline rate and
#: compressibility, so recovery drills have a quiet tail to observe.
RECEDE_TAIL = 0.2


def _plateau(progress: float, rise: float, fall: float) -> float:
    """0→1 ramp over ``[0, rise]``, hold at 1, 1→0 ramp over ``[fall, 1]``."""
    progress = min(max(progress, 0.0), 1.0)
    if progress < rise:
        return progress / rise
    if progress > fall:
        return max(0.0, (1.0 - progress) / (1.0 - fall))
    return 1.0


@dataclass(frozen=True)
class BurstSchedule:
    """One tenant's overload profile: shape x intensity.

    ``intensity`` scales how far the shape departs from the baseline:
    1.0 is the nominal campaign stress level, higher values push the
    node deeper into the degradation ladder.
    """

    shape: str
    intensity: float = 1.0

    def __post_init__(self) -> None:
        if self.shape not in BURST_SHAPES:
            raise ValueError(
                f"unknown burst shape {self.shape!r}; known: {BURST_SHAPES}")
        if self.intensity <= 0:
            raise ValueError("burst intensity must be positive")

    def rate_at(self, progress: float) -> float:
        """Request-rate multiplier (>= 0) at ``progress`` in [0, 1]."""
        envelope = _plateau(progress, rise=0.25, fall=1.0 - RECEDE_TAIL)
        if self.shape == "collapse":
            # Traffic holds steady; the stress comes from the data.
            return 1.0
        if self.shape == "stampede":
            # Square pulse: everyone arrives in the middle third.
            pulse = 1.0 if 0.3 <= progress <= 0.6 else 0.0
            return 1.0 + 2.0 * self.intensity * pulse * envelope
        # diurnal: one full day-cycle swing across the window.
        swing = 0.5 * (1.0 - math.cos(2.0 * math.pi *
                                      min(max(progress, 0.0), 1.0)))
        return 1.0 + self.intensity * swing * envelope

    def incompressible_fraction(self, progress: float) -> float:
        """Share of written lines that take random content, in [0, 1]."""
        envelope = _plateau(progress, rise=0.3, fall=1.0 - RECEDE_TAIL)
        if self.shape == "collapse":
            return min(1.0, 0.9 * self.intensity * envelope)
        if self.shape == "stampede":
            return 0.0
        # diurnal: peak-hour content is somewhat less compressible.
        swing = 0.5 * (1.0 - math.cos(2.0 * math.pi *
                                      min(max(progress, 0.0), 1.0)))
        return min(1.0, 0.3 * self.intensity * swing * envelope)

    def receded(self, progress: float) -> bool:
        """Has this shape returned to baseline at ``progress``?"""
        return progress >= 1.0 - RECEDE_TAIL / 2.0
