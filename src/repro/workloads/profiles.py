"""Per-benchmark workload profiles (the SPEC CPU2006 / graph substitute).

Each :class:`BenchmarkProfile` captures the characteristics of one of
the paper's 30 benchmarks that the Compresso experiments are sensitive
to: data-class mix (→ compression ratio, Fig. 2), zero-page/line rates
(→ free zero traffic, §VII-A), access locality (→ metadata-cache hit
rate, Fig. 4/6), writeback behaviour and overwrite phases (→ line/page
overflows and repacking, Figs. 6/7), miss rate and memory-level
parallelism (→ cycle-based speedups, Figs. 10/11), and page-reuse
shape (→ memory-capacity impact, Tab. II).

The numeric values are calibrated so the per-benchmark *shape* of the
paper's figures holds: zeusmp is the compression outlier, mcf /
GemsFDTD / lbm are incompressible and memory-hungry, omnetpp and the
graph workloads (Forestfire, Pagerank, Graph500) blow the metadata
cache, soplex and libquantum are bandwidth-bound with many zero lines,
and GemsFDTD / astar show strong compressibility phases (Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .datagen import LineClass

#: One trace phase: (fraction of the trace, class written back during
#: the phase or None to rewrite the page's own class, overwrite rate).
Phase = Tuple[float, Optional[LineClass], float]


@dataclass(frozen=True)
class BenchmarkProfile:
    """Synthetic stand-in for one benchmark."""

    name: str
    # -- data contents (Fig. 2) ------------------------------------------
    mix: Dict[LineClass, float]
    zero_page_fraction: float = 0.05
    zero_line_fraction: float = 0.02
    # -- footprint / locality --------------------------------------------
    footprint_pages: int = 2048          # 4 KB pages (8 MB default)
    hot_fraction: float = 0.25           # fraction of pages that are hot
    hot_weight: float = 0.85             # P(access goes to the hot set)
    sequential: float = 0.5              # P(continue a sequential run)
    # -- event stream -----------------------------------------------------
    mpki: float = 5.0                    # LLC misses per kilo-instruction
    write_fraction: float = 0.3          # P(event is a writeback)
    mlp: float = 2.0                     # core overlap of demand misses
    base_cpi: float = 0.5                # non-memory cycles per instruction
    skew: float = 2.0                    # hot-page popularity skew (zipf-ish)
    # -- compressibility dynamics (Figs. 6/7/9) ---------------------------
    phases: Tuple[Phase, ...] = ((1.0, None, 0.0),)
    #: Background content churn: probability that a writeback outside
    #: any overwrite phase briefly turns a line incompressible (it
    #: reverts on its next rewrite).  Drives the universal mild
    #: compression squandering that repacking reclaims (Fig. 7).
    churn: float = 0.03
    # -- memory-capacity behaviour (Tab. II, Fig. 10) ----------------------
    #: Zipf exponent of page reuse: shapes the fault curve under a
    #: constrained budget.  ~0.4 = flat reuse, thrashes below the full
    #: footprint (mcf/GemsFDTD/lbm "stall"); ~1.4-1.6 = almost-linear
    #: sensitivity; >2 = tiny tail, insensitive to constraints.
    reuse_alpha: float = 1.5
    working_set_fraction: float = 0.5    # hot share of pages (trace shaping)
    scan_fraction: float = 0.2           # streaming share (trace shaping)
    capacity_sensitive: bool = True      # reacts to constrained memory?

    def phase_at(self, progress: float) -> Phase:
        """The phase active at ``progress`` in [0, 1)."""
        cursor = 0.0
        for phase in self.phases:
            cursor += phase[0]
            if progress < cursor:
                return phase
        return self.phases[-1]


def _p(**kwargs) -> BenchmarkProfile:
    return BenchmarkProfile(**kwargs)


Z, ISM, IDL, PTR, FLT, TXT, SPR, RND = (
    LineClass.ZERO,
    LineClass.INT_SMALL,
    LineClass.INT_DELTA,
    LineClass.POINTER,
    LineClass.FLOAT,
    LineClass.TEXT,
    LineClass.SPARSE,
    LineClass.RANDOM,
)

#: All 30 benchmarks of the paper's evaluation, in its plotting order.
PROFILES: Dict[str, BenchmarkProfile] = {
    p.name: p
    for p in [
        _p(name="perlbench", reuse_alpha=1.6,
           mix={ISM: 0.4, PTR: 0.3, TXT: 0.2, RND: 0.1},
           mpki=2, write_fraction=0.35, footprint_pages=1536,
           working_set_fraction=0.4),
        _p(name="bzip2", reuse_alpha=2.2,
           mix={ISM: 0.3, RND: 0.5, TXT: 0.2},
           mpki=4, write_fraction=0.4, footprint_pages=2048,
           working_set_fraction=0.6, scan_fraction=0.02, capacity_sensitive=False),
        _p(name="gcc", reuse_alpha=1.5,
           mix={PTR: 0.35, ISM: 0.3, SPR: 0.25, RND: 0.1},
           zero_page_fraction=0.15, mpki=8, write_fraction=0.4,
           footprint_pages=2048, hot_fraction=0.3,
           phases=((0.3, SPR, 0.2), (0.4, RND, 0.25), (0.3, SPR, 0.2)),
           working_set_fraction=0.45),
        _p(name="bwaves", reuse_alpha=1.4,
           mix={FLT: 0.6, IDL: 0.25, RND: 0.15},
           mpki=18, write_fraction=0.3, footprint_pages=3072,
           sequential=0.8, mlp=3.0, working_set_fraction=0.7),
        _p(name="gamess", reuse_alpha=2.4,
           mix={FLT: 0.5, ISM: 0.35, RND: 0.15},
           mpki=0.7, write_fraction=0.3, footprint_pages=512,
           scan_fraction=0.02, capacity_sensitive=False),
        _p(name="mcf", reuse_alpha=0.3,
           mix={PTR: 0.45, RND: 0.45, ISM: 0.1},
           zero_page_fraction=0.0, zero_line_fraction=0.0,
           mpki=60, write_fraction=0.3, footprint_pages=6144,
           hot_fraction=0.6, hot_weight=0.6, sequential=0.2, mlp=4.0,
           base_cpi=0.8, skew=2.5,
           working_set_fraction=0.95, scan_fraction=0.5),
        _p(name="milc", reuse_alpha=1.4,
           mix={FLT: 0.45, RND: 0.45, IDL: 0.1},
           mpki=25, write_fraction=0.35, footprint_pages=4096,
           sequential=0.7, mlp=3.0, working_set_fraction=0.8),
        _p(name="zeusmp", reuse_alpha=1.5,
           mix={IDL: 0.55, SPR: 0.3, FLT: 0.1, RND: 0.05},
           zero_page_fraction=0.45, zero_line_fraction=0.1,
           mpki=8, write_fraction=0.35, footprint_pages=3072,
           sequential=0.7, working_set_fraction=0.6),
        _p(name="gromacs", reuse_alpha=2.4,
           mix={FLT: 0.5, ISM: 0.3, RND: 0.2},
           mpki=2, write_fraction=0.35, footprint_pages=1024,
           scan_fraction=0.02, capacity_sensitive=False),
        _p(name="cactusADM", reuse_alpha=1.4,
           mix={FLT: 0.45, SPR: 0.3, IDL: 0.15, RND: 0.1},
           zero_page_fraction=0.2, zero_line_fraction=0.15,
           mpki=10, write_fraction=0.35, footprint_pages=3072,
           sequential=0.75, mlp=2.5, working_set_fraction=0.65),
        _p(name="leslie3d", reuse_alpha=1.4,
           mix={FLT: 0.55, SPR: 0.25, IDL: 0.1, RND: 0.1},
           zero_page_fraction=0.1, zero_line_fraction=0.43,
           mpki=15, write_fraction=0.3, footprint_pages=3072,
           sequential=0.8, mlp=3.0, working_set_fraction=0.7),
        _p(name="namd", reuse_alpha=1.25,
           mix={FLT: 0.5, TXT: 0.2, ISM: 0.15, RND: 0.15},
           mpki=1.5, write_fraction=0.3, footprint_pages=1024,
           working_set_fraction=0.75),
        _p(name="gobmk", reuse_alpha=2.4,
           mix={ISM: 0.4, PTR: 0.3, TXT: 0.15, RND: 0.15},
           mpki=2, write_fraction=0.35, footprint_pages=768,
           scan_fraction=0.02, capacity_sensitive=False),
        _p(name="soplex", reuse_alpha=1.35,
           mix={SPR: 0.45, FLT: 0.3, ISM: 0.15, RND: 0.1},
           zero_page_fraction=0.1, zero_line_fraction=0.25,
           mpki=30, write_fraction=0.25, footprint_pages=4096,
           sequential=0.7, mlp=3.5, working_set_fraction=0.6),
        _p(name="povray", reuse_alpha=1.6,
           mix={FLT: 0.4, PTR: 0.3, TXT: 0.15, RND: 0.15},
           mpki=0.6, write_fraction=0.35, footprint_pages=512,
           working_set_fraction=0.5),
        _p(name="calculix", reuse_alpha=2.4,
           mix={FLT: 0.45, ISM: 0.35, RND: 0.2},
           mpki=2, write_fraction=0.3, footprint_pages=1024,
           scan_fraction=0.02, capacity_sensitive=False),
        _p(name="hmmer", reuse_alpha=2.4,
           mix={ISM: 0.55, RND: 0.35, TXT: 0.1},
           mpki=1.5, write_fraction=0.45, footprint_pages=768,
           scan_fraction=0.02, capacity_sensitive=False),
        _p(name="sjeng", reuse_alpha=1.6,
           mix={ISM: 0.4, PTR: 0.3, RND: 0.3},
           mpki=1.2, write_fraction=0.35, footprint_pages=2048,
           hot_fraction=0.7, hot_weight=0.5, working_set_fraction=0.6),
        _p(name="GemsFDTD", reuse_alpha=0.35,
           mix={FLT: 0.4, RND: 0.5, IDL: 0.1},
           zero_page_fraction=0.0, zero_line_fraction=0.02,
           mpki=25, write_fraction=0.35, footprint_pages=6144,
           sequential=0.75, mlp=3.0,
           phases=((0.25, SPR, 0.12), (0.25, RND, 0.12),
                   (0.25, SPR, 0.12), (0.25, RND, 0.12)),
           working_set_fraction=0.9, scan_fraction=0.5),
        _p(name="libquantum", reuse_alpha=1.3,
           mix={IDL: 0.5, SPR: 0.35, RND: 0.15},
           zero_page_fraction=0.15, zero_line_fraction=0.1,
           mpki=25, write_fraction=0.25, footprint_pages=2048,
           sequential=0.95, mlp=4.0, working_set_fraction=0.9,
           scan_fraction=0.8),
        _p(name="h264ref", reuse_alpha=2.4,
           mix={ISM: 0.45, RND: 0.4, TXT: 0.15},
           mpki=2, write_fraction=0.4, footprint_pages=768,
           scan_fraction=0.02, capacity_sensitive=False),
        _p(name="tonto", reuse_alpha=1.6,
           mix={FLT: 0.45, ISM: 0.35, RND: 0.2},
           mpki=2, write_fraction=0.3, footprint_pages=1024,
           working_set_fraction=0.5),
        _p(name="lbm", reuse_alpha=0.3,
           mix={RND: 0.6, FLT: 0.35, IDL: 0.05},
           zero_page_fraction=0.0, zero_line_fraction=0.0,
           mpki=30, write_fraction=0.45, footprint_pages=6144,
           sequential=0.9, mlp=3.5,
           working_set_fraction=0.95, scan_fraction=0.7),
        _p(name="omnetpp", reuse_alpha=1.4,
           mix={PTR: 0.45, ISM: 0.3, SPR: 0.15, RND: 0.1},
           mpki=20, write_fraction=0.35, footprint_pages=4096,
           hot_fraction=0.8, hot_weight=0.5, sequential=0.15, mlp=1.5,
           base_cpi=0.8, skew=1.2,
           working_set_fraction=0.7),
        _p(name="astar", reuse_alpha=1.45,
           mix={PTR: 0.4, ISM: 0.3, SPR: 0.15, RND: 0.15},
           mpki=10, write_fraction=0.3, footprint_pages=2048,
           sequential=0.3, mlp=1.5,
           phases=((0.3, SPR, 0.15), (0.3, RND, 0.15), (0.4, SPR, 0.15)),
           working_set_fraction=0.6),
        _p(name="sphinx3", reuse_alpha=1.45,
           mix={FLT: 0.5, ISM: 0.3, RND: 0.2},
           mpki=12, write_fraction=0.25, footprint_pages=2048,
           sequential=0.6, working_set_fraction=0.6),
        _p(name="xalancbmk", reuse_alpha=1.4,
           mix={PTR: 0.4, TXT: 0.25, ISM: 0.25, RND: 0.1},
           mpki=8, write_fraction=0.3, footprint_pages=2048,
           hot_fraction=0.5, hot_weight=0.6, sequential=0.3,
           working_set_fraction=0.75),
        _p(name="Forestfire", reuse_alpha=1.25,
           mix={SPR: 0.4, PTR: 0.3, IDL: 0.2, RND: 0.1},
           zero_page_fraction=0.1, mpki=30, write_fraction=0.35,
           footprint_pages=8192, hot_fraction=0.9, hot_weight=0.4,
           sequential=0.1, mlp=2.0, base_cpi=0.7, skew=1.1,
           working_set_fraction=0.8),
        _p(name="Pagerank", reuse_alpha=1.3,
           mix={IDL: 0.35, FLT: 0.3, PTR: 0.25, RND: 0.1},
           zero_page_fraction=0.05, mpki=35, write_fraction=0.3,
           footprint_pages=8192, hot_fraction=0.9, hot_weight=0.4,
           sequential=0.2, mlp=2.5, base_cpi=0.7, skew=1.1,
           working_set_fraction=0.85),
        _p(name="Graph500", reuse_alpha=1.2,
           mix={IDL: 0.45, SPR: 0.3, PTR: 0.15, RND: 0.1},
           zero_page_fraction=0.2, mpki=40, write_fraction=0.3,
           footprint_pages=8192, hot_fraction=0.9, hot_weight=0.4,
           sequential=0.15, mlp=3.0, base_cpi=0.7, skew=1.1,
           working_set_fraction=0.75),
    ]
}

#: The three benchmarks the paper excludes from constrained-memory runs
#: (they stall from paging and are incompressible, §VII-A).
CAPACITY_STALLERS = ("mcf", "GemsFDTD", "lbm")

#: Plot order used by the paper's figures.
BENCHMARK_ORDER = tuple(PROFILES)


def get_profile(name: str) -> BenchmarkProfile:
    try:
        return PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown benchmark {name!r}; known: {sorted(PROFILES)}"
        ) from None
