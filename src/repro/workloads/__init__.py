"""Synthetic workloads substituting the paper's benchmarks (DESIGN.md)."""

from .bursts import BURST_SHAPES, BurstSchedule
from .datagen import (
    LINE_SIZE,
    LINES_PER_PAGE,
    LineClass,
    LinePool,
    PageImageGenerator,
    make_line,
)
from .mixes import MIX_ORDER, MIXES, mix_profiles
from .profiles import (
    BENCHMARK_ORDER,
    CAPACITY_STALLERS,
    PROFILES,
    BenchmarkProfile,
    Phase,
    get_profile,
)
from .tracegen import TraceEvent, TraceGenerator, Workload

__all__ = [
    "BENCHMARK_ORDER",
    "BURST_SHAPES",
    "BenchmarkProfile",
    "BurstSchedule",
    "CAPACITY_STALLERS",
    "LINES_PER_PAGE",
    "LINE_SIZE",
    "LineClass",
    "LinePool",
    "MIXES",
    "MIX_ORDER",
    "PROFILES",
    "PageImageGenerator",
    "Phase",
    "TraceEvent",
    "TraceGenerator",
    "Workload",
    "get_profile",
    "make_line",
    "mix_profiles",
]
