"""Memory request types exchanged between controllers and the DRAM model."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class AccessKind(enum.Enum):
    """Direction of a DRAM access."""

    READ = "read"
    WRITE = "write"


class AccessCategory(enum.Enum):
    """Why the access happened — mirrors the paper's Fig. 4 taxonomy."""

    DEMAND = "demand"            # an uncompressed system would do this too
    SPLIT = "split"              # second half of a split-access line (§IV i)
    OVERFLOW = "overflow"        # line/page overflow handling (§IV ii)
    REPACK = "repack"            # dynamic repacking traffic (§IV-B4)
    METADATA = "metadata"        # metadata fill/writeback (§IV iii)
    SPECULATIVE = "speculative"  # LCP's parallel speculative read


@dataclass
class MemAccess:
    """One 64-byte DRAM access."""

    kind: AccessKind
    category: AccessCategory
    address: int                      # MPA byte address (banks/rows derive from it)
    critical: bool = True             # on the load-use critical path?

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError("negative MPA address")


@dataclass
class AccessResult:
    """Outcome of one controller read/write operation.

    ``controller_cycles`` is latency added by the controller itself
    (metadata cache hit, offset calculation, decompression); DRAM
    latency is determined later by the timing model from ``accesses``.
    ``data`` is the line content for reads.
    """

    accesses: list = field(default_factory=list)
    controller_cycles: int = 0
    data: bytes = b""
    served_by_metadata: bool = False  # zero line: no DRAM access at all
    prefetch_hit: bool = False

    def critical_accesses(self) -> list:
        return [a for a in self.accesses if a.critical]
