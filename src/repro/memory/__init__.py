"""Main-memory substrate: DDR4 timing, capacity accounting (DESIGN.md)."""

from .allocator import AllocatorStats, ChunkAllocator, VariableAllocator
from .dram import DDR4Channel, DRAMStats, DRAMSystem, DRAMTimings
from .physical import MemoryGeometry, OutOfMemoryError, PhysicalMemory
from .request import AccessCategory, AccessKind, AccessResult, MemAccess

__all__ = [
    "AccessCategory",
    "AllocatorStats",
    "ChunkAllocator",
    "VariableAllocator",
    "AccessKind",
    "AccessResult",
    "DDR4Channel",
    "DRAMStats",
    "DRAMSystem",
    "DRAMTimings",
    "MemAccess",
    "MemoryGeometry",
    "OutOfMemoryError",
    "PhysicalMemory",
]
