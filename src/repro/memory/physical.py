"""Machine-physical memory capacity accounting.

The controller models *where* data lives (chunk ids, offsets) rather
than serializing compressed bit streams into a byte array — offsets and
split behaviour depend only on the size bins, exactly as in the real
hardware.  ``PhysicalMemory`` tracks installed capacity, the metadata
region carved out of it, and occupancy, and raises the out-of-memory
condition that drives the §V-B ballooning path.
"""

from __future__ import annotations

from dataclasses import dataclass

from .allocator import ChunkAllocator, OutOfMemoryError, VariableAllocator


@dataclass(frozen=True)
class MemoryGeometry:
    """Installed memory and the advertised (OSPA) capacity above it."""

    installed_bytes: int
    advertised_ratio: float = 2.0     # OS is promised ratio x installed
    page_size: int = 4096
    metadata_entry_bytes: int = 64

    @property
    def advertised_bytes(self) -> int:
        return int(self.installed_bytes * self.advertised_ratio)

    @property
    def ospa_pages(self) -> int:
        return self.advertised_bytes // self.page_size

    @property
    def metadata_region_bytes(self) -> int:
        """Dedicated MPA space for one 64 B entry per OSPA page (§III)."""
        return self.ospa_pages * self.metadata_entry_bytes

    @property
    def data_region_bytes(self) -> int:
        """Installed bytes left for compressed data."""
        return self.installed_bytes - self.metadata_region_bytes

    @property
    def metadata_overhead(self) -> float:
        return self.metadata_region_bytes / self.installed_bytes


class PhysicalMemory:
    """Chunked machine memory backing a compressed-memory controller."""

    def __init__(self, geometry: MemoryGeometry, allocation: str = "chunks",
                 chunk_size: int = 512) -> None:
        self.geometry = geometry
        data_bytes = geometry.data_region_bytes
        if data_bytes <= 0:
            raise ValueError("metadata region exceeds installed memory")
        # Round down to a whole number of max-size pages for the buddy
        # allocator's sake.
        data_bytes -= data_bytes % geometry.page_size
        if allocation == "chunks":
            self.allocator = ChunkAllocator(data_bytes, chunk_size)
        elif allocation == "variable":
            self.allocator = VariableAllocator(
                data_bytes, chunk_size, geometry.page_size
            )
        else:
            raise ValueError(f"unknown allocation scheme {allocation!r}")
        self.allocation = allocation
        self.chunk_size = chunk_size

    @property
    def used_bytes(self) -> int:
        return self.allocator.used_bytes

    @property
    def free_bytes(self) -> int:
        return self.allocator.free_chunks * self.chunk_size

    def utilization(self) -> float:
        return self.allocator.stats().utilization

    def metadata_address(self, ospa_page: int) -> int:
        """MPA address of a page's metadata entry — a shift and add (§III).

        The metadata region sits above the data region in MPA space.
        """
        if ospa_page < 0 or ospa_page >= self.geometry.ospa_pages:
            raise ValueError(f"OSPA page {ospa_page} out of range")
        base = self.allocator.total_chunks * self.chunk_size
        return base + ospa_page * self.geometry.metadata_entry_bytes


__all__ = [
    "MemoryGeometry",
    "OutOfMemoryError",
    "PhysicalMemory",
]
