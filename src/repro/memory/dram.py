"""DDR4 channel timing model (paper Tab. III).

A deliberately compact but structurally faithful model: banks with open
rows, tRCD/tRP/tCL timing, a shared data bus occupied for BL/2 DRAM
cycles per burst, and FR-FCFS-ish service where requests wait for their
bank and the bus.  Everything is expressed in **CPU cycles** (3 GHz core
vs. 1333 MHz DDR4-2666 command clock), matching how the simulator
accumulates stalls.

This is the substitution for the authors' zsim+DRAM setup: we do not
model refresh, rank-to-rank penalties or write-to-read turnarounds, but
we do capture the three effects the paper's results hinge on — row
locality, bank parallelism and bandwidth contention from the extra
compression traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .request import AccessCategory, AccessKind, MemAccess


@dataclass(frozen=True)
class DRAMTimings:
    """DDR4-2666 timings from Tab. III, converted to CPU cycles."""

    cpu_freq_ghz: float = 3.0
    dram_freq_mhz: float = 1333.0        # command clock of DDR4-2666
    tCL: int = 18                        # DRAM cycles
    tRCD: int = 18
    tRP: int = 18
    burst_length: int = 8

    @property
    def cycles_per_dram_clock(self) -> float:
        return self.cpu_freq_ghz * 1000.0 / self.dram_freq_mhz

    def _cpu(self, dram_cycles: float) -> int:
        return max(1, round(dram_cycles * self.cycles_per_dram_clock))

    @property
    def row_hit_latency(self) -> int:
        return self._cpu(self.tCL)

    @property
    def row_miss_latency(self) -> int:
        return self._cpu(self.tRCD + self.tCL)

    @property
    def row_conflict_latency(self) -> int:
        return self._cpu(self.tRP + self.tRCD + self.tCL)

    @property
    def burst_cycles(self) -> int:
        """Bus occupancy of one 64-byte transfer (BL/2 DRAM clocks)."""
        return self._cpu(self.burst_length / 2)


@dataclass
class _Bank:
    open_row: int = -1
    ready_at: int = 0


@dataclass
class DRAMStats:
    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0
    busy_cycles: int = 0
    total_wait_cycles: int = 0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    def row_hit_rate(self) -> float:
        return self.row_hits / self.accesses if self.accesses else 0.0


class DDR4Channel:
    """One DDR4 channel: banks + shared data bus."""

    #: Address mapping: banks interleave at 256-byte stripes (as real
    #: controllers do, so streams engage all banks in parallel); the row
    #: id covers an 8 KB region, so a stream's return to a bank is a row
    #: hit.
    ROW_BYTES = 8192
    BANK_STRIPE = 256

    def __init__(self, timings: DRAMTimings = DRAMTimings(), n_banks: int = 16) -> None:
        if n_banks <= 0 or n_banks & (n_banks - 1):
            raise ValueError("n_banks must be a positive power of two")
        self.timings = timings
        self.n_banks = n_banks
        self.banks: List[_Bank] = [_Bank() for _ in range(n_banks)]
        self.bus_free_at = 0
        self.stats = DRAMStats()

    def _map(self, address: int):
        """Return (bank index, row index) for a byte address."""
        bank = (address // self.BANK_STRIPE) % self.n_banks
        row = address // self.ROW_BYTES
        return bank, row

    def access(self, now: int, access: MemAccess) -> int:
        """Issue one access arriving at CPU cycle ``now``.

        Returns the completion cycle (data available / write retired).

        Metadata reads are *prioritized*: they are latency-critical
        64-byte fetches into a small, row-hot region, so an FR-FCFS
        scheduler serves them ahead of the bank backlog.  They still
        consume bus bandwidth.
        """
        t = self.timings
        bank_idx, row = self._map(access.address)
        bank = self.banks[bank_idx]

        if (access.category is AccessCategory.METADATA
                and access.kind is AccessKind.READ and access.critical):
            latency = (t.row_hit_latency if bank.open_row == row
                       else t.row_miss_latency)
            completion = now + latency + t.burst_cycles
            self.stats.reads += 1
            self.stats.busy_cycles += t.burst_cycles
            self.stats.total_wait_cycles += completion - now
            return completion

        start = max(now, bank.ready_at)
        if bank.open_row == row:
            latency = t.row_hit_latency
            self.stats.row_hits += 1
        elif bank.open_row == -1:
            latency = t.row_miss_latency
            self.stats.row_misses += 1
        else:
            latency = t.row_conflict_latency
            self.stats.row_conflicts += 1
        bank.open_row = row

        data_ready = start + latency
        # The burst needs the shared bus.
        burst_start = max(data_ready, self.bus_free_at)
        completion = burst_start + t.burst_cycles
        self.bus_free_at = completion
        bank.ready_at = completion

        if access.kind is AccessKind.READ:
            self.stats.reads += 1
        else:
            self.stats.writes += 1
        self.stats.busy_cycles += t.burst_cycles
        self.stats.total_wait_cycles += completion - now
        return completion

    def utilization(self, elapsed_cycles: int) -> float:
        """Fraction of time the data bus was busy."""
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.stats.busy_cycles / elapsed_cycles)


class DRAMSystem:
    """One or more channels, selected by address interleaving."""

    def __init__(self, n_channels: int = 1,
                 timings: DRAMTimings = DRAMTimings(),
                 n_banks: int = 16) -> None:
        if n_channels <= 0:
            raise ValueError("need at least one channel")
        self.channels = [DDR4Channel(timings, n_banks) for _ in range(n_channels)]

    def access(self, now: int, access: MemAccess) -> int:
        channel = (access.address // 64) % len(self.channels)
        return self.channels[channel].access(now, access)

    @property
    def stats(self) -> DRAMStats:
        total = DRAMStats()
        for channel in self.channels:
            s = channel.stats
            total.reads += s.reads
            total.writes += s.writes
            total.row_hits += s.row_hits
            total.row_misses += s.row_misses
            total.row_conflicts += s.row_conflicts
            total.busy_cycles += s.busy_cycles
            total.total_wait_cycles += s.total_wait_cycles
        return total
