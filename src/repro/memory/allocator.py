"""Machine-physical-address (MPA) space allocators (paper §II-D, Fig. 1b).

Two schemes are compared in the paper:

* **Incremental fixed-size chunks** (Compresso's choice): a page is a
  set of up to eight 512-byte chunks, allocated one at a time.  Trivial
  free-list management, zero external fragmentation, but needs all 8
  MPFN pointers in metadata.
* **Variable-sized chunks**: a page is one contiguous region of
  512 B / 1 KB / 2 KB / 4 KB.  Fewer pointers, but resizing means a
  full relocation and the free space fragments.

Both allocators work in 512-byte chunk units over the same machine
memory and expose identical interfaces so the controller can use either.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


class OutOfMemoryError(Exception):
    """Machine memory exhausted — the §V-B ballooning path must kick in."""


@dataclass
class AllocatorStats:
    """Occupancy snapshot for capacity accounting."""

    total_chunks: int
    used_chunks: int
    fragmented_chunks: int = 0

    @property
    def free_chunks(self) -> int:
        return self.total_chunks - self.used_chunks

    @property
    def utilization(self) -> float:
        return self.used_chunks / self.total_chunks if self.total_chunks else 0.0

    @property
    def fragmentation(self) -> float:
        """Fraction of free space unusable for a max-size request."""
        free = self.free_chunks
        return self.fragmented_chunks / free if free else 0.0

    def observe(self, registry, prefix: str = "allocator") -> None:
        """Publish this snapshot as gauges on a MetricRegistry."""
        registry.gauge(f"{prefix}.total_chunks").set(self.total_chunks)
        registry.gauge(f"{prefix}.used_chunks").set(self.used_chunks)
        registry.gauge(f"{prefix}.free_chunks").set(self.free_chunks)
        registry.gauge(f"{prefix}.fragmented_chunks").set(
            self.fragmented_chunks)
        registry.gauge(f"{prefix}.utilization").set(self.utilization)
        registry.gauge(f"{prefix}.fragmentation").set(self.fragmentation)


class ChunkAllocator:
    """Free-list allocator over fixed 512-byte chunks (Compresso)."""

    def __init__(self, memory_bytes: int, chunk_size: int = 512) -> None:
        if memory_bytes % chunk_size:
            raise ValueError("memory size must be a multiple of the chunk size")
        self.chunk_size = chunk_size
        self.total_chunks = memory_bytes // chunk_size
        # LIFO free list: reuse recently freed chunks for locality.
        self._free: List[int] = list(range(self.total_chunks - 1, -1, -1))
        self._allocated: set = set()
        # Chunks removed from circulation by seize() (fault injection).
        self._seized: set = set()

    def allocate(self, count: int = 1) -> List[int]:
        """Take ``count`` chunks (not necessarily contiguous)."""
        if count < 0:
            raise ValueError("cannot allocate a negative chunk count")
        if count > len(self._free):
            raise OutOfMemoryError(
                f"need {count} chunks, only {len(self._free)} free"
            )
        chunks = [self._free.pop() for _ in range(count)]
        self._allocated.update(chunks)
        return chunks

    def free(self, chunks) -> None:
        """Return chunks to the free list."""
        for chunk in chunks:
            if chunk not in self._allocated:
                raise ValueError(f"double free of chunk {chunk}")
            self._allocated.remove(chunk)
            self._free.append(chunk)

    @property
    def free_chunks(self) -> int:
        return len(self._free)

    @property
    def used_chunks(self) -> int:
        return len(self._allocated)

    @property
    def used_bytes(self) -> int:
        return self.used_chunks * self.chunk_size

    def owned_chunks(self) -> frozenset:
        """Snapshot of currently allocated chunk ids.

        Used by the memory-model sanitizer (``repro.check.sanitizer``)
        to reconcile the allocator's books against the chunks page
        metadata actually references.
        """
        return frozenset(self._allocated)

    def stats(self) -> AllocatorStats:
        # Seized chunks are unusable, so capacity accounting treats
        # them as occupied even though no page owns them.
        return AllocatorStats(self.total_chunks,
                              self.used_chunks + len(self._seized))

    def observe(self, registry, prefix: str = "allocator") -> None:
        """Publish the current occupancy gauges to a MetricRegistry."""
        self.stats().observe(registry, prefix)

    def chunk_base_address(self, chunk: int) -> int:
        """MPA byte address of a chunk (used for DRAM bank mapping)."""
        return chunk * self.chunk_size

    # -- fault injection and self-check (docs/ROBUSTNESS.md) --------------

    def seize(self, count: int) -> List[int]:
        """Remove up to ``count`` chunks from circulation.

        The chunks leave the free list without entering the allocated
        set, modelling capacity lost to exhaustion faults: ownership
        reconciliation stays clean while the usable pool shrinks.
        :meth:`restore` returns them.
        """
        take = min(count, len(self._free))
        seized = [self._free.pop() for _ in range(take)]
        self._seized.update(seized)
        return seized

    def restore(self, chunks) -> None:
        """Return chunks taken by :meth:`seize` to the free list."""
        for chunk in chunks:
            if chunk not in self._seized:
                raise ValueError(f"chunk {chunk} was not seized")
            self._seized.remove(chunk)
            self._free.append(chunk)

    def inject_double_grant(self, chunk: int) -> None:
        """Fault injection: put an allocated chunk back on the free list.

        Models corrupted free-list state in which the same chunk can be
        granted to two pages.  Detected by :meth:`check_books` and
        repaired by :meth:`repair_books`.
        """
        if chunk not in self._allocated:
            raise ValueError(f"chunk {chunk} is not allocated")
        self._free.append(chunk)

    def check_books(self) -> List[str]:
        """Self-check the free/allocated books; return problem strings.

        Flags duplicate free-list entries, chunks that are simultaneously
        free and allocated (double-grant state), out-of-range ids, and —
        only when the books are otherwise clean — conservation failures
        (chunks tracked by no list).
        """
        problems: List[str] = []
        free_set = set(self._free)
        if len(free_set) != len(self._free):
            problems.append(
                f"{len(self._free) - len(free_set)} duplicate free-list "
                f"entries")
        for chunk in sorted(free_set & self._allocated):
            problems.append(f"chunk {chunk} is both free and allocated")
        for chunk in sorted(free_set | self._allocated):
            if not 0 <= chunk < self.total_chunks:
                problems.append(f"chunk {chunk} is out of range")
        if not problems:
            covered = len(free_set) + len(self._allocated) + len(self._seized)
            if covered != self.total_chunks:
                problems.append(
                    f"books cover {covered} of {self.total_chunks} chunks")
        return problems

    def repair_books(self) -> int:
        """Drop free-list entries that are duplicated or still allocated.

        Returns the number of entries removed.  This is the recovery
        path for double-grant corruption: the allocated copy wins and
        the bogus free-list entry is discarded.
        """
        seen: set = set()
        kept: List[int] = []
        for chunk in self._free:
            if chunk in self._allocated or chunk in seen:
                continue
            seen.add(chunk)
            kept.append(chunk)
        repaired = len(self._free) - len(kept)
        self._free = kept
        return repaired


class VariableAllocator:
    """Contiguous variable-sized region allocator (the §II-D alternative).

    Implemented as a binary buddy allocator over 512 B..4 KB blocks,
    which is the sophistication the paper says this scheme demands.
    External fragmentation shows up as free chunks that cannot satisfy a
    large contiguous request.
    """

    def __init__(self, memory_bytes: int, chunk_size: int = 512,
                 max_block: int = 4096) -> None:
        if memory_bytes % max_block:
            raise ValueError("memory size must be a multiple of the max block")
        self.chunk_size = chunk_size
        self.max_block = max_block
        self.total_chunks = memory_bytes // chunk_size
        self._orders = (max_block // chunk_size).bit_length() - 1  # e.g. 3
        # free lists per order: order o holds blocks of chunk_size << o.
        self._free_lists: List[List[int]] = [[] for _ in range(self._orders + 1)]
        self._free_lists[self._orders] = list(
            range(0, self.total_chunks, max_block // chunk_size)
        )
        self._allocated: Dict[int, int] = {}  # base chunk -> order
        # Blocks removed from circulation by seize() (fault injection).
        self._seized: Dict[int, int] = {}     # base chunk -> order

    def _order_for(self, size_bytes: int) -> int:
        if size_bytes <= 0 or size_bytes > self.max_block:
            raise ValueError(f"unsupported region size {size_bytes}")
        order = 0
        while (self.chunk_size << order) < size_bytes:
            order += 1
        return order

    def allocate_region(self, size_bytes: int) -> int:
        """Allocate one contiguous region, returning its base chunk id."""
        order = self._order_for(size_bytes)
        chosen = None
        for o in range(order, self._orders + 1):
            if self._free_lists[o]:
                chosen = o
                break
        if chosen is None:
            raise OutOfMemoryError(
                f"no contiguous region of {size_bytes} B available "
                f"({self.free_chunks * self.chunk_size} B free but fragmented)"
            )
        base = self._free_lists[chosen].pop()
        # Split down to the requested order, buddy-style.
        while chosen > order:
            chosen -= 1
            buddy = base + (1 << chosen)
            self._free_lists[chosen].append(buddy)
        self._allocated[base] = order
        return base

    def free_region(self, base: int) -> None:
        """Free a region and coalesce with free buddies."""
        if base not in self._allocated:
            raise ValueError(f"double free of region at chunk {base}")
        order = self._allocated.pop(base)
        while order < self._orders:
            buddy = base ^ (1 << order)
            if buddy not in self._free_lists[order]:
                break
            self._free_lists[order].remove(buddy)
            base = min(base, buddy)
            order += 1
        self._free_lists[order].append(base)

    def region_size_bytes(self, base: int) -> int:
        return self.chunk_size << self._allocated[base]

    def owned_regions(self) -> Dict[int, int]:
        """Snapshot of allocated regions: base chunk id -> size in bytes.

        Used by the memory-model sanitizer (``repro.check.sanitizer``)
        to reconcile the buddy allocator's books against the regions
        page state actually references.
        """
        return {base: self.chunk_size << order
                for base, order in self._allocated.items()}

    @property
    def free_chunks(self) -> int:
        return sum(
            len(blocks) << order
            for order, blocks in enumerate(self._free_lists)
        )

    @property
    def used_chunks(self) -> int:
        return self.total_chunks - self.free_chunks

    @property
    def used_bytes(self) -> int:
        return self.used_chunks * self.chunk_size

    def largest_free_region(self) -> int:
        for order in range(self._orders, -1, -1):
            if self._free_lists[order]:
                return self.chunk_size << order
        return 0

    def stats(self) -> AllocatorStats:
        # Fragmented = free space that cannot serve a max-size request.
        frag = 0
        if not self._free_lists[self._orders]:
            frag = self.free_chunks
        return AllocatorStats(self.total_chunks, self.used_chunks, frag)

    def observe(self, registry, prefix: str = "allocator") -> None:
        """Publish occupancy/fragmentation gauges to a MetricRegistry."""
        self.stats().observe(registry, prefix)
        registry.gauge(f"{prefix}.largest_free_region_bytes").set(
            self.largest_free_region())

    def chunk_base_address(self, chunk: int) -> int:
        return chunk * self.chunk_size

    # -- fault injection and self-check (docs/ROBUSTNESS.md) --------------

    def seize(self, count: int) -> List[int]:
        """Remove free blocks totalling up to ``count`` chunks.

        Small blocks go first so large contiguous regions are the last
        to disappear — exhaustion then also manifests as fragmentation,
        which is this allocator's §II-D failure mode.  Returns the base
        chunk ids of the seized blocks for :meth:`restore`.
        """
        seized: List[int] = []
        remaining = count
        for order in range(self._orders + 1):
            blocks = self._free_lists[order]
            while blocks and remaining > 0:
                base = blocks.pop()
                self._seized[base] = order
                seized.append(base)
                remaining -= 1 << order
            if remaining <= 0:
                break
        return seized

    def restore(self, bases) -> None:
        """Return blocks taken by :meth:`seize`, coalescing buddies."""
        for base in bases:
            if base not in self._seized:
                raise ValueError(f"region at chunk {base} was not seized")
            order = self._seized.pop(base)
            # Route through free_region so adjacent buddies re-coalesce.
            self._allocated[base] = order
            self.free_region(base)

    def inject_double_grant(self, base: int) -> None:
        """Fault injection: put an allocated region back on its free list.

        Detected by :meth:`check_books`, repaired by :meth:`repair_books`.
        """
        if base not in self._allocated:
            raise ValueError(f"region at chunk {base} is not allocated")
        self._free_lists[self._allocated[base]].append(base)

    def check_books(self) -> List[str]:
        """Self-check the buddy books; return problem strings.

        Walks every free, allocated and seized block and flags chunk
        ranges claimed twice (double-grant state, duplicate free-list
        entries, overlapping splits) plus, when otherwise clean,
        conservation failures.
        """
        problems: List[str] = []
        owner: Dict[int, str] = {}

        def claim(base: int, order: int, kind: str) -> None:
            for chunk in range(base, base + (1 << order)):
                if chunk in owner:
                    problems.append(
                        f"chunk {chunk} claimed by {kind} block at {base} "
                        f"and by {owner[chunk]}")
                    return
                owner[chunk] = f"{kind}@{base}"

        for order, blocks in enumerate(self._free_lists):
            for base in blocks:
                claim(base, order, "free")
        for base, order in self._allocated.items():
            claim(base, order, "allocated")
        for base, order in self._seized.items():
            claim(base, order, "seized")
        if not problems and len(owner) != self.total_chunks:
            problems.append(
                f"books cover {len(owner)} of {self.total_chunks} chunks")
        return problems

    def repair_books(self) -> int:
        """Drop free-list blocks overlapping allocated or seized regions.

        Returns the number of blocks removed (the allocated copy wins,
        mirroring :meth:`ChunkAllocator.repair_books`).
        """
        busy: set = set()
        for base, order in self._allocated.items():
            busy.update(range(base, base + (1 << order)))
        for base, order in self._seized.items():
            busy.update(range(base, base + (1 << order)))
        repaired = 0
        seen: set = set()
        for order, blocks in enumerate(self._free_lists):
            kept: List[int] = []
            for base in blocks:
                span = range(base, base + (1 << order))
                if (base, order) in seen or any(c in busy for c in span):
                    repaired += 1
                    continue
                seen.add((base, order))
                kept.append(base)
            self._free_lists[order] = kept
        return repaired
