"""Fault campaigns: sweep fault sites x rates, reconcile outcomes.

A campaign cell runs one cycle-based simulation with a seeded
:class:`~repro.inject.FaultInjector` and ``sanitize="recover"``, then
reconciles every committed :class:`~repro.inject.FaultRecord` against
the trace: did a ``fault_detected`` event flag it, did a ``recovery_*``
event absorb it, or did it persist undetected?  The headline
robustness claim (docs/ROBUSTNESS.md) is that the **silent** column —
corruption that neither detection nor recovery ever saw — is zero.

Outcome classes per fault:

* **detected** — a detection event for the afflicted structure at or
  after the injection clock (``fault_detected``; for allocator
  exhaustion, entering the pressure path: ``degraded_enter``,
  ``emergency_repack``, ``alloc_denied`` or ``balloon_inflation``).
* **recovered** — a recovery event followed: the page rebuilt
  uncompressed (or parked safely via ``alloc_denied``), the cache
  entry invalidated, the books repaired, or the degraded mode exited.
* **masked** — an exhaustion fault that never came under allocation
  pressure before the run ended: nothing to detect.
* **silent** — a corruption fault with no matching detection event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs import Tracer
from ..simulation.simulator import SimulationConfig, simulate
from ..workloads.profiles import get_profile
from .faults import SITES, FaultInjector, FaultRecord, FaultSpec

#: Event names that count as *detection*, per fault site.
_DETECT = {
    "line": ("fault_detected",),
    "meta": ("fault_detected",),
    "mdcache": ("fault_detected",),
    "double-grant": ("fault_detected",),
    "alloc-exhaust": ("degraded_enter", "emergency_repack",
                      "alloc_denied", "balloon_inflation"),
}

#: Event names that count as *recovery*, per fault site.
_RECOVER = {
    "line": ("recovery_uncompressed", "alloc_denied"),
    "meta": ("recovery_uncompressed", "alloc_denied"),
    "mdcache": ("recovery_mdcache",),
    "double-grant": ("recovery_alloc_books",),
    "alloc-exhaust": ("alloc_denied", "emergency_repack", "degraded_exit"),
}

#: Sites whose faults corrupt state (an undetected one is *silent*);
#: the rest exert pressure (an unexercised one is *masked*).
_CORRUPTION_SITES = ("line", "meta", "mdcache", "double-grant")


@dataclass
class CellOutcome:
    """Reconciled outcome of one (site, rate) campaign cell."""

    site: str
    rate: float
    injected: int = 0
    detected: int = 0
    recovered: int = 0
    masked: int = 0
    silent: int = 0
    #: fault_id -> ("detected"/"recovered"/"masked"/"silent")
    outcomes: Dict[int, str] = field(default_factory=dict)

    def as_row(self) -> Dict[str, object]:
        return {"site": self.site, "rate": self.rate,
                "injected": self.injected, "detected": self.detected,
                "recovered": self.recovered, "masked": self.masked,
                "silent": self.silent}


def matches(events, names: Tuple[str, ...], page: Optional[int] = None,
            clock: int = 0, invariant: Optional[str] = None) -> bool:
    """Is there an event in ``names`` for this fault at/after ``clock``?

    Shared by the fault campaign and the pressure campaign
    (repro.pressure, docs/PRESSURE.md): both reconcile per-record
    outcomes against the trace by (name set, page, clock) filters.
    """
    for event in events:
        if event.name not in names or event.clock < clock:
            continue
        if page is not None and event.page != page:
            continue
        if invariant is not None:
            listed = (event.args or {}).get("invariants", ())
            if invariant not in listed:
                continue
        return True
    return False


def reconcile(records: Sequence[FaultRecord], events) -> CellOutcome:
    """Classify every fault record against the trace events.

    ``site``/``rate`` on the returned outcome are filled by the caller;
    mixed-site record lists are fine (each record carries its site).
    """
    outcome = CellOutcome(site="", rate=0.0)
    for record in records:
        outcome.injected += 1
        # Global-books faults carry no page; match on the invariant
        # name instead so a page-scoped detection cannot stand in.
        invariant = "alloc-books" if record.site == "double-grant" else None
        page = record.page if record.site in _CORRUPTION_SITES else None
        detected = matches(events, _DETECT[record.site], page,
                           record.clock, invariant)
        recovered = detected and matches(
            events, _RECOVER[record.site], page, record.clock)
        if detected:
            outcome.detected += 1
            if recovered:
                outcome.recovered += 1
            outcome.outcomes[record.fault_id] = (
                "recovered" if recovered else "detected")
        elif record.site in _CORRUPTION_SITES:
            outcome.silent += 1
            outcome.outcomes[record.fault_id] = "silent"
        else:
            outcome.masked += 1
            outcome.outcomes[record.fault_id] = "masked"
    return outcome


def campaign_cell(site: str, rate: float, benchmark: str = "gcc",
                  system: str = "compresso", seed: int = 0,
                  n_events: int = 2000, scale: float = 0.05,
                  burst: int = 1) -> CellOutcome:
    """Run one fault-injection simulation and reconcile its records."""
    tracer = Tracer()
    injector = FaultInjector(FaultSpec(site, rate, burst), seed=seed)
    sim = SimulationConfig(n_events=n_events, scale=scale, seed=seed,
                           sanitize="recover")
    simulate(get_profile(benchmark), system, sim, tracer=tracer,
             injector=injector)
    outcome = reconcile(injector.records, tracer.events)
    outcome.site = site
    outcome.rate = rate
    return outcome


class FaultCampaign:
    """Sweep fault sites x rates; report per-cell outcome counts.

    The driver behind ``python -m repro.analysis run --filter faults``:
    every cell must end with ``silent == 0`` — detection coverage is
    the deliverable, not performance.
    """

    def __init__(self, sites: Sequence[str] = _CORRUPTION_SITES
                 + ("alloc-exhaust",),
                 rates: Sequence[float] = (0.005, 0.02),
                 benchmark: str = "gcc", system: str = "compresso",
                 seed: int = 0, n_events: int = 2000,
                 scale: float = 0.05) -> None:
        unknown = [site for site in sites if site not in SITES]
        if unknown:
            raise ValueError(f"unknown fault sites: {unknown}")
        self.sites = tuple(sites)
        self.rates = tuple(rates)
        self.benchmark = benchmark
        self.system = system
        self.seed = seed
        self.n_events = n_events
        self.scale = scale
        self.cells: List[CellOutcome] = []

    def run(self) -> List[CellOutcome]:
        """Run every (site, rate) cell; cells are cached on the instance."""
        self.cells = [
            campaign_cell(site, rate, benchmark=self.benchmark,
                          system=self.system, seed=self.seed,
                          n_events=self.n_events, scale=self.scale)
            for site in self.sites for rate in self.rates
        ]
        return self.cells

    @property
    def silent_corruptions(self) -> int:
        return sum(cell.silent for cell in self.cells)

    def rows(self) -> List[Dict[str, object]]:
        return [cell.as_row() for cell in self.cells]
