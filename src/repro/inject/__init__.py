"""Fault injection and recovery campaigns (docs/ROBUSTNESS.md).

Deterministic, seedable corruption of the compressed-memory model's
internal structures, plus the campaign driver that reconciles injected
faults against the detection (``fault_*``) and recovery
(``recovery_*``) trace events.
"""

from .campaign import (
    CellOutcome,
    FaultCampaign,
    campaign_cell,
    matches,
    reconcile,
)
from .faults import (
    SITES,
    FaultInjector,
    FaultRecord,
    FaultSpec,
    parse_fault_spec,
)

__all__ = [
    "SITES",
    "FaultInjector",
    "FaultRecord",
    "FaultSpec",
    "parse_fault_spec",
    "CellOutcome",
    "FaultCampaign",
    "campaign_cell",
    "matches",
    "reconcile",
]
