"""Deterministic, seedable fault injection for the Compresso model.

The injector perturbs the controller's *internal* structures — shadow
line data, metadata entries, metadata-cache entries, allocator books —
the way bit flips and logic bugs would, then lets the detect-and-
recover machinery (``sanitize="recover"``, docs/ROBUSTNESS.md) find
and absorb the damage.  Everything is driven by one ``random.Random``
seed, so a campaign replays exactly.

Fault sites (:data:`SITES`):

* ``line`` — flip a bit in a compressed line's shadow payload; the
  recorded ideal size no longer matches what the data compresses to
  (``data-desync``).  Only lines whose flip provably changes the
  compressed size are targeted; flips that leave the size unchanged
  are outside this fault model (they would need ECC modelling).
* ``meta`` — corrupt a page's metadata entry: size field out of range,
  line-bin scramble (layout desync), out-of-range inflation pointer,
  or an out-of-range MPFN (512 B-chunk allocation only).  Every
  variant violates a sanitizer invariant by construction.
* ``mdcache`` — corrupt a resident metadata-cache entry: flip its
  half/full shape or remap it to the wrong page (``mdcache-desync``).
* ``alloc-exhaust`` — seize the allocator's entire free pool, forcing
  the next allocation into the ballooning / emergency-repack /
  degraded-mode path; :meth:`FaultInjector.release_seized` gives the
  pool back.
* ``double-grant`` — put an allocated chunk (or buddy region) back on
  the free list, the classic allocator bug (``alloc-books``).

After committing a corruption fault the injector runs
``controller.scrub(...)`` (a modelled background scrubber pass) so
detection is immediate and deterministic; pass ``scrub=False`` to
leave faults latent until the controller's own sanitize hooks see
them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from ..obs.tracer import NULL_TRACER

#: Recognised fault sites, in spec-grammar order.
SITES = ("line", "meta", "mdcache", "alloc-exhaust", "double-grant")

#: Bit flips attempted before falling back to an incompressible fill.
_BIT_FLIP_RETRIES = 8


@dataclass(frozen=True)
class FaultSpec:
    """One site's injection schedule: Bernoulli(rate) per step."""

    site: str
    rate: float
    burst: int = 1      # faults committed per firing step

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; expected one of {SITES}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.burst < 1:
            raise ValueError(f"fault burst must be >= 1, got {self.burst}")


def parse_fault_spec(text: str) -> List[FaultSpec]:
    """Parse the ``site:rate[:burst]`` comma-separated spec grammar.

    Example: ``"line:0.01,meta:0.005,alloc-exhaust:0.001:1"``.  This is
    the grammar behind ``SimulationConfig.faults`` and the CLI's
    ``--inject`` flag (docs/ROBUSTNESS.md).
    """
    specs: List[FaultSpec] = []
    for part in str(text).split(","):
        part = part.strip()
        if not part:
            continue
        fields = part.split(":")
        if len(fields) not in (2, 3):
            raise ValueError(
                f"bad fault spec {part!r}: expected site:rate[:burst]")
        try:
            rate = float(fields[1])
            burst = int(fields[2]) if len(fields) == 3 else 1
        except ValueError:
            raise ValueError(
                f"bad fault spec {part!r}: rate must be a float and "
                f"burst an int") from None
        specs.append(FaultSpec(fields[0].strip(), rate, burst))
    if not specs:
        raise ValueError(f"empty fault spec: {text!r}")
    return specs


@dataclass(frozen=True)
class FaultRecord:
    """One committed fault, for campaign reconciliation."""

    fault_id: int
    site: str
    page: Optional[int]      # afflicted OSPA page; None for global sites
    clock: int               # tracer clock at injection time
    detail: str


class FaultInjector:
    """Commits faults against a bound controller on a seeded schedule.

    Args:
        spec: a spec string (``parse_fault_spec`` grammar), a single
            :class:`FaultSpec`, or a sequence of them.
        seed: drives every random choice (schedule and targets).
        scrub: run ``controller.scrub`` after each corruption fault so
            detection is immediate; disable to model latent faults.
    """

    def __init__(self, spec: Union[str, FaultSpec, Sequence[FaultSpec]],
                 seed: int = 0, scrub: bool = True) -> None:
        if isinstance(spec, str):
            self.specs = parse_fault_spec(spec)
        elif isinstance(spec, FaultSpec):
            self.specs = [spec]
        else:
            self.specs = list(spec)
            if not self.specs:
                raise ValueError("no fault specs given")
        self.rng = random.Random(seed)
        self.scrub = scrub
        self.records: List[FaultRecord] = []
        self.skipped = 0                    # firings with no eligible target
        self.controller = None
        self.tracer = NULL_TRACER
        self._seized: List[List[int]] = []  # seize() groups, for release

    def bind(self, controller, tracer=None) -> "FaultInjector":
        """Attach the controller (and its tracer) to inject into."""
        self.controller = controller
        self.tracer = tracer if tracer is not None else controller.tracer
        return self

    # -- schedule ---------------------------------------------------------

    def step(self) -> List[FaultRecord]:
        """One injection opportunity: Bernoulli draw per spec.

        Returns the records committed this step (usually empty).
        """
        if self.controller is None:
            raise RuntimeError("injector not bound to a controller")
        committed: List[FaultRecord] = []
        for spec in self.specs:
            if self.rng.random() >= spec.rate:
                continue
            for _ in range(spec.burst):
                record = self.inject(spec.site)
                if record is not None:
                    committed.append(record)
        return committed

    def inject(self, site: str) -> Optional[FaultRecord]:
        """Commit one fault at ``site`` now; None if no eligible target."""
        handler = {
            "line": self._inject_line,
            "meta": self._inject_meta,
            "mdcache": self._inject_mdcache,
            "alloc-exhaust": self._inject_exhaust,
            "double-grant": self._inject_double_grant,
        }[site]
        hit = handler()
        if hit is None:
            self.skipped += 1
            return None
        page, detail = hit
        record = FaultRecord(len(self.records), site, page,
                             self.tracer.clock, detail)
        self.records.append(record)
        self.tracer.emit("fault_injected", page=page,
                         fault_id=record.fault_id, site=site, detail=detail)
        if self.scrub and site in ("line", "meta", "mdcache"):
            self.controller.scrub(page)
        elif self.scrub and site == "double-grant":
            # Books are global state: only a full sweep checks them.
            self.controller.scrub()
        return record

    def release_seized(self) -> int:
        """Give back everything ``alloc-exhaust`` faults seized."""
        allocator = self.controller.memory.allocator
        released = 0
        for group in self._seized:
            allocator.restore(group)
            released += len(group)
        self._seized = []
        return released

    # -- fault sites ------------------------------------------------------

    def _compressed_pages(self):
        """Valid non-zero pages, in deterministic insertion order."""
        return [(page, state) for page, state in self.controller.pages.items()
                if state.meta.valid and not state.meta.zero]

    def _inject_line(self):
        """Bit-flip a compressible line's shadow payload (data-desync)."""
        controller = self.controller
        line_size = controller.config.line_size
        candidates = []
        for page, state in self._compressed_pages():
            lines = [line for line, data in enumerate(state.data)
                     if data is not None
                     and 0 < state.ideal_sizes[line] < line_size]
            if lines:
                candidates.append((page, state, lines))
        if not candidates:
            return None
        page, state, lines = self.rng.choice(candidates)
        line = self.rng.choice(lines)
        data = state.data[line]
        recorded = state.ideal_sizes[line]
        for _ in range(_BIT_FLIP_RETRIES):
            flipped = bytearray(data)
            index = self.rng.randrange(len(flipped))
            flipped[index] ^= 1 << self.rng.randrange(8)
            flipped = bytes(flipped)
            if controller._sizes.size_bytes(flipped) != recorded:
                state.data[line] = flipped
                return page, f"line {line} bit flip at byte {index}"
        # Flips that keep the size are invisible to the size check;
        # model an uncorrectable burst instead (always size-visible,
        # since the line was compressible and this fill is not).
        filled = bytes(self.rng.getrandbits(8) for _ in range(len(data)))
        if controller._sizes.size_bytes(filled) == recorded:
            return None
        state.data[line] = filled
        return page, f"line {line} burst corruption"

    def _inject_meta(self):
        """Corrupt one metadata entry with an invariant-visible variant."""
        controller = self.controller
        config = controller.config
        pages = self._compressed_pages()
        if not pages:
            return None
        page, state = self.rng.choice(pages)
        meta = state.meta
        variants = ["size", "inflate"]
        if meta.compressed and state.layout is not None:
            variants.append("bin")
        if config.allocation == "chunks" and meta.mpfns:
            variants.append("mpfn")
        variant = self.rng.choice(variants)
        if variant == "size":
            meta.size_chunks = (config.max_chunks_per_page + 1
                                + self.rng.randrange(4))
            return page, f"size_chunks scrambled to {meta.size_chunks}"
        if variant == "inflate":
            bogus = config.lines_per_page + self.rng.randrange(4)
            meta.inflated_lines.append(bogus)
            return page, f"inflation pointer to bogus line {bogus}"
        if variant == "bin":
            line = self.rng.randrange(config.lines_per_page)
            n_bins = len(config.line_bins)
            shift = 1 + self.rng.randrange(n_bins - 1)
            meta.line_bins[line] = (meta.line_bins[line] + shift) % n_bins
            return page, f"line {line} bin scrambled"
        mpfn_index = self.rng.randrange(len(meta.mpfns))
        bogus = (controller.memory.allocator.total_chunks
                 + self.rng.randrange(8))
        meta.mpfns[mpfn_index] = bogus
        return page, f"MPFN {mpfn_index} scrambled to {bogus}"

    def _inject_mdcache(self):
        """Corrupt a resident metadata-cache entry (mdcache-desync)."""
        entries = self.controller.metadata_cache.entry_items()
        if not entries:
            return None
        page, entry = self.rng.choice(entries)
        if self.rng.random() < 0.5:
            entry.half = not entry.half
            return page, "cache entry half/full shape flipped"
        entry.page = page + 1
        return page, "cache entry remapped to the wrong page"

    def _inject_exhaust(self):
        """Seize the entire free pool (allocation-pressure fault)."""
        allocator = self.controller.memory.allocator
        free = allocator.free_chunks
        if not free:
            return None
        group = allocator.seize(free)
        self._seized.append(group)
        return None, f"seized {free} free chunks"

    def _inject_double_grant(self):
        """Re-list an allocated chunk/region as free (alloc-books)."""
        allocator = self.controller.memory.allocator
        if self.controller.config.allocation == "chunks":
            owned = sorted(allocator.owned_chunks())
            kind = "chunk"
        else:
            owned = sorted(allocator.owned_regions())
            kind = "region"
        if not owned:
            return None
        target = self.rng.choice(owned)
        allocator.inject_double_grant(target)
        return None, f"double-granted {kind} {target}"
