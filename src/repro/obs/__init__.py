"""Observability: event tracing, metrics, timelines, exporters.

See docs/OBSERVABILITY.md for the event schema, clock semantics, and
exporter formats.  Quick tour:

* :class:`Tracer` / :data:`NULL_TRACER` — structured controller events
  on a simulated-access clock (``repro.obs.tracer``);
* :class:`MetricRegistry` — named counters/gauges/histograms plus
  pull-metric binding for ``ControllerStats`` (``repro.obs.metrics``);
* :func:`build_timeline` / :func:`timeline_digest` — windowed §IV
  extra-access breakdown (``repro.obs.timeline``);
* :func:`chrome_trace` and friends — Perfetto-loadable JSON, CSV, and
  terminal exporters (``repro.obs.export``).
"""

from .export import (
    chrome_trace,
    events_csv,
    summary,
    timeline_csv,
    write_chrome_trace,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    sample_controller,
)
from .timeline import TimelineWindow, build_timeline, timeline_digest
from .tracer import (
    EVENT_SOURCES,
    NULL_TRACER,
    SOURCES,
    NullTracer,
    TraceEvent,
    Tracer,
    filter_events,
    known_event,
)

__all__ = [
    "EVENT_SOURCES",
    "NULL_TRACER",
    "SOURCES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "NullTracer",
    "TraceEvent",
    "Tracer",
    "TimelineWindow",
    "build_timeline",
    "chrome_trace",
    "events_csv",
    "filter_events",
    "known_event",
    "sample_controller",
    "summary",
    "timeline_csv",
    "timeline_digest",
    "write_chrome_trace",
]
