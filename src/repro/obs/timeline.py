"""Windowed timeline aggregation of trace events (the Fig. 4 breakdown
*over time*).

Events are bucketed by their simulated-access clock into fixed-width
windows; each window accumulates the extra accesses attributed to the
three §IV sources (split / overflow / metadata) plus raw event counts.
Because every extra-access-bearing event carries its ``extra`` delta,
the per-source window totals sum exactly to the run's
``ControllerStats.extra_accesses`` — the timeline is a lossless
decomposition of the aggregate metric in time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from .tracer import EVENT_SOURCES, SOURCES, TraceEvent


@dataclass
class TimelineWindow:
    """Aggregates for one clock window ``[start_clock, end_clock)``."""

    index: int
    start_clock: int
    end_clock: int
    extra_by_source: Dict[str, int] = field(
        default_factory=lambda: {source: 0 for source in SOURCES})
    event_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def total_extra(self) -> int:
        return sum(self.extra_by_source.values())

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "start_clock": self.start_clock,
            "end_clock": self.end_clock,
            "total_extra": self.total_extra,
            **{source: self.extra_by_source[source] for source in SOURCES},
            "events": dict(sorted(self.event_counts.items())),
        }


def build_timeline(events: Iterable[TraceEvent], window: int,
                   end_clock: Optional[int] = None) -> List[TimelineWindow]:
    """Bucket events into fixed-width clock windows.

    Windows are contiguous from clock 0 through the last event (or
    ``end_clock`` when given, so trailing quiet windows appear too);
    empty windows are materialized so the timeline has no gaps.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    events = list(events)
    last_clock = max([event.clock for event in events], default=0)
    if end_clock is not None:
        last_clock = max(last_clock, end_clock - 1)
    n_windows = last_clock // window + 1 if (events or end_clock) else 0
    windows = [
        TimelineWindow(index=i, start_clock=i * window,
                       end_clock=(i + 1) * window)
        for i in range(n_windows)
    ]
    for event in events:
        bucket = windows[min(event.clock // window, n_windows - 1)]
        bucket.event_counts[event.name] = (
            bucket.event_counts.get(event.name, 0) + 1)
        source = EVENT_SOURCES.get(event.name)
        if source is not None:
            bucket.extra_by_source[source] += event.extra
    return windows


def timeline_digest(events: Iterable[TraceEvent], window: int,
                    end_clock: Optional[int] = None) -> dict:
    """Compact JSON summary of a timeline (journaled with ``unit_end``).

    Carries the window width, per-source extra-access totals (summing
    to ``ControllerStats.extra_accesses``), the busiest window, and the
    total event count — enough to spot a phase pathology from the
    journal without shipping the full event log.
    """
    windows = build_timeline(events, window, end_clock=end_clock)
    by_source = {source: 0 for source in SOURCES}
    n_events = 0
    peak: Optional[TimelineWindow] = None
    for win in windows:
        for source in SOURCES:
            by_source[source] += win.extra_by_source[source]
        n_events += sum(win.event_counts.values())
        if peak is None or win.total_extra > peak.total_extra:
            peak = win
    return {
        "window": window,
        "n_windows": len(windows),
        "events": n_events,
        "extra_accesses": sum(by_source.values()),
        "by_source": by_source,
        "peak": ({"index": peak.index, "start_clock": peak.start_clock,
                  "extra": peak.total_extra} if peak is not None else None),
    }
