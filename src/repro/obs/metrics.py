"""Named metric registry: counters, gauges, histograms, pull-sources.

``MetricRegistry`` is the uniform namespace every model component
publishes its numbers into.  Two styles coexist:

* **push** metrics — :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` objects handed out by the registry and mutated by
  the owner;
* **pull** metrics — a name registered with a zero-argument callable,
  evaluated at :meth:`MetricRegistry.collect` time.  This is how
  :class:`~repro.core.stats.ControllerStats` is rebased onto the
  registry (``stats.bind_registry(reg)``): the hot-path ``+=`` sites
  keep their native-speed integer fields, and the registry reads them
  lazily, Prometheus-collector style, so observation costs nothing
  until someone actually collects.

Distribution metrics the paper cares about (compressed-line-size and
page-size histograms, metadata-cache occupancy, free-space
fragmentation) are sampled from a live controller with
:func:`sample_controller`.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Dict, List, Optional, Sequence


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only increase")
        self.value += n


class Gauge:
    """A named point-in-time value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram over non-negative observations.

    ``bounds`` are inclusive upper edges; one overflow bucket catches
    everything beyond the last edge (bounded by the tracked maximum,
    so :meth:`percentile` stays finite).
    """

    __slots__ = ("name", "bounds", "counts", "total", "count", "maximum")

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be sorted and non-empty")
        self.name = name
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0
        self.maximum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the q-th percentile (``0 <= q <= 100``).

        Linear interpolation within the covering bucket — the usual
        fixed-bucket estimate (Prometheus ``histogram_quantile``
        style); exact whenever a bucket holds a single distinct value
        (e.g. the 8-byte line-size steps).  The overflow bucket is
        capped at the maximum ever observed.  Returns 0.0 for an empty
        histogram.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        target = (q / 100.0) * self.count
        cumulative = 0
        previous = min(0.0, self.bounds[0])
        for bound, count in zip(self.bounds, self.counts):
            if count:
                if cumulative + count >= target:
                    fraction = (target - cumulative) / count
                    fraction = max(0.0, min(1.0, fraction))
                    return previous + (bound - previous) * fraction
                cumulative += count
            previous = bound
        return self.maximum

    def as_dict(self) -> Dict[str, Any]:
        buckets = {}
        previous = None
        for bound, count in zip(self.bounds, self.counts):
            label = (f"<={bound:g}" if previous is None
                     else f"{previous:g}..{bound:g}")
            buckets[label] = count
            previous = bound
        buckets[f">{self.bounds[-1]:g}"] = self.counts[-1]
        return {"count": self.count, "mean": self.mean,
                "p50": self.percentile(50.0),
                "p95": self.percentile(95.0),
                "p99": self.percentile(99.0),
                "buckets": buckets}


class MetricRegistry:
    """Flat namespace of named metrics (dotted names by convention)."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}
        self._sources: Dict[str, Callable[[], Any]] = {}

    def counter(self, name: str) -> Counter:
        return self._get_or_make(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_make(name, Gauge)

    def histogram(self, name: str, bounds: Sequence[float]) -> Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            metric = Histogram(name, bounds)
            self._metrics[name] = metric
        elif not isinstance(metric, Histogram):
            raise TypeError(f"metric {name!r} is a {type(metric).__name__}")
        return metric

    def register(self, name: str, source: Callable[[], Any]) -> None:
        """Register a pull metric, read at :meth:`collect` time."""
        if name in self._metrics:
            raise ValueError(f"metric {name!r} already registered")
        self._sources[name] = source

    def names(self) -> List[str]:
        return sorted(set(self._metrics) | set(self._sources))

    def collect(self) -> Dict[str, Any]:
        """Evaluate every metric into a plain (JSON-ready) dict."""
        out: Dict[str, Any] = {}
        for name, metric in self._metrics.items():
            out[name] = (metric.as_dict() if isinstance(metric, Histogram)
                         else metric.value)
        for name, source in self._sources.items():
            out[name] = source()
        return dict(sorted(out.items()))

    def _get_or_make(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(f"metric {name!r} is a {type(metric).__name__}")
        return metric


#: Compressed-line sizes fall in 8-byte steps up to the 64 B raw line.
LINE_SIZE_BOUNDS = (0, 8, 16, 24, 32, 40, 48, 56, 64)
#: Page allocations in 512 B chunks (8 = uncompressed 4 KB).
PAGE_CHUNK_BOUNDS = (0, 1, 2, 3, 4, 5, 6, 7, 8)


def sample_controller(controller,
                      registry: Optional[MetricRegistry] = None
                      ) -> MetricRegistry:
    """Snapshot a controller's distributions and occupancy into a registry.

    Populates the compressed-line-size and page-size histograms over
    all resident pages, the metadata-cache occupancy gauge, and the
    allocator's free-space/fragmentation gauges, and binds the
    controller's :class:`~repro.core.stats.ControllerStats` counters
    as pull metrics.
    """
    registry = registry if registry is not None else MetricRegistry()
    controller.stats.bind_registry(registry)
    lines = registry.histogram("lines.compressed_size_bytes",
                               LINE_SIZE_BOUNDS)
    pages = registry.histogram("pages.size_chunks", PAGE_CHUNK_BOUNDS)
    resident = compressed = 0
    for state in controller.pages.values():
        if not state.meta.valid:
            continue
        resident += 1
        compressed += int(state.meta.compressed)
        pages.observe(state.meta.size_chunks)
        for size in state.ideal_sizes:
            lines.observe(size)
    registry.gauge("pages.resident").set(resident)
    registry.gauge("pages.compressed").set(compressed)
    registry.gauge("metadata_cache.occupancy").set(
        controller.metadata_cache.occupancy())
    registry.gauge("compression.ratio").set(controller.compression_ratio())
    controller.memory.allocator.observe(registry)
    return registry
