"""Exporters: Chrome trace-event JSON, CSV timelines, terminal summary.

The Chrome trace format (one JSON object with a ``traceEvents`` array)
loads directly into Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``.  Two tracks are emitted:

* **pid 1 — simulated time**: instant events (``ph: "i"``) for every
  trace event, with ``ts`` equal to the simulated-access clock
  (interpreted as microseconds — 1 "us" = 1 demand access), plus
  counter events (``ph: "C"``) carrying the per-window split /
  overflow / metadata extra-access series;
* **pid 2 — wall clock**: complete events (``ph: "X"``) for the
  simulator's wall-clock phases (install / simulate / flush).

CSV exporters cover the windowed timeline and the raw event log;
:func:`summary` renders the terminal report the ``trace`` CLI prints.
"""

from __future__ import annotations

import json
from typing import Iterable, List, Optional

from .timeline import TimelineWindow, build_timeline
from .tracer import SOURCES, TraceEvent, Tracer

#: Track identities in the Chrome trace output.
_SIM_PID = 1
_WALL_PID = 2


def chrome_trace(tracer: Tracer, window: Optional[int] = None) -> dict:
    """Render a tracer's events and phases as a Chrome trace object."""
    window = window or tracer.digest_window
    trace_events: List[dict] = [
        {"ph": "M", "pid": _SIM_PID, "name": "process_name",
         "args": {"name": "simulated clock (1us = 1 demand access)"}},
        {"ph": "M", "pid": _SIM_PID, "tid": 1, "name": "thread_name",
         "args": {"name": "events"}},
        {"ph": "M", "pid": _WALL_PID, "name": "process_name",
         "args": {"name": "wall clock"}},
        {"ph": "M", "pid": _WALL_PID, "tid": 1, "name": "thread_name",
         "args": {"name": "phases"}},
    ]
    for event in tracer.events:
        args = {"extra": event.extra}
        if event.page is not None:
            args["page"] = event.page
        if event.args:
            args.update(event.args)
        trace_events.append({
            "name": event.name, "ph": "i", "s": "t",
            "ts": event.clock, "pid": _SIM_PID, "tid": 1, "args": args,
        })
    for win in build_timeline(tracer.events, window,
                              end_clock=tracer.clock):
        trace_events.append({
            "name": "extra_accesses", "ph": "C",
            "ts": win.start_clock, "pid": _SIM_PID,
            "args": {source: win.extra_by_source[source]
                     for source in SOURCES},
        })
    for name, start_s, duration_s in tracer.phase_spans:
        trace_events.append({
            "name": name, "ph": "X",
            "ts": start_s * 1e6, "dur": duration_s * 1e6,
            "pid": _WALL_PID, "tid": 1,
        })
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path,
                       window: Optional[int] = None) -> None:
    with open(path, "w") as handle:
        json.dump(chrome_trace(tracer, window=window), handle)


def timeline_csv(windows: Iterable[TimelineWindow]) -> str:
    """Windowed timeline as CSV (one row per window)."""
    lines = ["window,start_clock,end_clock,split,overflow,metadata,"
             "total_extra,events"]
    for win in windows:
        n_events = sum(win.event_counts.values())
        lines.append(
            f"{win.index},{win.start_clock},{win.end_clock},"
            f"{win.extra_by_source['split']},"
            f"{win.extra_by_source['overflow']},"
            f"{win.extra_by_source['metadata']},"
            f"{win.total_extra},{n_events}")
    return "\n".join(lines) + "\n"


def events_csv(events: Iterable[TraceEvent]) -> str:
    """Raw event log as CSV."""
    lines = ["clock,name,source,page,extra"]
    for event in events:
        page = "" if event.page is None else event.page
        lines.append(f"{event.clock},{event.name},{event.source or ''},"
                     f"{page},{event.extra}")
    return "\n".join(lines) + "\n"


def summary(tracer: Tracer, stats=None, registry=None,
            window: Optional[int] = None) -> str:
    """Terminal report: totals, per-source breakdown, busiest windows,
    phase times, and (when a registry is given) sampled distributions."""
    window = window or tracer.digest_window
    lines = ["== trace summary =="]
    lines.append(f"clock: {tracer.clock} demand accesses, "
                 f"{len(tracer.events)} events")
    by_source = tracer.extra_by_source()
    total = sum(by_source.values())
    lines.append(
        "extra accesses: "
        + ", ".join(f"{source}={by_source[source]}" for source in SOURCES)
        + f", total={total}")
    if stats is not None:
        lines.append(f"controller extra_accesses: {stats.extra_accesses} "
                     f"(reconciles: {stats.extra_accesses == total})")
    counts = tracer.counts()
    if counts:
        lines.append("event counts:")
        for name in sorted(counts, key=lambda n: -counts[n]):
            lines.append(f"  {name:<22} {counts[name]}")
    windows = build_timeline(tracer.events, window, end_clock=tracer.clock)
    busiest = sorted(windows, key=lambda w: -w.total_extra)[:5]
    if busiest and busiest[0].total_extra:
        lines.append(f"busiest windows (width {window}):")
        for win in busiest:
            if not win.total_extra:
                break
            lines.append(
                f"  [{win.start_clock:>8}..{win.end_clock:>8}) "
                f"extra={win.total_extra} "
                f"(split={win.extra_by_source['split']} "
                f"overflow={win.extra_by_source['overflow']} "
                f"metadata={win.extra_by_source['metadata']})")
    phases = tracer.phase_seconds()
    if phases:
        lines.append("phases (wall clock):")
        for name, seconds in sorted(phases.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {name:<22} {seconds * 1e3:8.1f} ms")
    if registry is not None:
        collected = registry.collect()
        lines.append("sampled metrics:")
        for name, value in collected.items():
            if isinstance(value, dict):     # histogram
                lines.append(f"  {name}: n={value['count']} "
                             f"mean={value['mean']:.1f} "
                             f"p50={value['p50']:.1f} "
                             f"p95={value['p95']:.1f} "
                             f"p99={value['p99']:.1f}")
            elif isinstance(value, float):
                lines.append(f"  {name}: {value:.3f}")
            else:
                lines.append(f"  {name}: {value}")
    return "\n".join(lines)
