"""Event tracer: structured controller events on a simulated-access clock.

The paper's overhead decomposition (§IV, Figs. 4/6) is a *time series*
phenomenon — overflow storms, repack cascades and metadata-miss bursts
come and go with execution phases — but aggregate counters flatten it.
The tracer captures each such event as it happens, stamped with a
**clock** that counts demand accesses (LLC fills + writebacks), i.e.
the same denominator the Fig. 4 metric uses.  Windowing the events by
clock (``repro.obs.timeline``) recovers the per-phase breakdown.

Two implementations share one interface:

* :data:`NULL_TRACER` (a :class:`NullTracer`) — the zero-overhead
  default.  Every hook is a no-op; instrumented code never branches on
  a flag, it just calls ``tracer.tick()`` / ``tracer.emit(...)`` and
  the null methods return immediately.
* :class:`Tracer` — records :class:`TraceEvent` objects and wall-clock
  phase spans for export.

Event names are registered in :data:`EVENT_SOURCES`, which maps each
to the §IV extra-access source it contributes to (``"split"``,
``"overflow"``, ``"metadata"``) or ``None`` for purely informational
events.  ``scripts/check_instrumentation.py`` lints that every
``stats.<counter> +=`` site in ``core/`` has an adjacent emit and that
every emitted name is registered here.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Tuple

#: §IV extra-access sources (the Fig. 4 stack segments).
SOURCE_SPLIT = "split"
SOURCE_OVERFLOW = "overflow"
SOURCE_METADATA = "metadata"
SOURCES = (SOURCE_SPLIT, SOURCE_OVERFLOW, SOURCE_METADATA)

#: Every known event name -> the extra-access source its ``extra``
#: field is attributed to (None = informational, carries no extra
#: accesses).  The per-source sums over a full trace reconcile exactly
#: with ControllerStats: ``split`` == ``split_accesses``, ``overflow``
#: == ``compression_change_accesses``, ``metadata`` ==
#: ``metadata_miss_accesses + metadata_writebacks``.
EVENT_SOURCES: Dict[str, Optional[str]] = {
    # extra-access-bearing events
    "split_access": SOURCE_SPLIT,
    "overflow_traffic": SOURCE_OVERFLOW,       # line-overflow data movement
    "repack": SOURCE_OVERFLOW,                 # §IV-B4 repack traffic
    "speculation_wasted": SOURCE_OVERFLOW,     # LCP speculative misfire
    "metadata_miss": SOURCE_METADATA,
    "metadata_writeback": SOURCE_METADATA,
    # controller events (no extra-access attribution)
    "zero_line_read": None,
    "zero_line_write": None,
    "prefetch_hit": None,
    "line_overflow": None,
    "line_underflow": None,
    "page_overflow": None,
    "ir_expansion": None,
    "metadata_hit": None,
    "predictor_inflation": None,
    "predictor_fire": None,
    "os_page_fault": None,
    # ballooning (§V-B)
    "balloon_inflation": None,
    "balloon_page_out": None,
    "balloon_reclaim": None,
    "balloon_deflate": None,
    # metadata-cache internals (§IV-B5)
    "mdcache_hit": None,
    "mdcache_miss": None,
    "mdcache_evict": None,
    "mdcache_half_fill": None,
    # memory-model sanitizer (repro.check.sanitizer, docs/LINTING.md)
    "sanitizer_violation": None,
    # fault injection + recovery (repro.inject, docs/ROBUSTNESS.md)
    "fault_injected": None,            # injector committed a fault
    "fault_detected": None,            # sanitizer flagged it in recover mode
    "recovery_uncompressed": None,     # page rebuilt as uncompressed
    "recovery_mdcache": None,          # corrupt cache entry invalidated
    "recovery_alloc_books": None,      # allocator free/allocated books repaired
    "recovery_leak_reclaim": None,     # orphaned storage reclaimed
    "recovery_failed": None,           # violations persisted after recovery
    # degraded mode / graceful allocation denial (docs/ROBUSTNESS.md)
    "alloc_denied": None,              # page parked unbacked instead of raising
    "degraded_enter": None,            # pool exhausted: deny-new-compression
    "degraded_exit": None,             # headroom restored after frees
    "emergency_repack": None,          # repack sweep under allocation pressure
    # memory-pressure overload control (repro.pressure, docs/PRESSURE.md)
    "pressure_enter": None,            # backpressure engaged (utilization high)
    "pressure_exit": None,             # backpressure released
    "admission_throttled": None,       # token bucket empty: request stalled
    "request_shed": None,              # low-priority request dropped
    "tenant_over_budget": None,        # tenant exceeded its resident budget
    "tenant_page_out": None,           # per-tenant LRU page-out (escalation)
    "watchdog_escalation": None,       # degraded-mode dwell bound exceeded
    "pressure_oom_absorbed": None,     # OutOfMemoryError caught at this layer
    "balloon_protect_skip": None,      # balloon held a protected page intact
    # Sharded-run supervision (repro.shard, docs/SHARDING.md).  All
    # informational: process-boundary observations, not extra accesses.
    "shard_spawn": None,               # worker process started
    "shard_exit": None,                # worker found dead (e.g. SIGKILL)
    "shard_kill": None,                # supervisor killed a worker
    "shard_respawn": None,             # dead worker restarted from spec
    "shard_replay": None,              # journaled commands re-sent
    "shard_heartbeat_miss": None,      # reply missed its deadline
    "shard_resend": None,              # reply re-solicited via ping
    "shard_backpressure": None,        # bounded command queue was full
    "shard_quarantine": None,          # poison frame quarantined
    "shard_msg_dup": None,             # duplicate sequence number seen
    "shard_msg_reorder": None,         # stale-unseen sequence number seen
    "shard_divergence": None,          # replicated digests disagreed
    "shard_result": None,              # one shard's final payload landed
    "chaos_injected": None,            # process-level chaos fault fired
}


class TraceEvent:
    """One structured event on the simulated-access clock.

    ``extra`` is the number of compression-induced extra memory
    accesses this event accounts for (0 for informational events);
    its source attribution comes from :data:`EVENT_SOURCES`.
    """

    __slots__ = ("name", "clock", "page", "extra", "args")

    def __init__(self, name: str, clock: int, page: Optional[int] = None,
                 extra: int = 0, args: Optional[dict] = None) -> None:
        self.name = name
        self.clock = clock
        self.page = page
        self.extra = extra
        self.args = args

    @property
    def source(self) -> Optional[str]:
        return EVENT_SOURCES.get(self.name)

    def as_dict(self) -> dict:
        record = {"name": self.name, "clock": self.clock,
                  "page": self.page, "extra": self.extra}
        if self.args:
            record.update(self.args)
        return record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TraceEvent({self.name!r}, clock={self.clock}, "
                f"page={self.page}, extra={self.extra})")


class _NullPhase:
    """Reusable no-op context manager for :meth:`NullTracer.phase`."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_PHASE = _NullPhase()


class NullTracer:
    """Zero-overhead default tracer: every hook is a no-op.

    Instrumented code calls the same methods whether tracing is on or
    off; here they all fall through immediately, so the disabled cost
    is one attribute lookup plus an empty call per event site.
    """

    enabled = False
    clock = 0

    def tick(self, n: int = 1) -> None:
        """Advance the simulated-access clock (no-op when disabled)."""

    def emit(self, name: str, page: Optional[int] = None, extra: int = 0,
             **args) -> None:
        """Record one event (no-op when disabled)."""

    def phase(self, name: str) -> _NullPhase:
        """Context manager timing one wall-clock phase (no-op)."""
        return _NULL_PHASE

    @property
    def events(self) -> Tuple[TraceEvent, ...]:
        return ()

    @property
    def phase_spans(self) -> Tuple[Tuple[str, float, float], ...]:
        return ()


#: Shared process-wide no-op tracer; safe because it holds no state.
NULL_TRACER = NullTracer()


class _Phase:
    """Wall-clock span recorder returned by :meth:`Tracer.phase`."""

    __slots__ = ("_tracer", "_name", "_start")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Phase":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        now = time.perf_counter()
        self._tracer.phase_spans.append(
            (self._name, self._start - self._tracer.epoch, now - self._start)
        )


class Tracer:
    """Recording tracer: events + wall-clock phase profiling.

    Args:
        digest_window: default window (in clock units, i.e. demand
            accesses) used when a consumer asks this tracer for a
            timeline digest without specifying one.
    """

    enabled = True

    # flowcheck: boundary(epoch is wall-clock phase profiling; the event timeline runs on the simulated clock)
    def __init__(self, digest_window: int = 1000) -> None:
        if digest_window <= 0:
            raise ValueError("digest window must be positive")
        self.digest_window = digest_window
        self.clock = 0
        self.events: List[TraceEvent] = []
        #: (name, start_s, duration_s) relative to :attr:`epoch`.
        self.phase_spans: List[Tuple[str, float, float]] = []
        self.epoch = time.perf_counter()

    def tick(self, n: int = 1) -> None:
        self.clock += n

    def emit(self, name: str, page: Optional[int] = None, extra: int = 0,
             **args) -> None:
        self.events.append(
            TraceEvent(name, self.clock, page, extra, args or None)
        )

    def phase(self, name: str) -> _Phase:
        return _Phase(self, name)

    # -- aggregation helpers ----------------------------------------------

    def counts(self) -> Dict[str, int]:
        """Event occurrences by name."""
        totals: Dict[str, int] = {}
        for event in self.events:
            totals[event.name] = totals.get(event.name, 0) + 1
        return totals

    def extra_by_source(self) -> Dict[str, int]:
        """Extra accesses attributed to each §IV source."""
        totals = {source: 0 for source in SOURCES}
        for event in self.events:
            source = EVENT_SOURCES.get(event.name)
            if source is not None:
                totals[source] += event.extra
        return totals

    def total_extra(self) -> int:
        """All extra accesses seen; equals ``ControllerStats.extra_accesses``."""
        return sum(self.extra_by_source().values())

    def phase_seconds(self) -> Dict[str, float]:
        """Accumulated wall-clock seconds per phase name."""
        totals: Dict[str, float] = {}
        for name, _start, duration in self.phase_spans:
            totals[name] = totals.get(name, 0.0) + duration
        return totals


def known_event(name: str) -> bool:
    """Is ``name`` a registered event? (Used by the instrumentation lint.)"""
    return name in EVENT_SOURCES


def filter_events(events: Iterable[TraceEvent],
                  names: Optional[Iterable[str]] = None) -> List[TraceEvent]:
    """Select events by name (all events when ``names`` is None)."""
    if names is None:
        return list(events)
    wanted = set(names)
    return [event for event in events if event.name in wanted]
