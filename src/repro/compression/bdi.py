"""Base-Delta-Immediate (BDI) compression [Pekhimenko et al., PACT 2012].

BDI exploits low dynamic range: a line is stored as one base value plus
narrow per-word deltas, with an immediate (zero) base for small values.
We implement the standard eight encodings for a 64-byte line, choosing
the smallest applicable one, exactly as used for the Fig. 2 comparison
in the Compresso paper.

Encoded sizes (bytes) follow the original paper: zeros=1, rep=8,
base8-delta1=16, base8-delta2=24, base8-delta4=40, base4-delta1=20,
base4-delta2=36, base2-delta1=34.  A 4-bit encoding tag is prepended so
payloads are self-describing; the tag is *not* counted in ``size_bits``
(the original work keeps the encoding in metadata, and Compresso bins
lines by data size).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .base import CompressedLine, Compressor, bytes_of, words_of
from .bitstream import BitReader, BitWriter, fits_signed, sign_extend, to_twos_complement
from .zero import is_zero_line


@dataclass(frozen=True)
class _Encoding:
    """One BDI encoding: ``base_bytes``-wide base, ``delta_bytes`` deltas."""

    tag: int
    base_bytes: int
    delta_bytes: int

    @property
    def name(self) -> str:
        return f"base{self.base_bytes}-delta{self.delta_bytes}"


# Tag 0 = zeros, tag 1 = repeated 8-byte value, tags 2..7 = base+delta,
# tag 15 = uncompressed.
_ENCODINGS: List[_Encoding] = [
    _Encoding(2, 8, 1),
    _Encoding(3, 8, 2),
    _Encoding(4, 8, 4),
    _Encoding(5, 4, 1),
    _Encoding(6, 4, 2),
    _Encoding(7, 2, 1),
]

_TAG_ZERO = 0
_TAG_REP = 1
_TAG_RAW = 15
_TAG_BITS = 4


class BDICompressor(Compressor):
    """Base-Delta-Immediate with the canonical 8 encodings."""

    name = "bdi"

    def compress(self, data: bytes) -> CompressedLine:
        self._check_input(data)
        writer = BitWriter()
        if is_zero_line(data):
            writer.write(_TAG_ZERO, _TAG_BITS)
            return self._finish(writer, size_bits=8)

        rep = self._repeated_value(data)
        if rep is not None:
            writer.write(_TAG_REP, _TAG_BITS)
            writer.write(rep, 64)
            return self._finish(writer, size_bits=64)

        best: Optional[BitWriter] = None
        best_size = self.line_size * 8
        for enc in _ENCODINGS:
            encoded = self._try_encoding(data, enc)
            if encoded is not None:
                size = self._payload_bits(enc)
                if size < best_size:
                    best, best_size = encoded, size
        if best is not None:
            return self._finish(best, size_bits=best_size)

        writer.write(_TAG_RAW, _TAG_BITS)
        writer.write(int.from_bytes(data, "big"), self.line_size * 8)
        return self._finish(writer, size_bits=self.line_size * 8)

    def decompress(self, line: CompressedLine) -> bytes:
        self._check_line(line)
        reader = BitReader(line.payload)
        tag = reader.read(_TAG_BITS)
        if tag == _TAG_ZERO:
            return bytes(line.original_size)
        if tag == _TAG_REP:
            value = reader.read(64)
            return value.to_bytes(8, "little") * (line.original_size // 8)
        if tag == _TAG_RAW:
            return reader.read(line.original_size * 8).to_bytes(
                line.original_size, "big"
            )
        enc = next(e for e in _ENCODINGS if e.tag == tag)
        nwords = line.original_size // enc.base_bytes
        base = reader.read(enc.base_bytes * 8)
        words = []
        for _ in range(nwords):
            delta = sign_extend(reader.read(enc.delta_bytes * 8), enc.delta_bytes * 8)
            words.append((base + delta) % (1 << (enc.base_bytes * 8)))
        return bytes_of(words, enc.base_bytes)

    def _try_encoding(self, data: bytes, enc: _Encoding) -> Optional[BitWriter]:
        words = words_of(data, enc.base_bytes)
        base = words[0]
        width = enc.delta_bytes * 8
        modulus = 1 << (enc.base_bytes * 8)
        deltas = []
        for word in words:
            # Deltas wrap modulo the base width, matching hardware adders.
            delta = (word - base) % modulus
            if delta >= modulus // 2:
                delta -= modulus
            if not fits_signed(delta, width):
                return None
            deltas.append(delta)
        writer = BitWriter()
        writer.write(enc.tag, _TAG_BITS)
        writer.write(base, enc.base_bytes * 8)
        for delta in deltas:
            writer.write(to_twos_complement(delta, width), width)
        return writer

    def _payload_bits(self, enc: _Encoding) -> int:
        nwords = self.line_size // enc.base_bytes
        return (enc.base_bytes + nwords * enc.delta_bytes) * 8

    @staticmethod
    def _repeated_value(data: bytes) -> Optional[int]:
        first = data[:8]
        if all(data[i : i + 8] == first for i in range(8, len(data), 8)):
            return int.from_bytes(first, "little")
        return None

    def _finish(self, writer: BitWriter, size_bits: int) -> CompressedLine:
        return CompressedLine(self.name, size_bits, writer.to_bits(), self.line_size)
