"""Bit-Plane Compression (BPC) [Kim et al., ISCA 2016], adapted for Compresso.

BPC is a context-based compressor: it first applies a
Delta-BitPlane-XOR (DBX) transform that turns typical low-entropy data
(arrays of similar integers, pointers, floats) into mostly-zero bit
planes, then encodes each plane with a small prefix code.

The Compresso paper adapts BPC from the GPU's 128-byte lines to the
CPU's 64-byte lines (§II-A), so here a line is 16 little-endian 32-bit
words:

1. keep word 0 as the *base*, encoded with a width prefix code;
2. compute 15 successive deltas ``d[i] = w[i+1] - w[i]`` (33-bit
   two's complement);
3. transpose the deltas into 33 *delta bit-planes* (DBPs) of 15 bits;
4. XOR each DBP with its more-significant neighbour (DBX);
5. encode each DBX plane with the symbol table below.

Plane symbols (``m`` = plane width, here 15; positions use 4 bits):

=================================== ==================== =========
 pattern                             code                 bits
=================================== ==================== =========
 run of 2..33 all-zero DBX planes    ``01`` + 5-bit len   7
 single all-zero DBX plane           ``001``              3
 all-ones DBX plane                  ``00000``            5
 DBX != 0 but DBP == 0               ``00001``            5
 two consecutive ones                ``00010`` + pos      5 + 4
 single one                          ``00011`` + pos      5 + 4
 uncompressed plane                  ``1`` + raw          1 + m
=================================== ==================== =========

The paper additionally observes that always applying the transform is
suboptimal and adds a module that compresses **with and without the
transform in parallel** and picks the best (worth ~13% extra memory
savings).  ``BPCCompressor`` implements exactly that: mode 1 is the
delta transform above; mode 0 bit-plane-encodes the raw words (32
planes of 16 bits, still with the plane XOR); a 1-bit header selects
the mode, and a raw fallback guarantees the output never exceeds
``line_size * 8 + 2`` bits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .base import CompressedLine, Compressor, bytes_of, words_of
from .bitstream import BitReader, BitWriter, sign_extend

_WORD_BITS = 32

# Mode header: 2 bits (00 = raw, 01 = plane-encode raw words,
# 10 = delta transform).
_MODE_RAW = 0
_MODE_PLAIN = 1
_MODE_DELTA = 2
_MODE_BITS = 2

_RUN_LEN_BITS = 5  # runs of 2..33 zero planes, stored as len-2


def _bit_planes(values: List[int], n_planes: int) -> List[int]:
    """Transpose ``values`` into ``n_planes`` planes, MSB plane first.

    Plane ``p`` (for bit position ``b = n_planes-1-p``) packs bit ``b``
    of ``values[i]`` into bit ``i`` of the plane.
    """
    planes = []
    for b in range(n_planes - 1, -1, -1):
        plane = 0
        for i, value in enumerate(values):
            plane |= ((value >> b) & 1) << i
        planes.append(plane)
    return planes


def _from_bit_planes(planes: List[int], width: int) -> List[int]:
    """Inverse of :func:`_bit_planes` (``width`` values)."""
    n_planes = len(planes)
    values = [0] * width
    for p, plane in enumerate(planes):
        b = n_planes - 1 - p
        for i in range(width):
            values[i] |= ((plane >> i) & 1) << b
    return values


@dataclass(frozen=True)
class _PlaneGeometry:
    """Shape of the plane encoding for one mode."""

    n_planes: int   # number of bit planes
    width: int      # bits per plane (= number of values transposed)

    @property
    def pos_bits(self) -> int:
        return max(1, (self.width - 1).bit_length())


class _PlaneCoder:
    """Encodes/decodes a sequence of DBX planes with the BPC symbol table."""

    def __init__(self, geometry: _PlaneGeometry) -> None:
        self.geometry = geometry
        self._mask = (1 << geometry.width) - 1

    def encode(self, writer: BitWriter, values: List[int]) -> None:
        geo = self.geometry
        planes = _bit_planes(values, geo.n_planes)  # DBP, MSB first
        prev_dbp = 0  # plane "above" the MSB plane is all zero
        run = 0
        for dbp in planes:
            dbx = dbp ^ prev_dbp
            if dbx == 0:
                run += 1
                prev_dbp = dbp
                continue
            self._flush_run(writer, run)
            run = 0
            self._encode_plane(writer, dbx, dbp)
            prev_dbp = dbp
        self._flush_run(writer, run)

    def decode(self, reader: BitReader) -> List[int]:
        geo = self.geometry
        planes: List[int] = []
        prev_dbp = 0
        while len(planes) < geo.n_planes:
            dbp = self._decode_plane(reader, prev_dbp, planes)
            if dbp is None:
                continue  # a run already appended planes
            planes.append(dbp)
            prev_dbp = dbp
        return _from_bit_planes(planes, geo.width)

    def _flush_run(self, writer: BitWriter, run: int) -> None:
        while run >= 2:
            chunk = min(run, 2 + (1 << _RUN_LEN_BITS) - 1)
            writer.write(0b01, 2)
            writer.write(chunk - 2, _RUN_LEN_BITS)
            run -= chunk
        if run == 1:
            writer.write(0b001, 3)

    def _encode_plane(self, writer: BitWriter, dbx: int, dbp: int) -> None:
        geo = self.geometry
        if dbp == 0:  # dbx != 0 here, but the DBP itself vanished
            writer.write(0b00001, 5)
            return
        if dbx == self._mask:
            writer.write(0b00000, 5)
            return
        single = self._single_one_position(dbx)
        if single is not None:
            writer.write(0b00011, 5)
            writer.write(single, geo.pos_bits)
            return
        double = self._two_consecutive_ones_position(dbx)
        if double is not None:
            writer.write(0b00010, 5)
            writer.write(double, geo.pos_bits)
            return
        writer.write(1, 1)
        writer.write(dbx, geo.width)

    def _decode_plane(self, reader: BitReader, prev_dbp: int, planes: List[int]):
        geo = self.geometry
        first = reader.read(1)
        if first == 1:  # raw plane
            dbx = reader.read(geo.width)
            return dbx ^ prev_dbp
        second = reader.read(1)
        if second == 1:  # '01' zero run
            run = reader.read(_RUN_LEN_BITS) + 2
            planes.extend([prev_dbp] * run)
            return None
        third = reader.read(1)
        if third == 1:  # '001' single zero plane
            planes.append(prev_dbp)
            return None
        # '000' + 2 selector bits
        selector = reader.read(2)
        if selector == 0b00:  # all ones
            return self._mask ^ prev_dbp
        if selector == 0b01:  # DBP == 0
            return 0
        if selector == 0b10:  # two consecutive ones
            pos = reader.read(geo.pos_bits)
            return (0b11 << pos) ^ prev_dbp
        pos = reader.read(geo.pos_bits)  # single one
        return (1 << pos) ^ prev_dbp

    @staticmethod
    def _single_one_position(plane: int):
        if plane and plane & (plane - 1) == 0:
            return plane.bit_length() - 1
        return None

    def _two_consecutive_ones_position(self, plane: int):
        low = plane & -plane
        if plane == low | (low << 1) and (low << 1) <= self._mask:
            return low.bit_length() - 1
        return None


class BPCCompressor(Compressor):
    """Bit-Plane Compression with the Compresso best-of-two-modes tweak.

    Set ``transform_only=True`` to model the unmodified BPC of Kim et
    al. (always applies the delta transform); the default models the
    Compresso-modified compressor.
    """

    name = "bpc"

    def __init__(self, line_size: int = 64, transform_only: bool = False) -> None:
        super().__init__(line_size)
        self.transform_only = transform_only
        n_words = line_size // 4
        self._delta_geo = _PlaneGeometry(n_planes=_WORD_BITS + 1, width=n_words - 1)
        self._plain_geo = _PlaneGeometry(n_planes=_WORD_BITS, width=n_words)
        self._delta_coder = _PlaneCoder(self._delta_geo)
        self._plain_coder = _PlaneCoder(self._plain_geo)

    def compress(self, data: bytes) -> CompressedLine:
        self._check_input(data)
        words = words_of(data, 4)

        best = self._compress_delta(words)
        # The parallel no-transform path only matters when the delta
        # transform did poorly; below one byte-bin (64 bits) the choice
        # cannot change any packing decision, so skip the second pass.
        if not self.transform_only and best.bit_length > 64:
            plain = self._compress_plain(words)
            if plain.bit_length < best.bit_length:
                best = plain

        raw_bits = self.line_size * 8 + _MODE_BITS
        if best.bit_length >= raw_bits:
            writer = BitWriter()
            writer.write(_MODE_RAW, _MODE_BITS)
            writer.write(int.from_bytes(data, "big"), self.line_size * 8)
            best = writer
        bits = best.to_bits()
        return CompressedLine(self.name, bits.length, bits, self.line_size)

    def decompress(self, line: CompressedLine) -> bytes:
        self._check_line(line)
        reader = BitReader(line.payload)
        mode = reader.read(_MODE_BITS)
        if mode == _MODE_RAW:
            return reader.read(line.original_size * 8).to_bytes(
                line.original_size, "big"
            )
        if mode == _MODE_PLAIN:
            words = self._plain_coder.decode(reader)
            return bytes_of(words, 4)
        base = self._decode_base(reader)
        deltas_tc = self._delta_coder.decode(reader)
        words = [base]
        for delta_tc in deltas_tc:
            delta = sign_extend(delta_tc, _WORD_BITS + 1)
            words.append((words[-1] + delta) & 0xFFFFFFFF)
        return bytes_of(words, 4)

    # -- mode 2: delta + bit-plane + xor ---------------------------------

    def _compress_delta(self, words: List[int]) -> BitWriter:
        writer = BitWriter()
        writer.write(_MODE_DELTA, _MODE_BITS)
        self._encode_base(writer, words[0])
        deltas_tc = []
        mask = (1 << (_WORD_BITS + 1)) - 1
        for prev, cur in zip(words, words[1:]):
            deltas_tc.append((cur - prev) & mask)
        self._delta_coder.encode(writer, deltas_tc)
        return writer

    # -- mode 1: bit-plane + xor on raw words ----------------------------

    def _compress_plain(self, words: List[int]) -> BitWriter:
        writer = BitWriter()
        writer.write(_MODE_PLAIN, _MODE_BITS)
        self._plain_coder.encode(writer, words)
        return writer

    # -- base word prefix code -------------------------------------------

    @staticmethod
    def _encode_base(writer: BitWriter, base: int) -> None:
        signed = sign_extend(base, _WORD_BITS)
        if base == 0:
            writer.write(0b000, 3)
        elif -8 <= signed <= 7:
            writer.write(0b001, 3)
            writer.write(signed & 0xF, 4)
        elif -128 <= signed <= 127:
            writer.write(0b010, 3)
            writer.write(signed & 0xFF, 8)
        elif -(1 << 15) <= signed <= (1 << 15) - 1:
            writer.write(0b011, 3)
            writer.write(signed & 0xFFFF, 16)
        else:
            writer.write(0b1, 1)
            writer.write(base, 32)

    @staticmethod
    def _decode_base(reader: BitReader) -> int:
        if reader.read(1) == 1:
            return reader.read(32)
        selector = reader.read(2)
        if selector == 0b00:
            return 0
        if selector == 0b01:
            return sign_extend(reader.read(4), 4) & 0xFFFFFFFF
        if selector == 0b10:
            return sign_extend(reader.read(8), 8) & 0xFFFFFFFF
        return sign_extend(reader.read(16), 16) & 0xFFFFFFFF


def compression_ratio(compressor: Compressor, lines) -> float:
    """Aggregate compression ratio over an iterable of 64-byte lines."""
    total_raw = 0
    total_compressed = 0
    for line in lines:
        result = compressor.compress(line)
        total_raw += len(line) * 8
        total_compressed += max(result.size_bits, 1)
    if total_compressed == 0:
        return float("inf")
    return total_raw / total_compressed
