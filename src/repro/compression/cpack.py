"""C-Pack cache compression [Chen et al., 2010].

C-Pack combines static pattern codes for zero-dominated words with a
small dictionary of recently seen words, matching either the whole word
or its upper bytes.  We use the canonical six codes and a 16-entry FIFO
dictionary (64-byte line / 4-byte words).

Codes (pattern ``z`` = zero byte, ``m`` = dictionary-match byte,
``x`` = literal byte):

====== ============ ==============================
 code   pattern      encoded length
====== ============ ==============================
 00     zzzz         2 bits
 01     xxxx         2 + 32 bits
 10     mmmm         2 + 4 (dict index)
 1100   mmxx         4 + 4 + 16
 1101   zzzx         4 + 8
 1110   mmmx         4 + 4 + 8
====== ============ ==============================
"""

from __future__ import annotations

from .base import CompressedLine, Compressor, bytes_of, words_of
from .bitstream import BitReader, BitWriter

_DICT_ENTRIES = 16
_IDX_BITS = 4


class CPackCompressor(Compressor):
    """C-Pack with a 16-entry FIFO dictionary."""

    name = "cpack"

    def compress(self, data: bytes) -> CompressedLine:
        self._check_input(data)
        writer = BitWriter()
        dictionary: list = []
        for word in words_of(data, 4):
            self._encode_word(writer, word, dictionary)
        bits = writer.to_bits()
        return CompressedLine(self.name, bits.length, bits, self.line_size)

    def decompress(self, line: CompressedLine) -> bytes:
        self._check_line(line)
        reader = BitReader(line.payload)
        dictionary: list = []
        nwords = line.original_size // 4
        words = []
        for _ in range(nwords):
            words.append(self._decode_word(reader, dictionary))
        return bytes_of(words, 4)

    def _encode_word(self, writer: BitWriter, word: int, dictionary: list) -> None:
        if word == 0:
            writer.write(0b00, 2)
            return
        if word <= 0xFF:  # zzzx
            writer.write(0b1101, 4)
            writer.write(word, 8)
            return
        for idx, entry in enumerate(dictionary):
            if entry == word:  # mmmm
                writer.write(0b10, 2)
                writer.write(idx, _IDX_BITS)
                return
        for idx, entry in enumerate(dictionary):
            if entry >> 8 == word >> 8:  # mmmx
                writer.write(0b1110, 4)
                writer.write(idx, _IDX_BITS)
                writer.write(word & 0xFF, 8)
                self._push(dictionary, word)
                return
        for idx, entry in enumerate(dictionary):
            if entry >> 16 == word >> 16:  # mmxx
                writer.write(0b1100, 4)
                writer.write(idx, _IDX_BITS)
                writer.write(word & 0xFFFF, 16)
                self._push(dictionary, word)
                return
        writer.write(0b01, 2)  # xxxx
        writer.write(word, 32)
        self._push(dictionary, word)

    def _decode_word(self, reader: BitReader, dictionary: list) -> int:
        first = reader.read(2)
        if first == 0b00:
            return 0
        if first == 0b01:
            word = reader.read(32)
            self._push(dictionary, word)
            return word
        if first == 0b10:
            return dictionary[reader.read(_IDX_BITS)]
        # first == 0b11: read 2 more code bits
        sub = reader.read(2)
        if sub == 0b01:  # 1101 zzzx
            return reader.read(8)
        if sub == 0b10:  # 1110 mmmx
            idx = reader.read(_IDX_BITS)
            low = reader.read(8)
            word = (dictionary[idx] & ~0xFF) | low
            self._push(dictionary, word)
            return word
        if sub == 0b00:  # 1100 mmxx
            idx = reader.read(_IDX_BITS)
            low = reader.read(16)
            word = (dictionary[idx] & ~0xFFFF) | low
            self._push(dictionary, word)
            return word
        raise ValueError(f"invalid C-Pack code 11{sub:02b}")

    @staticmethod
    def _push(dictionary: list, word: int) -> None:
        dictionary.append(word)
        if len(dictionary) > _DICT_ENTRIES:
            dictionary.pop(0)
