"""Bit-level stream reader/writer used by the compression algorithms.

All compressors in this package produce exact bit counts, because the
paper's packing schemes (LinePack, LCP) bin compressed cache lines into
byte-granular size classes derived from real encoded sizes.  The writer
accumulates bits MSB-first into a growing integer; the reader walks the
same representation back.
"""

from __future__ import annotations


class BitWriter:
    """Append-only MSB-first bit buffer."""

    def __init__(self) -> None:
        self._value = 0
        self._bits = 0

    def write(self, value: int, width: int) -> None:
        """Append ``width`` bits holding ``value`` (must fit)."""
        if width < 0:
            raise ValueError(f"negative width {width}")
        if value < 0 or value >= (1 << width):
            raise ValueError(f"value {value} does not fit in {width} bits")
        self._value = (self._value << width) | value
        self._bits += width

    @property
    def bit_length(self) -> int:
        """Number of bits written so far."""
        return self._bits

    def to_bytes(self) -> bytes:
        """Return the buffer padded with zero bits to a whole byte."""
        nbytes = (self._bits + 7) // 8
        pad = nbytes * 8 - self._bits
        return (self._value << pad).to_bytes(nbytes, "big") if nbytes else b""

    def to_bits(self) -> "Bits":
        return Bits(self._value, self._bits)


class Bits:
    """Immutable bit string (value + length), convertible to bytes."""

    __slots__ = ("value", "length")

    def __init__(self, value: int, length: int) -> None:
        self.value = value
        self.length = length

    def __len__(self) -> int:
        return self.length

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Bits)
            and other.value == self.value
            and other.length == self.length
        )

    def __hash__(self) -> int:
        return hash((self.value, self.length))

    def __repr__(self) -> str:
        return f"Bits(<{self.length} bits>)"


class BitReader:
    """MSB-first reader over a :class:`Bits` value."""

    def __init__(self, bits: Bits) -> None:
        self._value = bits.value
        self._length = bits.length
        self._pos = 0

    def read(self, width: int) -> int:
        """Consume and return ``width`` bits as an unsigned integer."""
        if width < 0:
            raise ValueError(f"negative width {width}")
        if self._pos + width > self._length:
            raise EOFError(
                f"read past end of stream (pos={self._pos}, width={width}, "
                f"length={self._length})"
            )
        shift = self._length - self._pos - width
        self._pos += width
        return (self._value >> shift) & ((1 << width) - 1)

    @property
    def remaining(self) -> int:
        return self._length - self._pos


def sign_extend(value: int, width: int) -> int:
    """Interpret ``value`` (unsigned, ``width`` bits) as two's complement."""
    sign_bit = 1 << (width - 1)
    return (value & (sign_bit - 1)) - (value & sign_bit)


def to_twos_complement(value: int, width: int) -> int:
    """Encode a signed integer into ``width``-bit two's complement."""
    lo = -(1 << (width - 1))
    hi = (1 << (width - 1)) - 1
    if value < lo or value > hi:
        raise ValueError(f"value {value} out of range for {width}-bit field")
    return value & ((1 << width) - 1)


def fits_signed(value: int, width: int) -> bool:
    """True if ``value`` is representable in ``width``-bit two's complement."""
    return -(1 << (width - 1)) <= value <= (1 << (width - 1)) - 1
