"""Compressor selection helpers.

``BestOfCompressor`` runs several algorithms "in parallel" (as the
paper's hardware module does for BPC with/without transform, §II-A) and
keeps the smallest encoding.  A small registry maps algorithm names to
constructors so configurations can name their compressor.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from .base import CompressedLine, Compressor, LINE_SIZE
from .bdi import BDICompressor
from .bpc import BPCCompressor
from .cpack import CPackCompressor
from .fpc import FPCCompressor
from .lz import LZCompressor
from .zero import ZeroCompressor


class BestOfCompressor(Compressor):
    """Compress with every child and keep the smallest result.

    Decompression dispatches on the winning child's algorithm name, so
    children must have distinct names.
    """

    name = "best-of"

    def __init__(self, children: Sequence[Compressor]) -> None:
        if not children:
            raise ValueError("BestOfCompressor needs at least one child")
        super().__init__(children[0].line_size)
        names = [c.name for c in children]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate child algorithm names: {names}")
        if any(c.line_size != self.line_size for c in children):
            raise ValueError("all children must share a line size")
        self.children = list(children)
        self._by_name = {c.name: c for c in children}

    def compress(self, data: bytes) -> CompressedLine:
        self._check_input(data)
        return min(
            (child.compress(data) for child in self.children),
            key=lambda line: line.size_bits,
        )

    def batch_compress(self, lines) -> List[CompressedLine]:
        """Vector fast path: pick each line's winner from batch sizes.

        Per-child encoded sizes come from the numpy kernels
        (docs/KERNELS.md) where available, so the expensive payload
        assembly runs only for each line's winning child.  ``argmin``
        keeps the first child on ties, matching :meth:`compress`'s
        ``min`` semantics, so outputs are byte-identical to the scalar
        path.
        """
        import numpy as np

        from .vector.batch import batch_compressor_for

        lines = [bytes(line) for line in lines]
        batches = []
        sizes = []
        for child in self.children:
            batch = batch_compressor_for(child)
            batches.append(batch)
            if batch is not None:
                sizes.append(np.asarray(batch.batch_size_bits(lines)))
            else:
                sizes.append(np.array(
                    [child.compress(line).size_bits for line in lines],
                    dtype=np.int64))
        winner = np.argmin(np.stack(sizes, axis=0), axis=0)
        out: List[Optional[CompressedLine]] = [None] * len(lines)
        for c, (child, batch) in enumerate(zip(self.children, batches)):
            rows = np.flatnonzero(winner == c)
            if not rows.size:
                continue
            subset = [lines[i] for i in rows.tolist()]
            encoded = (batch.batch_compress(subset) if batch is not None
                       else [child.compress(line) for line in subset])
            for i, line in zip(rows.tolist(), encoded):
                out[i] = line
        return out  # type: ignore[return-value]

    def decompress(self, line: CompressedLine) -> bytes:
        child = self._by_name.get(line.algorithm)
        if child is None:
            raise ValueError(f"no child can decode {line.algorithm!r}")
        return child.decompress(line)


_REGISTRY: Dict[str, Callable[[int], Compressor]] = {
    "bpc": lambda n: BPCCompressor(n),
    "bpc-transform-only": lambda n: BPCCompressor(n, transform_only=True),
    "bdi": BDICompressor,
    "fpc": FPCCompressor,
    "cpack": CPackCompressor,
    "lz": LZCompressor,
    "zero": ZeroCompressor,
}


def available_algorithms() -> List[str]:
    """Names accepted by :func:`make_compressor`."""
    return sorted(_REGISTRY)


def make_compressor(name: str, line_size: int = LINE_SIZE) -> Compressor:
    """Construct a compressor by registry name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown compressor {name!r}; available: {available_algorithms()}"
        ) from None
    return factory(line_size)
