"""Compressor interface shared by every algorithm in this package.

A compressor maps a fixed-size cache line (``bytes``) to a
:class:`CompressedLine` carrying the exact encoded bit stream, and back.
The memory-system models only consume ``size_bits``/``size_bytes``, but
every algorithm implements true decode so the test suite can verify
round trips.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from .bitstream import Bits

#: Cache line size used throughout the reproduction (paper §II-A).
LINE_SIZE = 64


@dataclass(frozen=True)
class CompressedLine:
    """Result of compressing one cache line.

    Attributes:
        algorithm: name of the producing algorithm.
        size_bits: exact encoded size in bits (0 for an all-zero line
            under algorithms with a zero special case).
        payload: the encoded bit stream, sufficient to decompress.
        original_size: size of the uncompressed line in bytes.
    """

    algorithm: str
    size_bits: int
    payload: Bits
    original_size: int = LINE_SIZE

    @property
    def size_bytes(self) -> int:
        """Encoded size rounded up to whole bytes (what packing uses)."""
        return (self.size_bits + 7) // 8

    @property
    def ratio(self) -> float:
        """Compression ratio (>= 1.0 means the line shrank)."""
        if self.size_bits == 0:
            return float("inf")
        return self.original_size * 8 / self.size_bits


class Compressor(abc.ABC):
    """Abstract cache-line compressor."""

    #: Short algorithm name, e.g. ``"bpc"``.
    name: str = "abstract"

    def __init__(self, line_size: int = LINE_SIZE) -> None:
        if line_size <= 0 or line_size % 4 != 0:
            raise ValueError(f"line_size must be a positive multiple of 4, got {line_size}")
        self.line_size = line_size

    @abc.abstractmethod
    def compress(self, data: bytes) -> CompressedLine:
        """Compress one cache line; never returns more than raw size + header."""

    @abc.abstractmethod
    def decompress(self, line: CompressedLine) -> bytes:
        """Invert :meth:`compress` exactly."""

    def batch_compress(self, lines) -> list:
        """Compress N lines; element i equals ``compress(lines[i])``.

        The default is a scalar loop; :class:`BestOfCompressor` and the
        :mod:`repro.compression.vector` kernels override this with a
        numpy fast path (docs/KERNELS.md).
        """
        return [self.compress(bytes(line)) for line in lines]

    def compressed_size_bits(self, data: bytes) -> int:
        """Convenience wrapper returning only the encoded size."""
        return self.compress(data).size_bits

    def compressed_size_bytes(self, data: bytes) -> int:
        return self.compress(data).size_bytes

    def _check_input(self, data: bytes) -> None:
        if len(data) != self.line_size:
            raise ValueError(
                f"{self.name}: expected a {self.line_size}-byte line, got {len(data)} bytes"
            )

    def _check_line(self, line: CompressedLine) -> None:
        if line.algorithm != self.name:
            raise ValueError(
                f"cannot decompress {line.algorithm!r} payload with {self.name!r}"
            )


def words_of(data: bytes, word_bytes: int = 4) -> list:
    """Split a line into little-endian unsigned words."""
    return [
        int.from_bytes(data[i : i + word_bytes], "little")
        for i in range(0, len(data), word_bytes)
    ]


def bytes_of(words, word_bytes: int = 4) -> bytes:
    """Inverse of :func:`words_of`."""
    return b"".join(int(w).to_bytes(word_bytes, "little") for w in words)
