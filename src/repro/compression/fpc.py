"""Frequent Pattern Compression (FPC) [Alameldeen & Wood, 2004].

FPC scans a line word by word (32-bit words) and replaces each word that
matches one of seven frequent patterns with a 3-bit prefix plus a short
payload.  Zero words additionally fold into runs of up to eight words.
"""

from __future__ import annotations

from .base import CompressedLine, Compressor, bytes_of, words_of
from .bitstream import BitReader, BitWriter, fits_signed, sign_extend, to_twos_complement

_PREFIX_BITS = 3

_ZERO_RUN = 0       # 3-bit run length (1..8 words, stored as len-1)
_SE_4BIT = 1        # 4-bit sign-extended word
_SE_8BIT = 2        # 8-bit sign-extended word
_SE_16BIT = 3       # 16-bit sign-extended word
_HALF_ZERO = 4      # upper halfword zero, lower halfword raw
_TWO_HALF_SE8 = 5   # two halfwords, each 8-bit sign-extended
_REP_BYTES = 6      # word made of one repeated byte
_RAW = 7            # uncompressed 32-bit word


class FPCCompressor(Compressor):
    """Frequent Pattern Compression over 32-bit words with zero runs."""

    name = "fpc"

    def compress(self, data: bytes) -> CompressedLine:
        self._check_input(data)
        words = words_of(data, 4)
        writer = BitWriter()
        i = 0
        while i < len(words):
            if words[i] == 0:
                run = 1
                while i + run < len(words) and words[i + run] == 0 and run < 8:
                    run += 1
                writer.write(_ZERO_RUN, _PREFIX_BITS)
                writer.write(run - 1, 3)
                i += run
                continue
            self._encode_word(writer, words[i])
            i += 1
        bits = writer.to_bits()
        return CompressedLine(self.name, bits.length, bits, self.line_size)

    def decompress(self, line: CompressedLine) -> bytes:
        self._check_line(line)
        reader = BitReader(line.payload)
        nwords = line.original_size // 4
        words = []
        while len(words) < nwords:
            prefix = reader.read(_PREFIX_BITS)
            if prefix == _ZERO_RUN:
                run = reader.read(3) + 1
                words.extend([0] * run)
            elif prefix == _SE_4BIT:
                words.append(sign_extend(reader.read(4), 4) & 0xFFFFFFFF)
            elif prefix == _SE_8BIT:
                words.append(sign_extend(reader.read(8), 8) & 0xFFFFFFFF)
            elif prefix == _SE_16BIT:
                words.append(sign_extend(reader.read(16), 16) & 0xFFFFFFFF)
            elif prefix == _HALF_ZERO:
                words.append(reader.read(16))
            elif prefix == _TWO_HALF_SE8:
                hi = sign_extend(reader.read(8), 8) & 0xFFFF
                lo = sign_extend(reader.read(8), 8) & 0xFFFF
                words.append((hi << 16) | lo)
            elif prefix == _REP_BYTES:
                byte = reader.read(8)
                words.append(byte * 0x01010101)
            else:
                words.append(reader.read(32))
        return bytes_of(words, 4)

    @staticmethod
    def _signed(word: int) -> int:
        return sign_extend(word, 32)

    def _encode_word(self, writer: BitWriter, word: int) -> None:
        signed = self._signed(word)
        if fits_signed(signed, 4):
            writer.write(_SE_4BIT, _PREFIX_BITS)
            writer.write(to_twos_complement(signed, 4), 4)
        elif fits_signed(signed, 8):
            writer.write(_SE_8BIT, _PREFIX_BITS)
            writer.write(to_twos_complement(signed, 8), 8)
        elif fits_signed(signed, 16):
            writer.write(_SE_16BIT, _PREFIX_BITS)
            writer.write(to_twos_complement(signed, 16), 16)
        elif word >> 16 == 0:
            writer.write(_HALF_ZERO, _PREFIX_BITS)
            writer.write(word & 0xFFFF, 16)
        elif self._two_half_se8(word):
            writer.write(_TWO_HALF_SE8, _PREFIX_BITS)
            writer.write(to_twos_complement(sign_extend(word >> 16, 16), 8), 8)
            writer.write(to_twos_complement(sign_extend(word & 0xFFFF, 16), 8), 8)
        elif self._repeated_byte(word):
            writer.write(_REP_BYTES, _PREFIX_BITS)
            writer.write(word & 0xFF, 8)
        else:
            writer.write(_RAW, _PREFIX_BITS)
            writer.write(word, 32)

    @staticmethod
    def _two_half_se8(word: int) -> bool:
        hi = sign_extend(word >> 16, 16)
        lo = sign_extend(word & 0xFFFF, 16)
        return fits_signed(hi, 8) and fits_signed(lo, 8)

    @staticmethod
    def _repeated_byte(word: int) -> bool:
        byte = word & 0xFF
        return word == byte * 0x01010101
