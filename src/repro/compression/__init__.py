"""Cache-line compression algorithms (all implemented from scratch).

The Compresso paper's compressor is a modified Bit-Plane Compression
(:class:`BPCCompressor`); BDI, FPC, C-Pack and LZ are implemented for
the algorithm comparisons in its §II-A and Fig. 2.
"""

from .base import LINE_SIZE, CompressedLine, Compressor
from .bdi import BDICompressor
from .bitstream import BitReader, Bits, BitWriter
from .bpc import BPCCompressor, compression_ratio
from .cpack import CPackCompressor
from .fpc import FPCCompressor
from .lz import LZCompressor
from .selector import BestOfCompressor, available_algorithms, make_compressor
from .zero import ZeroCompressor, is_zero_line

__all__ = [
    "LINE_SIZE",
    "CompressedLine",
    "Compressor",
    "BDICompressor",
    "BPCCompressor",
    "BestOfCompressor",
    "BitReader",
    "BitWriter",
    "Bits",
    "CPackCompressor",
    "FPCCompressor",
    "LZCompressor",
    "ZeroCompressor",
    "available_algorithms",
    "compression_ratio",
    "is_zero_line",
    "make_compressor",
]
