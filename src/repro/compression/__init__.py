"""Cache-line compression algorithms (all implemented from scratch).

The Compresso paper's compressor is a modified Bit-Plane Compression
(:class:`BPCCompressor`); BDI, FPC, C-Pack and LZ are implemented for
the algorithm comparisons in its §II-A and Fig. 2.  The scalar
compressors here are the reference semantics; :mod:`.vector` holds
numpy batch kernels that reproduce them byte-for-byte at array speed
(docs/KERNELS.md).
"""

from .base import LINE_SIZE, CompressedLine, Compressor
from .bdi import BDICompressor
from .bitstream import BitReader, Bits, BitWriter
from .bpc import BPCCompressor, compression_ratio
from .cpack import CPackCompressor
from .fpc import FPCCompressor
from .lz import LZCompressor
from .selector import BestOfCompressor, available_algorithms, make_compressor
from .vector import (
    BatchCompressor,
    batch_compressor_for,
    make_batch_compressor,
    vectorized_algorithms,
)
from .zero import ZeroCompressor, is_zero_line

__all__ = [
    "LINE_SIZE",
    "CompressedLine",
    "Compressor",
    "BDICompressor",
    "BPCCompressor",
    "BatchCompressor",
    "BestOfCompressor",
    "BitReader",
    "BitWriter",
    "Bits",
    "CPackCompressor",
    "FPCCompressor",
    "LZCompressor",
    "ZeroCompressor",
    "available_algorithms",
    "batch_compressor_for",
    "compression_ratio",
    "is_zero_line",
    "make_batch_compressor",
    "make_compressor",
    "vectorized_algorithms",
]
