"""Zero-line detection.

All-zero cache lines are the single most valuable special case in a
compressed memory system: the paper handles zero fills/writebacks purely
in (cached) metadata with no DRAM access at all (§VII-A).  This module
provides both the predicate and a degenerate compressor used in tests.
"""

from __future__ import annotations

from .base import CompressedLine, Compressor
from .bitstream import Bits


def is_zero_line(data: bytes) -> bool:
    """True if every byte of the line is zero."""
    return not any(data)


class ZeroCompressor(Compressor):
    """Compresses all-zero lines to 0 bits; leaves everything else raw."""

    name = "zero"

    def compress(self, data: bytes) -> CompressedLine:
        self._check_input(data)
        if is_zero_line(data):
            return CompressedLine(self.name, 0, Bits(0, 0), self.line_size)
        raw = int.from_bytes(data, "big")
        nbits = self.line_size * 8
        return CompressedLine(self.name, nbits, Bits(raw, nbits), self.line_size)

    def decompress(self, line: CompressedLine) -> bytes:
        self._check_line(line)
        if line.size_bits == 0:
            return bytes(line.original_size)
        return line.payload.value.to_bytes(line.original_size, "big")
