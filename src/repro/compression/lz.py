"""Byte-level LZSS compressor (the "LZ" of the paper's algorithm survey).

The paper notes LZ reaches the highest compression ratio but at high
energy cost (§II-A), which is why Compresso uses BPC instead.  We
implement a small LZSS: a sliding window over the line itself, with
1-bit literal/match flags, 6-bit offsets and 4-bit lengths — enough to
reproduce LZ's relative standing among the algorithms.
"""

from __future__ import annotations

from .base import CompressedLine, Compressor
from .bitstream import BitReader, BitWriter

_OFFSET_BITS = 6          # window of up to 64 bytes (the whole line)
_LENGTH_BITS = 4
_MIN_MATCH = 3            # matches shorter than this are cheaper as literals
_MAX_MATCH = _MIN_MATCH + (1 << _LENGTH_BITS) - 1


class LZCompressor(Compressor):
    """LZSS over the bytes of a single cache line."""

    name = "lz"

    def compress(self, data: bytes) -> CompressedLine:
        self._check_input(data)
        writer = BitWriter()
        pos = 0
        while pos < len(data):
            offset, length = self._longest_match(data, pos)
            if length >= _MIN_MATCH:
                writer.write(1, 1)
                writer.write(offset - 1, _OFFSET_BITS)
                writer.write(length - _MIN_MATCH, _LENGTH_BITS)
                pos += length
            else:
                writer.write(0, 1)
                writer.write(data[pos], 8)
                pos += 1
        bits = writer.to_bits()
        return CompressedLine(self.name, bits.length, bits, self.line_size)

    def decompress(self, line: CompressedLine) -> bytes:
        self._check_line(line)
        reader = BitReader(line.payload)
        out = bytearray()
        while len(out) < line.original_size:
            if reader.read(1):
                offset = reader.read(_OFFSET_BITS) + 1
                length = reader.read(_LENGTH_BITS) + _MIN_MATCH
                start = len(out) - offset
                # Overlapping copies are legal in LZSS (run encoding).
                for i in range(length):
                    out.append(out[start + i])
            else:
                out.append(reader.read(8))
        return bytes(out)

    @staticmethod
    def _longest_match(data: bytes, pos: int):
        """Greedy longest match ending before ``pos`` within the window."""
        best_offset, best_length = 0, 0
        window_start = max(0, pos - (1 << _OFFSET_BITS))
        limit = min(_MAX_MATCH, len(data) - pos)
        for start in range(window_start, pos):
            length = 0
            while (
                length < limit
                and data[start + length] == data[pos + length]
            ):
                length += 1
            if length > best_length:
                best_offset, best_length = pos - start, length
        return best_offset, best_length
