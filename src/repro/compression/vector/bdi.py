"""Vector Base-Delta-Immediate kernel (docs/KERNELS.md).

BDI is the textbook case for batching: every encoding probe is one
wrapping subtraction plus a range test over the whole ``(N, words)``
matrix.  The scalar reference tries each of the six base+delta
encodings with per-word Python arithmetic; here all six probes run as
whole-array ops and only the winning encoding's payload is assembled.

Feasibility uses the same modular identity as the scalar code: with
``m = (word - base) mod 2**(8*bb)`` the signed delta fits ``w`` bits
iff ``m <= 2**(w-1) - 1`` or ``m >= 2**(8*bb) - 2**(w-1)``, and its
two's-complement image is just ``m & (2**w - 1)`` (the modulus is a
multiple of ``2**w``).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..base import CompressedLine
from ..bdi import _ENCODINGS, _TAG_BITS, _TAG_RAW, _TAG_REP, _TAG_ZERO, BDICompressor
from ..bitstream import Bits
from .layout import words_view
from .zero import zero_mask

_BE_DTYPE = {1: ">u1", 2: ">u2", 4: ">u4", 8: ">u8"}


class BDIKernel:
    """Batch counterpart of :class:`repro.compression.bdi.BDICompressor`."""

    name = "bdi"

    def __init__(self, line_size: int = 64) -> None:
        if line_size % 8 != 0:
            raise ValueError(f"line_size must be a multiple of 8, got {line_size}")
        self.line_size = line_size
        self._scalar = BDICompressor(line_size)
        #: Fixed payload bits per encoding (tag excluded), in registry order.
        self._enc_bits = np.array(
            [8 * (e.base_bytes + (line_size // e.base_bytes) * e.delta_bytes)
             for e in _ENCODINGS], dtype=np.int64)

    # -- classification ---------------------------------------------------

    def _feasible(self, arr: np.ndarray) -> np.ndarray:
        """``(N, 6)`` bool — which base+delta encodings fit each line."""
        masks = []
        for enc in _ENCODINGS:
            words = words_view(arr, enc.base_bytes)
            w = enc.delta_bytes * 8
            m = words - words[:, :1]            # wrapping uint subtraction
            hi = np.asarray(2 ** (w - 1) - 1, dtype=words.dtype)
            lo = np.asarray(2 ** (enc.base_bytes * 8) - 2 ** (w - 1),
                            dtype=words.dtype)
            masks.append(((m <= hi) | (m >= lo)).all(axis=1))
        return np.stack(masks, axis=1)

    def _classify(self, arr: np.ndarray):
        """Per-line (kind, enc index, size_bits) following scalar priority."""
        n = arr.shape[0]
        zero = zero_mask(arr)
        u64 = words_view(arr, 8)
        rep = (u64 == u64[:, :1]).all(axis=1) & ~zero
        feasible = self._feasible(arr)
        raw_bits = self.line_size * 8
        sized = np.where(feasible, self._enc_bits[None, :], raw_bits + 1)
        enc_idx = np.argmin(sized, axis=1)
        enc_bits = sized[np.arange(n), enc_idx]
        has_enc = enc_bits < raw_bits  # scalar keeps raw unless strictly smaller
        size = np.where(zero, 8,
                        np.where(rep, 64,
                                 np.where(has_enc, enc_bits, raw_bits)))
        return zero, rep, has_enc & ~zero & ~rep, enc_idx, size.astype(np.int64)

    def size_bits(self, arr: np.ndarray) -> np.ndarray:
        return self._classify(arr)[4]

    # -- compression ------------------------------------------------------

    def compress(self, arr: np.ndarray) -> List[CompressedLine]:
        n = arr.shape[0]
        zero, rep, enc_won, enc_idx, size = self._classify(arr)
        out: List[CompressedLine] = [None] * n  # type: ignore[list-item]

        for i in np.flatnonzero(zero):
            out[i] = CompressedLine(self.name, 8, Bits(_TAG_ZERO, _TAG_BITS),
                                    self.line_size)
        u64 = words_view(arr, 8)
        for i in np.flatnonzero(rep):
            value = (_TAG_REP << 64) | int(u64[i, 0])
            out[i] = CompressedLine(self.name, 64, Bits(value, _TAG_BITS + 64),
                                    self.line_size)

        for e, enc in enumerate(_ENCODINGS):
            rows = np.flatnonzero(enc_won & (enc_idx == e))
            if not rows.size:
                continue
            words = words_view(arr[rows], enc.base_bytes)
            base = words[:, 0]
            w = enc.delta_bytes * 8
            tc = ((words - base[:, None])
                  & np.asarray(2 ** w - 1, dtype=words.dtype))
            delta_be = tc.astype(_BE_DTYPE[enc.delta_bytes])
            nwords = words.shape[1]
            body_bits = nwords * w
            payload_bits = enc.base_bytes * 8 + body_bits
            for k, i in enumerate(rows):
                value = (enc.tag << (enc.base_bytes * 8)) | int(base[k])
                value = (value << body_bits) | int.from_bytes(
                    delta_be[k].tobytes(), "big")
                out[i] = CompressedLine(
                    self.name, payload_bits,
                    Bits(value, _TAG_BITS + payload_bits), self.line_size)

        raw_bits = self.line_size * 8
        for i in np.flatnonzero(~zero & ~rep & ~enc_won):
            value = (_TAG_RAW << raw_bits) | int.from_bytes(
                arr[i].tobytes(), "big")
            out[i] = CompressedLine(self.name, raw_bits,
                                    Bits(value, _TAG_BITS + raw_bits),
                                    self.line_size)
        return out

    # -- decompression ----------------------------------------------------

    def decompress(self, lines) -> List[bytes]:
        out: List[bytes] = []
        by_tag = {e.tag: e for e in _ENCODINGS}
        for line in lines:
            self._scalar._check_line(line)
            tag = line.payload.value >> (line.payload.length - _TAG_BITS)
            if tag == _TAG_ZERO:
                out.append(bytes(line.original_size))
            elif tag == _TAG_REP:
                rep = line.payload.value & ((1 << 64) - 1)
                out.append(rep.to_bytes(8, "little")
                           * (line.original_size // 8))
            elif tag == _TAG_RAW:
                raw = line.payload.value & ((1 << (line.original_size * 8)) - 1)
                out.append(raw.to_bytes(line.original_size, "big"))
            else:
                enc = by_tag[tag]
                body_bytes = line.original_size // enc.base_bytes * enc.delta_bytes
                body = (line.payload.value
                        & ((1 << ((enc.base_bytes + body_bytes) * 8)) - 1)
                        ).to_bytes(enc.base_bytes + body_bytes, "big")
                base = int.from_bytes(body[:enc.base_bytes], "big")
                deltas = np.frombuffer(body[enc.base_bytes:],
                                       dtype=_BE_DTYPE[enc.delta_bytes])
                w = enc.delta_bytes * 8
                signed = deltas.astype(np.int64)
                signed = signed - ((signed >> (w - 1)) << w)
                udtype = {2: np.uint16, 4: np.uint32, 8: np.uint64}[enc.base_bytes]
                words = (np.asarray(base, dtype=udtype)
                         + signed.astype(udtype))
                out.append(words.astype(f"<u{enc.base_bytes}").tobytes())
        return out


__all__ = ["BDIKernel"]
