"""Numpy-vectorized batch compression kernels (docs/KERNELS.md).

The scalar compressors in :mod:`repro.compression` encode one 64-byte
line at a time in pure Python and dominate the wall clock of every
figure sweep.  This subpackage re-expresses the data-parallel parts of
BPC, BDI, FPC and zero detection as whole-array numpy operations over
``(N, words)`` batches — bit-plane transposes, base+delta probes and
pattern classification all run once per batch instead of once per
word — while staying byte-identical to the scalar reference (the
equivalence property tests in ``tests/test_vector_kernels.py`` pin
this down).

Entry points:

* :class:`BatchCompressor` / :func:`make_batch_compressor` — the
  N-lines-per-call API (``batch_compress``, ``batch_size_bits``,
  ``batch_decompress``);
* :func:`batch_compressor_for` — batch counterpart of an existing
  scalar compressor (used by the selector's fast path and the
  controller's ``prime_size_cache``);
* the per-algorithm kernels (:class:`BPCKernel`, :class:`BDIKernel`,
  :class:`FPCKernel`, :class:`ZeroKernel`) for direct array use.

Throughput is tracked per PR in ``BENCH_kernels.json`` via
``python -m repro.analysis bench`` — see docs/KERNELS.md for the
schema and the perf trajectory workflow.
"""

from .batch import (
    BatchCompressor,
    batch_compressor_for,
    make_batch_compressor,
    vectorized_algorithms,
)
from .bdi import BDIKernel
from .bpc import BPCKernel
from .fpc import FPCKernel
from .layout import array_to_lines, lines_to_array, words_view
from .zero import ZeroKernel, zero_mask

__all__ = [
    "BDIKernel",
    "BPCKernel",
    "BatchCompressor",
    "FPCKernel",
    "ZeroKernel",
    "array_to_lines",
    "batch_compressor_for",
    "lines_to_array",
    "make_batch_compressor",
    "vectorized_algorithms",
    "words_view",
    "zero_mask",
]
