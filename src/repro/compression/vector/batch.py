"""The BatchCompressor API over the vector kernels (docs/KERNELS.md).

A :class:`BatchCompressor` presents one algorithm's batch interface —
``batch_compress`` / ``batch_size_bits`` / ``batch_decompress`` over N
lines per call — backed by a numpy kernel when one exists (BPC, BDI,
FPC, zero) and by a scalar loop otherwise (C-Pack's FIFO dictionary
and LZ's match search are inherently sequential per line).  Outputs
are byte-identical to the scalar reference compressors, property-tested
in ``tests/test_vector_kernels.py``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..base import LINE_SIZE, CompressedLine, Compressor
from ..bdi import BDICompressor
from ..bpc import BPCCompressor
from ..cpack import CPackCompressor
from ..fpc import FPCCompressor
from ..lz import LZCompressor
from ..zero import ZeroCompressor
from .bdi import BDIKernel
from .bpc import BPCKernel
from .fpc import FPCKernel
from .layout import lines_to_array
from .zero import ZeroKernel

_KERNELS: Dict[str, object] = {
    "bpc": lambda n: BPCKernel(n),
    "bpc-transform-only": lambda n: BPCKernel(n, transform_only=True),
    "bdi": BDIKernel,
    "fpc": FPCKernel,
    "zero": ZeroKernel,
}

_SCALARS: Dict[str, object] = {
    "bpc": lambda n: BPCCompressor(n),
    "bpc-transform-only": lambda n: BPCCompressor(n, transform_only=True),
    "bdi": BDICompressor,
    "fpc": FPCCompressor,
    "cpack": CPackCompressor,
    "lz": LZCompressor,
    "zero": ZeroCompressor,
}


def vectorized_algorithms() -> List[str]:
    """Algorithm names with a true numpy kernel (no scalar fallback)."""
    return sorted(_KERNELS)


class BatchCompressor:
    """Compress/decompress N cache lines per call.

    ``vectorized`` tells whether a numpy kernel backs this instance;
    when False every batch call falls back to a scalar loop, so the
    API stays uniform across all registry algorithms.
    """

    def __init__(self, algorithm: str = "bpc",
                 line_size: int = LINE_SIZE) -> None:
        if algorithm not in _SCALARS:
            raise ValueError(f"unknown algorithm {algorithm!r}; "
                             f"known: {sorted(_SCALARS)}")
        self.algorithm = algorithm
        self.line_size = line_size
        self._scalar: Compressor = _SCALARS[algorithm](line_size)
        factory = _KERNELS.get(algorithm)
        self._kernel = factory(line_size) if factory is not None else None

    @classmethod
    def for_compressor(cls, compressor: Compressor) -> "BatchCompressor":
        """The batch counterpart of an existing scalar compressor."""
        name = compressor.name
        if getattr(compressor, "transform_only", False):
            name = f"{name}-transform-only"
        batch = cls(name, compressor.line_size)
        batch._scalar = compressor  # share any compressor-local state
        return batch

    @property
    def name(self) -> str:
        return self._scalar.name

    @property
    def vectorized(self) -> bool:
        return self._kernel is not None

    def batch_compress(self, lines: Sequence[bytes]) -> List[CompressedLine]:
        """Compress N lines; element i equals ``scalar.compress(lines[i])``."""
        if self._kernel is None:
            return [self._scalar.compress(bytes(line)) for line in lines]
        return self._kernel.compress(lines_to_array(lines, self.line_size))

    def batch_size_bits(self, lines: Sequence[bytes]) -> np.ndarray:
        """Encoded sizes only — the pure-array fast path (no payloads)."""
        if self._kernel is None:
            return np.array([self._scalar.compress(bytes(line)).size_bits
                             for line in lines], dtype=np.int64)
        return self._kernel.size_bits(lines_to_array(lines, self.line_size))

    def batch_decompress(self, lines: Sequence[CompressedLine]) -> List[bytes]:
        """Invert :meth:`batch_compress` exactly."""
        if self._kernel is None:
            return [self._scalar.decompress(line) for line in lines]
        return self._kernel.decompress(lines)


def make_batch_compressor(name: str,
                          line_size: int = LINE_SIZE) -> BatchCompressor:
    """Construct a batch compressor by registry name."""
    return BatchCompressor(name, line_size)


def batch_compressor_for(compressor: Compressor
                         ) -> Optional[BatchCompressor]:
    """Batch counterpart for a scalar compressor, or None if unknown."""
    name = compressor.name
    if getattr(compressor, "transform_only", False):
        name = f"{name}-transform-only"
    if name not in _SCALARS:
        return None
    return BatchCompressor.for_compressor(compressor)


__all__ = [
    "BatchCompressor",
    "batch_compressor_for",
    "make_batch_compressor",
    "vectorized_algorithms",
]
