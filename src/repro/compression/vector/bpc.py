"""Vector Bit-Plane-Compression kernel (docs/KERNELS.md).

The expensive parts of BPC — the 33-bit delta transform, the bit-plane
transpose, and the DBX symbol classification — are all data-parallel,
which is exactly why the original hardware design exists (Kim et al.,
ISCA 2016).  Here they run as whole-batch array ops:

* deltas: one wrapping subtraction over the ``(N, 15)`` word matrix;
* bit planes: 33 masked-shift matmuls producing an ``(N, 33)`` plane
  matrix (plane ``p`` packs bit ``32-p`` of every delta) — the scalar
  reference spends ~500 Python operations per line on this transpose;
* DBX + symbol classes: shifted XOR and power-of-two tests on the
  plane matrix, with zero-run lengths from two column scans.

Both the delta mode and the no-transform (plain) mode are classified
for every line; mode selection then replicates the scalar reference's
exact rule (plain is only *considered* when the delta encoding exceeds
one 64-bit bin, and wins only when strictly smaller; raw wins when
neither beats ``line_size*8 + 2`` bits).  Payload assembly walks each
line once over the precomputed class/position matrices, emitting the
same bit stream the scalar encoder writes.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..base import CompressedLine
from ..bitstream import Bits
from ..bpc import _MODE_BITS, _MODE_DELTA, _MODE_PLAIN, _MODE_RAW, BPCCompressor
from .layout import words_view

_WORD_BITS = 32

# Plane symbol classes (internal to this kernel).
_RUN = 0        # DBX == 0, folded into a zero-run token
_DBP0 = 1       # DBX != 0 but the DBP itself is zero ('00001')
_ONES = 2       # all-ones DBX plane ('00000')
_SINGLE = 3     # single one ('00011' + pos)
_DOUBLE = 4     # two consecutive ones ('00010' + pos)
_RAW_PLANE = 5  # uncompressed ('1' + plane)


class _PlaneGrid:
    """Classified DBX planes for one mode over the whole batch."""

    def __init__(self, values: np.ndarray, n_planes: int, width: int) -> None:
        self.n_planes = n_planes
        self.width = width
        self.pos_bits = max(1, (width - 1).bit_length())
        mask = (1 << width) - 1
        n = values.shape[0]

        # Bit-plane transpose in three array ops: explode every value
        # into its big-endian bit vector, keep the low n_planes bits
        # (bit b of value lands at column 64-1-b, so plane p = column
        # 64-n_planes+p), and collapse the value axis with a weighted
        # matmul (bit of value i contributes 2**i to its plane).
        bits = np.unpackbits(
            values.astype(">u8").view(np.uint8).reshape(n, width, 8),
            axis=2)[:, :, 64 - n_planes:]
        weights = (np.int64(1) << np.arange(width, dtype=np.int64))
        planes = np.matmul(bits.transpose(0, 2, 1).astype(np.int64), weights)

        dbx = planes.copy()
        dbx[:, 1:] ^= planes[:, :-1]

        single = (dbx & (dbx - 1)) == 0          # power of two (or 0)
        low = dbx & -dbx
        double = (dbx == (low | (low << 1))) & ((low << 1) <= mask)
        cls = np.select(
            [dbx == 0, planes == 0, dbx == mask, single, double],
            [_RUN, _DBP0, _ONES, _SINGLE, _DOUBLE],
            default=_RAW_PLANE).astype(np.uint8)

        # Bit positions for single/double symbols (log2 is exact on
        # powers of two); garbage elsewhere, masked by the class.
        safe = np.where(dbx > 0, dbx, 1).astype(np.float64)
        msb = np.log2(safe).astype(np.int64)
        low_safe = np.where(low > 0, low, 1).astype(np.float64)
        self.pos = np.where(cls == _SINGLE, msb,
                            np.log2(low_safe).astype(np.int64))

        # Zero-run accounting: with <= 33 planes every maximal run fits
        # one '01'+len token, so a run costs 7 bits (3 when length 1).
        zx = cls == _RUN
        run_end = zx.copy()
        run_end[:, :-1] &= ~zx[:, 1:]
        count = np.zeros_like(planes)
        for p in range(n_planes):
            count[:, p] = np.where(zx[:, p],
                                   (count[:, p - 1] if p else 0) + 1, 0)
        run_cost = np.where(count == 1, 3, 7) * run_end

        symbol_cost = np.select(
            [cls == _DBP0, cls == _ONES, cls == _SINGLE, cls == _DOUBLE,
             cls == _RAW_PLANE],
            [5, 5, 5 + self.pos_bits, 5 + self.pos_bits, 1 + width],
            default=0)
        self.bits = (symbol_cost + run_cost).sum(axis=1)
        self.cls = cls
        self.dbx = dbx


class BPCKernel:
    """Batch counterpart of :class:`repro.compression.bpc.BPCCompressor`."""

    name = "bpc"

    def __init__(self, line_size: int = 64, transform_only: bool = False) -> None:
        if line_size % 4 != 0:
            raise ValueError(f"line_size must be a multiple of 4, got {line_size}")
        self.line_size = line_size
        self.transform_only = transform_only
        self._scalar = BPCCompressor(line_size, transform_only=transform_only)
        self._nwords = line_size // 4

    # -- classification ---------------------------------------------------

    def _grids(self, arr: np.ndarray):
        words = words_view(arr, 4).astype(np.int64)
        deltas = (words[:, 1:] - words[:, :-1]) & ((1 << (_WORD_BITS + 1)) - 1)
        delta_grid = _PlaneGrid(deltas, _WORD_BITS + 1, self._nwords - 1)
        plain_grid = _PlaneGrid(words, _WORD_BITS, self._nwords)
        base = words[:, 0]
        signed = np.where(base >= 1 << 31, base - (1 << 32), base)
        base_bits = np.select(
            [base == 0,
             (signed >= -8) & (signed <= 7),
             (signed >= -128) & (signed <= 127),
             (signed >= -(1 << 15)) & (signed <= (1 << 15) - 1)],
            [3, 7, 11, 19], default=33)
        return words, base, signed, base_bits, delta_grid, plain_grid

    def _select(self, base_bits, delta_grid, plain_grid):
        """Per-line (mode, size) following the scalar selection rule."""
        delta_size = _MODE_BITS + base_bits + delta_grid.bits
        plain_size = _MODE_BITS + plain_grid.bits
        size = delta_size
        mode = np.full(delta_size.shape, _MODE_DELTA, dtype=np.uint8)
        if not self.transform_only:
            take_plain = (delta_size > 64) & (plain_size < delta_size)
            size = np.where(take_plain, plain_size, size)
            mode[take_plain] = _MODE_PLAIN
        raw_bits = self.line_size * 8 + _MODE_BITS
        raw = size >= raw_bits
        size = np.where(raw, raw_bits, size)
        mode[raw] = _MODE_RAW
        return mode, size.astype(np.int64)

    def size_bits(self, arr: np.ndarray) -> np.ndarray:
        _, _, _, base_bits, delta_grid, plain_grid = self._grids(arr)
        return self._select(base_bits, delta_grid, plain_grid)[1]

    # -- compression ------------------------------------------------------

    def compress(self, arr: np.ndarray) -> List[CompressedLine]:
        words, base, signed, base_bits, delta_grid, plain_grid = \
            self._grids(arr)
        mode, size = self._select(base_bits, delta_grid, plain_grid)
        base_l = base.tolist()
        signed_l = signed.tolist()
        for grid in (delta_grid, plain_grid):
            grid.cls_l = grid.cls.tolist()
            grid.dbx_l = grid.dbx.tolist()
            grid.pos_l = grid.pos.tolist()
        mode_l = mode.tolist()
        size_l = size.tolist()
        out: List[CompressedLine] = []
        for i in range(arr.shape[0]):
            if mode_l[i] == _MODE_RAW:
                nbits = self.line_size * 8
                acc = (_MODE_RAW << nbits) | int.from_bytes(
                    arr[i].tobytes(), "big")
                out.append(CompressedLine(self.name, nbits + _MODE_BITS,
                                          Bits(acc, nbits + _MODE_BITS),
                                          self.line_size))
                continue
            if mode_l[i] == _MODE_DELTA:
                acc, nbits = self._encode_base(base_l[i], signed_l[i])
                grid = delta_grid
            else:
                acc, nbits = _MODE_PLAIN, _MODE_BITS
                grid = plain_grid
            acc, nbits = self._emit_planes(grid, i, acc, nbits)
            assert nbits == size_l[i]
            out.append(CompressedLine(self.name, nbits, Bits(acc, nbits),
                                      self.line_size))
        return out

    @staticmethod
    def _encode_base(base: int, signed: int):
        """The scalar base-word prefix code, prefixed by the mode bits."""
        acc = _MODE_DELTA
        if base == 0:
            return (acc << 3) | 0b000, _MODE_BITS + 3
        if -8 <= signed <= 7:
            return (((acc << 3) | 0b001) << 4) | (signed & 0xF), _MODE_BITS + 7
        if -128 <= signed <= 127:
            return (((acc << 3) | 0b010) << 8) | (signed & 0xFF), _MODE_BITS + 11
        if -(1 << 15) <= signed <= (1 << 15) - 1:
            return ((((acc << 3) | 0b011) << 16)
                    | (signed & 0xFFFF)), _MODE_BITS + 19
        return (((acc << 1) | 1) << 32) | base, _MODE_BITS + 33

    @staticmethod
    def _emit_planes(grid: _PlaneGrid, i: int, acc: int, nbits: int):
        cls = grid.cls_l[i]
        dbx = grid.dbx_l[i]
        pos = grid.pos_l[i]
        pos_bits = grid.pos_bits
        width = grid.width
        run = 0
        for p in range(grid.n_planes):
            c = cls[p]
            if c == _RUN:
                run += 1
                continue
            if run >= 2:
                acc = (((acc << 2) | 0b01) << 5) | (run - 2)
                nbits += 7
            elif run == 1:
                acc = (acc << 3) | 0b001
                nbits += 3
            run = 0
            if c == _DBP0:
                acc = (acc << 5) | 0b00001
                nbits += 5
            elif c == _ONES:
                acc = acc << 5
                nbits += 5
            elif c == _SINGLE:
                acc = (((acc << 5) | 0b00011) << pos_bits) | pos[p]
                nbits += 5 + pos_bits
            elif c == _DOUBLE:
                acc = (((acc << 5) | 0b00010) << pos_bits) | pos[p]
                nbits += 5 + pos_bits
            else:
                acc = (((acc << 1) | 1) << width) | dbx[p]
                nbits += 1 + width
        if run >= 2:
            acc = (((acc << 2) | 0b01) << 5) | (run - 2)
            nbits += 7
        elif run == 1:
            acc = (acc << 3) | 0b001
            nbits += 3
        return acc, nbits

    def decompress(self, lines) -> List[bytes]:
        """Prefix-coded planes decode serially; BPC decode is not on the
        simulated hot path, so this delegates to the scalar reference
        decoder line by line."""
        return [self._scalar.decompress(line) for line in lines]


__all__ = ["BPCKernel"]
