"""Array layouts shared by the vector kernels (docs/KERNELS.md).

A batch of N cache lines is one contiguous ``(N, line_size)`` uint8
array; each kernel reinterprets that buffer as little-endian words of
its working width (``(N, 16)`` uint32 for BPC/FPC, ``(N, 8)`` uint64
and friends for BDI's bases) without copying.  Keeping the byte matrix
as the canonical interchange form means one conversion per batch, not
one per (line, algorithm) pair.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


def lines_to_array(lines: Sequence[bytes], line_size: int = 64) -> np.ndarray:
    """Stack ``lines`` into an ``(N, line_size)`` uint8 matrix.

    Accepts an iterable of equal-length ``bytes`` (or anything the
    buffer protocol exposes) and validates every row length, mirroring
    ``Compressor._check_input`` for the whole batch at once.
    """
    if isinstance(lines, np.ndarray):
        arr = np.ascontiguousarray(lines, dtype=np.uint8)
        if arr.ndim != 2 or arr.shape[1] != line_size:
            raise ValueError(
                f"expected an (N, {line_size}) array, got {arr.shape}")
        return arr
    rows = list(lines)
    for row in rows:
        if len(row) != line_size:
            raise ValueError(
                f"expected {line_size}-byte lines, got {len(row)} bytes")
    if not rows:
        return np.empty((0, line_size), dtype=np.uint8)
    return np.frombuffer(b"".join(bytes(r) for r in rows),
                         dtype=np.uint8).reshape(len(rows), line_size)


def words_view(arr: np.ndarray, word_bytes: int) -> np.ndarray:
    """Reinterpret an ``(N, line_size)`` byte matrix as LE words.

    Returns an ``(N, line_size // word_bytes)`` view (no copy) with
    dtype uint16/uint32/uint64 — the vector analogue of
    :func:`repro.compression.base.words_of`.
    """
    dtype = {2: "<u2", 4: "<u4", 8: "<u8"}[word_bytes]
    return np.ascontiguousarray(arr).view(dtype)


def array_to_lines(arr: np.ndarray) -> List[bytes]:
    """Split an ``(N, line_size)`` uint8 matrix back into bytes rows."""
    return [row.tobytes() for row in np.asarray(arr, dtype=np.uint8)]
