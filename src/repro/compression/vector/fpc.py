"""Vector Frequent-Pattern-Compression kernel (docs/KERNELS.md).

FPC's seven word patterns are pure range/equality tests, so the whole
classification runs as ``(N, 16)`` array ops; zero-run folding (the
only sequential part) reduces to two 16-column scans that stay
vectorized across the batch.  Payload assembly walks each line once
over the precomputed class/value/width matrices.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..base import CompressedLine
from ..bitstream import Bits
from ..fpc import FPCCompressor
from .layout import words_view

#: Payload width in bits per word class (index = the 3-bit FPC prefix).
_WIDTHS = (3, 4, 8, 16, 16, 16, 8, 32)  # index 0 (zero run) unused here


class FPCKernel:
    """Batch counterpart of :class:`repro.compression.fpc.FPCCompressor`."""

    name = "fpc"

    def __init__(self, line_size: int = 64) -> None:
        if line_size % 4 != 0:
            raise ValueError(f"line_size must be a multiple of 4, got {line_size}")
        self.line_size = line_size
        self._scalar = FPCCompressor(line_size)

    # -- classification ---------------------------------------------------

    def _classify(self, arr: np.ndarray):
        """Class, payload value/width per word; zero-run token geometry."""
        words = words_view(arr, 4)
        s = words.view(np.int32)
        zero = words == 0

        hi_s = s >> 16                                   # sign-extended hi half
        lo_s = ((words & 0xFFFF) ^ 0x8000).astype(np.int64) - 0x8000
        conds = [
            (s >= -8) & (s <= 7),                        # 1: se4
            (s >= -128) & (s <= 127),                    # 2: se8
            (s >= -(1 << 15)) & (s <= (1 << 15) - 1),    # 3: se16
            (words >> 16) == 0,                          # 4: half zero
            (hi_s >= -128) & (hi_s <= 127)
            & (lo_s >= -128) & (lo_s <= 127),            # 5: two half se8
            words == (words & 0xFF) * np.uint32(0x01010101),  # 6: rep bytes
        ]
        cls = np.select(conds, [1, 2, 3, 4, 5, 6], default=7).astype(np.uint8)
        cls[zero] = 0

        vals = np.select(
            [cls == 1, cls == 2, cls == 3, cls == 4,
             cls == 5, cls == 6],
            [words & 0xF, words & 0xFF, words & 0xFFFF, words & 0xFFFF,
             (((words >> 16) & 0xFF) << 8) | (words & 0xFF), words & 0xFF],
            default=words).astype(np.int64)
        widths = np.asarray(_WIDTHS, dtype=np.int64)[cls]

        # Greedy zero runs of <= 8 words: a 6-bit token starts at every
        # zero word whose distance from its run start is a multiple of 8.
        ncols = words.shape[1]
        back = np.zeros_like(words, dtype=np.int64)      # run length ending here
        fwd = np.zeros_like(back)                        # run length starting here
        for j in range(ncols):
            back[:, j] = np.where(zero[:, j],
                                  (back[:, j - 1] if j else 0) + 1, 0)
        for j in range(ncols - 1, -1, -1):
            fwd[:, j] = np.where(
                zero[:, j],
                (fwd[:, j + 1] if j < ncols - 1 else 0) + 1, 0)
        token = zero & ((back - 1) % 8 == 0)
        run_val = np.minimum(fwd, 8) - 1                 # stored as len-1
        return cls, vals, widths, token, run_val

    def size_bits(self, arr: np.ndarray) -> np.ndarray:
        cls, _, widths, token, _ = self._classify(arr)
        nonzero = cls != 0
        return ((3 + widths) * nonzero).sum(axis=1) + 6 * token.sum(axis=1)

    # -- compression ------------------------------------------------------

    def compress(self, arr: np.ndarray) -> List[CompressedLine]:
        cls, vals, widths, token, run_val = self._classify(arr)
        cls_l = cls.tolist()
        vals_l = vals.tolist()
        widths_l = widths.tolist()
        token_l = token.tolist()
        run_l = run_val.tolist()
        out: List[CompressedLine] = []
        ncols = arr.shape[1] // 4
        for i in range(arr.shape[0]):
            acc = 0
            nbits = 0
            crow, vrow, wrow, trow, rrow = (cls_l[i], vals_l[i], widths_l[i],
                                            token_l[i], run_l[i])
            for j in range(ncols):
                c = crow[j]
                if c == 0:
                    if trow[j]:
                        acc = (acc << 6) | rrow[j]       # prefix 000 + len-1
                        nbits += 6
                    continue
                w = wrow[j]
                acc = (((acc << 3) | c) << w) | vrow[j]
                nbits += 3 + w
            out.append(CompressedLine(self.name, nbits, Bits(acc, nbits),
                                      self.line_size))
        return out

    def decompress(self, lines) -> List[bytes]:
        """Variable-width bit streams decode serially; FPC decode is not
        on the simulated hot path, so this delegates to the scalar
        reference decoder line by line."""
        return [self._scalar.decompress(line) for line in lines]


__all__ = ["FPCKernel"]
