"""Vector zero-line kernel (docs/KERNELS.md).

Zero detection is the cheapest and highest-value classification in the
whole pipeline (the paper serves zero lines from metadata alone,
§VII-A); over a batch it is a single ``any`` reduction per line.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..base import CompressedLine
from ..bitstream import Bits
from ..zero import ZeroCompressor
from .layout import lines_to_array


def zero_mask(arr: np.ndarray) -> np.ndarray:
    """``(N,)`` bool — True where the whole line is zero bytes."""
    return ~arr.any(axis=1)


class ZeroKernel:
    """Batch counterpart of :class:`repro.compression.zero.ZeroCompressor`."""

    name = "zero"

    def __init__(self, line_size: int = 64) -> None:
        self.line_size = line_size
        self._scalar = ZeroCompressor(line_size)

    def size_bits(self, arr: np.ndarray) -> np.ndarray:
        return np.where(zero_mask(arr), 0, self.line_size * 8).astype(np.int64)

    def compress(self, arr: np.ndarray) -> List[CompressedLine]:
        nbits = self.line_size * 8
        zero = zero_mask(arr)
        out: List[CompressedLine] = []
        for i in range(arr.shape[0]):
            if zero[i]:
                out.append(CompressedLine(self.name, 0, Bits(0, 0),
                                          self.line_size))
            else:
                raw = int.from_bytes(arr[i].tobytes(), "big")
                out.append(CompressedLine(self.name, nbits, Bits(raw, nbits),
                                          self.line_size))
        return out

    def decompress(self, lines) -> List[bytes]:
        return [self._scalar.decompress(line) for line in lines]


__all__ = ["ZeroKernel", "zero_mask", "lines_to_array"]
