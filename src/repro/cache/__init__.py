"""Cache hierarchy substrate (L1/L2/L3, Tab. III; DESIGN.md)."""

from .cache import Cache, CacheStats
from .hierarchy import CacheHierarchy, HierarchyConfig, MemoryEvent

__all__ = [
    "Cache",
    "CacheHierarchy",
    "CacheStats",
    "HierarchyConfig",
    "MemoryEvent",
]
