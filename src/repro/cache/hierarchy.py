"""Three-level cache hierarchy (paper Tab. III).

64 KB L1D, 512 KB L2, and a 16-way 2 MB L3 per core (8 MB shared for
the 4-core configuration).  The hierarchy filters a core's load/store
stream into the LLC miss/writeback stream the memory controller sees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .cache import Cache, CacheStats


@dataclass
class HierarchyConfig:
    l1_bytes: int = 64 * 1024
    l1_assoc: int = 8
    l2_bytes: int = 512 * 1024
    l2_assoc: int = 8
    l3_bytes: int = 2 * 1024 * 1024
    l3_assoc: int = 16
    line_size: int = 64


@dataclass
class MemoryEvent:
    """An LLC-level event produced by the hierarchy."""

    address: int
    is_writeback: bool


class CacheHierarchy:
    """L1 → L2 → L3 with writeback propagation.

    ``access`` returns the list of memory events (LLC miss fill and/or
    LLC dirty-victim writeback) the access generated — exactly the
    stream a memory controller consumes.
    """

    def __init__(self, config: HierarchyConfig = HierarchyConfig(),
                 shared_l3: Optional[Cache] = None) -> None:
        self.config = config
        line = config.line_size
        self.l1 = Cache(config.l1_bytes, config.l1_assoc, line, "L1D")
        self.l2 = Cache(config.l2_bytes, config.l2_assoc, line, "L2")
        self.l3 = shared_l3 or Cache(config.l3_bytes, config.l3_assoc, line, "L3")

    def access(self, address: int, is_write: bool) -> List[MemoryEvent]:
        """One core load/store; returns LLC-level memory events."""
        events: List[MemoryEvent] = []
        hit, victim = self.l1.access(address, is_write)
        self._spill(self.l2, victim, events, level=2)
        if hit:
            return events
        hit, victim = self.l2.access(address, is_write=False)
        self._spill(self.l3, victim, events, level=3)
        if hit:
            return events
        hit, victim = self.l3.access(address, is_write=False)
        if victim is not None:
            events.append(MemoryEvent(victim, is_writeback=True))
        if not hit:
            events.append(MemoryEvent(address, is_writeback=False))
        return events

    def _spill(self, lower: Cache, victim: Optional[int],
               events: List[MemoryEvent], level: int) -> None:
        """Install a dirty victim one level down, propagating evictions."""
        if victim is None:
            return
        _, next_victim = lower.access(victim, is_write=True)
        if level == 2:
            self._spill(self.l3, next_victim, events, level=3)
        elif next_victim is not None:
            events.append(MemoryEvent(next_victim, is_writeback=True))

    def flush(self) -> List[MemoryEvent]:
        """Drain all dirty lines to memory (end of simulation)."""
        events: List[MemoryEvent] = []
        for victim in self.l1.flush():
            self._spill(self.l2, victim, events, level=2)
        for victim in self.l2.flush():
            self._spill(self.l3, victim, events, level=3)
        events.extend(
            MemoryEvent(address, is_writeback=True)
            for address in self.l3.flush()
        )
        return events

    def stats(self) -> dict:
        return {"l1": self.l1.stats, "l2": self.l2.stats, "l3": self.l3.stats}
