"""Set-associative writeback cache model (paper Tab. III hierarchy).

Used by the full-hierarchy simulation mode and the examples; the main
experiments drive the memory controller with LLC-level traces directly
(see :mod:`repro.workloads.tracegen`), which is the standard shortcut
for memory-system studies.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def miss_rate(self) -> float:
        return 1.0 - self.hit_rate()


class Cache:
    """One cache level: set-associative, LRU, writeback + write-allocate."""

    def __init__(self, size_bytes: int, assoc: int, line_size: int = 64,
                 name: str = "cache") -> None:
        if size_bytes % (assoc * line_size):
            raise ValueError(f"{name}: size must divide into assoc x line sets")
        self.name = name
        self.line_size = line_size
        self.assoc = assoc
        self.n_sets = size_bytes // (assoc * line_size)
        self.stats = CacheStats()
        # Per set: OrderedDict tag -> dirty flag, LRU order (oldest first).
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.n_sets)]

    def _locate(self, address: int) -> Tuple[int, int]:
        block = address // self.line_size
        return block % self.n_sets, block // self.n_sets

    def access(self, address: int, is_write: bool) -> Tuple[bool, Optional[int]]:
        """Access one address.

        Returns ``(hit, writeback_address)``: on a miss the line is
        allocated, evicting the LRU line; a dirty victim's address is
        returned so the caller can propagate the writeback.
        """
        set_index, tag = self._locate(address)
        entries = self._sets[set_index]
        victim_address = None
        if tag in entries:
            self.stats.hits += 1
            entries.move_to_end(tag)
            if is_write:
                entries[tag] = True
            return True, None
        self.stats.misses += 1
        if len(entries) >= self.assoc:
            victim_tag, dirty = next(iter(entries.items()))
            del entries[victim_tag]
            self.stats.evictions += 1
            if dirty:
                self.stats.writebacks += 1
                victim_address = (
                    (victim_tag * self.n_sets + set_index) * self.line_size
                )
        entries[tag] = is_write
        return False, victim_address

    def contains(self, address: int) -> bool:
        set_index, tag = self._locate(address)
        return tag in self._sets[set_index]

    def flush(self) -> List[int]:
        """Write back and drop everything; returns dirty line addresses."""
        dirty_addresses = []
        for set_index, entries in enumerate(self._sets):
            for tag, dirty in entries.items():
                if dirty:
                    dirty_addresses.append(
                        (tag * self.n_sets + set_index) * self.line_size
                    )
            entries.clear()
        self.stats.writebacks += len(dirty_addresses)
        return dirty_addresses
