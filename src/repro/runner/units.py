"""Work units and content-addressed cache keys.

A :class:`WorkUnit` is the runner's unit of scheduling, caching and
journaling: one module-level function (picklable, so it crosses the
``multiprocessing`` boundary by reference) plus JSON-serializable
keyword arguments.  Its cache key is a SHA-256 over the canonicalized
(function name, params, code version) triple, so any change to an
experiment config dataclass field, the trace seed, or the source tree
invalidates exactly the affected cells.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Any, Callable, Dict, Mapping


def canonical(value: Any) -> Any:
    """Reduce ``value`` to a deterministic JSON-serializable form.

    Dataclasses become dicts tagged with their type name (so two config
    classes with identical fields do not collide), mappings are
    key-sorted, and tuples become lists.  Raises ``TypeError`` for
    anything that would not round-trip through JSON — unit params must
    be plain data.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        out: Dict[str, Any] = {"__dataclass__": type(value).__name__}
        for f in dataclasses.fields(value):
            out[f.name] = canonical(getattr(value, f.name))
        return out
    if isinstance(value, Mapping):
        return {str(key): canonical(value[key])
                for key in sorted(value, key=str)}
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, float, str)):
        return value
    raise TypeError(
        f"work-unit params must be JSON-serializable data, got "
        f"{type(value).__name__}: {value!r}"
    )


@lru_cache(maxsize=1)
def code_version() -> str:
    """Hash of every ``.py`` file under ``src/repro`` (the code key).

    Computed once per process; editing any source file invalidates the
    whole cache, which is the conservative (always-correct) rule.
    """
    root = Path(__file__).resolve().parent.parent   # src/repro
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(path.relative_to(root).as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


@dataclass
class WorkUnit:
    """One independent (benchmark, system, config) experiment cell."""

    experiment: str                 # owning experiment id, e.g. "fig10"
    label: str                      # display label, e.g. "fig10/gcc"
    fn: Callable[..., Any]          # module-level unit function
    params: Mapping[str, Any] = field(default_factory=dict)

    def key(self) -> str:
        return unit_key(self.fn.__name__, self.params)

    def seed(self) -> Any:
        """The unit's random seed, when its params carry one.

        Looks for a literal ``seed`` param first, then for the ``seed``
        field of a ``scale`` config dataclass (the experiment units'
        convention).  Returns ``None`` for seedless units; the journal
        then omits the ``seed`` field (docs/RESULTS.md).
        """
        value = self.params.get("seed")
        if isinstance(value, int) and not isinstance(value, bool):
            return value
        scale = self.params.get("scale")
        value = getattr(scale, "seed", None)
        if isinstance(value, int) and not isinstance(value, bool):
            return value
        return None

    def run(self) -> Any:
        return self.fn(**dict(self.params))


def unit_key(fn_name: str, params: Mapping[str, Any],
             code: str | None = None) -> str:
    """Content-addressed cache key for a unit invocation."""
    payload = {
        "unit": fn_name,
        "params": canonical(dict(params)),
        "code": code if code is not None else code_version(),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()
