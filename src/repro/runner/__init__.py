"""Parallel experiment runner: work units, result cache, run journal.

The experiment matrix behind every paper artifact (Figs. 2-12, Tab. II)
is embarrassingly parallel: each (benchmark, system, config) cell is an
independent deterministic computation.  This package decomposes the
:mod:`repro.analysis.experiments` runners into :class:`WorkUnit` cells
and provides:

* :class:`Runner` — fans units out over ``multiprocessing`` (``jobs=1``
  preserves the historical deterministic serial path),
* :class:`ResultCache` — a content-addressed JSON store under
  ``.repro_cache/`` keyed by (unit name, canonical params, code
  version), so regeneration only recomputes invalidated cells,
* :class:`RunJournal` — structured per-unit events appended to
  ``runs.jsonl`` plus an end-of-run timing table.

See ``docs/RUNNER.md`` for the CLI, cache layout, invalidation rules
and the journal event schema.
"""

from .cache import ResultCache
from .executor import (
    Runner,
    UnitFailure,
    UnitFailureError,
    UnitRecord,
    timing_table,
)
from .journal import (
    EVENT_SCHEMA,
    RunJournal,
    find_interrupted,
    read_journal,
    validate_event,
)
from .units import WorkUnit, canonical, code_version, unit_key

__all__ = [
    "EVENT_SCHEMA",
    "ResultCache",
    "RunJournal",
    "Runner",
    "UnitFailure",
    "UnitFailureError",
    "UnitRecord",
    "WorkUnit",
    "canonical",
    "code_version",
    "find_interrupted",
    "read_journal",
    "timing_table",
    "unit_key",
    "validate_event",
]
