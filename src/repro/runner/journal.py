"""Run journal: structured per-unit events appended to ``runs.jsonl``.

Every runner invocation gets a ``run_id``; every work unit produces a
``unit_start`` / ``unit_end`` event pair.  Events are one JSON object
per line, append-only, so successive runs accumulate into a durable
history that tooling can tail or aggregate.  Each append is flushed
and fsynced before :meth:`RunJournal.event` returns, so a crash —
even of the whole machine — loses at most the event being written;
:func:`find_interrupted` then reads the surviving prefix (tolerating
one torn trailing line) and reports which units a crashed run left
unfinished (docs/ROBUSTNESS.md).

Event schema (see also docs/RUNNER.md):

==============  =====================================================
event           required fields (beyond ``event``, ``run_id``, ``ts``)
==============  =====================================================
``run_start``   ``jobs`` (int), ``cache_enabled`` (bool)
``unit_start``  ``unit`` (str), ``experiment`` (str), ``key`` (str or
                null), ``cached`` (bool)
``unit_retry``  ``unit``, ``experiment``, ``key``, ``attempt`` (int),
                ``reason`` (str), ``delay_s`` (float)
``unit_end``    ``unit``, ``experiment``, ``key``, ``cached``,
                ``wall_s`` (float), ``ok`` (bool)
``run_end``     ``wall_s`` (float), ``units`` (int), ``cache_hits``
                (int)
``bench``       ``out`` (str), ``lines`` (int), ``algorithms``
                (list), ``best_speedup`` (float), ``match`` (bool) —
                one kernel micro-benchmark digest per
                ``python -m repro.analysis bench`` run
                (docs/KERNELS.md)
``index``       ``db`` (str), ``sources`` (list), ``inserted``
                (int) — one results-index ingest
                (``python -m repro.analysis index``, docs/RESULTS.md)
``compare``     ``db`` (str), ``run_a`` (str), ``run_b`` (str),
                ``metrics`` (int), ``regressions`` (int) — one
                cross-run comparison
                (``python -m repro.analysis compare``,
                docs/RESULTS.md)
``shard_run_start``  ``shards`` (int), ``mix`` (str), ``system``
                (str), ``total_steps`` (int) — one supervised sharded
                run begins (docs/SHARDING.md)
``shard_recover``  ``shard`` (int), ``respawns`` (int), ``replayed``
                (int) — one kill→respawn→replay recovery
``shard_run_end``  ``shards`` (int), ``agreed`` (bool), ``digest``
                (str) — the run merged with N-way digest agreement
``chaos``       ``cells`` (int), ``injected`` (int), ``silent``
                (int), ``divergent`` (int), ``clean`` (bool) — one
                ``python -m repro.analysis chaos`` campaign digest
==============  =====================================================

``unit_end`` additionally carries ``stats`` (a ControllerStats summary
dict) when the unit reports one, and ``timeline`` (a
``repro.obs.timeline_digest`` dict — windowed extra-access totals per
§IV source plus the peak window) when the unit ran under a tracer
(``--trace-window`` / ``ExperimentScale.trace_window``).  When the
unit ran with the memory-model sanitizer attached (``--sanitize`` /
``ExperimentScale.sanitize``) it also carries ``sanitizer`` (a dict
with the invariant ``violations`` count — see docs/LINTING.md), and
``run_start`` records ``sanitize: true`` for the whole run.

Multi-seed runs (``--seeds N``, docs/RESULTS.md) add ``seeds`` and
``base_seed`` (ints) to ``run_start`` and a ``seed`` (int) to every
``unit_start``/``unit_end`` whose params carry one, so downstream
tooling (the results index) can group a unit's samples across seeds.
These optional payloads are *validated when present*: a malformed
``stats``/``timeline``/``sanitizer`` dict is a schema problem, not a
silently journaled (and later silently mis-ingested) blob.
"""

from __future__ import annotations

import json
import os
import time
import uuid
import warnings
from pathlib import Path
from typing import Any, Dict, List, Optional

DEFAULT_JOURNAL_PATH = "runs.jsonl"

#: event type -> {field name: required type(s)} beyond the common trio.
EVENT_SCHEMA: Dict[str, Dict[str, tuple]] = {
    "run_start": {"jobs": (int,), "cache_enabled": (bool,)},
    "unit_start": {"unit": (str,), "experiment": (str,),
                   "key": (str, type(None)), "cached": (bool,)},
    "unit_retry": {"unit": (str,), "experiment": (str,),
                   "key": (str, type(None)), "attempt": (int,),
                   "reason": (str,), "delay_s": (int, float)},
    "unit_end": {"unit": (str,), "experiment": (str,),
                 "key": (str, type(None)), "cached": (bool,),
                 "wall_s": (int, float), "ok": (bool,)},
    "run_end": {"wall_s": (int, float), "units": (int,),
                "cache_hits": (int,)},
    "bench": {"out": (str,), "lines": (int,), "algorithms": (list,),
              "best_speedup": (int, float), "match": (bool,)},
    "index": {"db": (str,), "sources": (list,), "inserted": (int,)},
    "compare": {"db": (str,), "run_a": (str,), "run_b": (str,),
                "metrics": (int,), "regressions": (int,)},
    "shard_run_start": {"shards": (int,), "mix": (str,),
                        "system": (str,), "total_steps": (int,)},
    "shard_recover": {"shard": (int,), "respawns": (int,),
                      "replayed": (int,)},
    "shard_run_end": {"shards": (int,), "agreed": (bool,),
                      "digest": (str,)},
    "chaos": {"cells": (int,), "injected": (int,), "silent": (int,),
              "divergent": (int,), "clean": (bool,)},
}

_COMMON_FIELDS = {"event": (str,), "run_id": (str,), "ts": (int, float)}


def _check_number_map(value: Any) -> Optional[str]:
    """A dict of string keys to numbers/nulls (the ``stats`` digest)."""
    if not isinstance(value, dict):
        return f"is not an object ({type(value).__name__})"
    for key, entry in value.items():
        if not isinstance(key, str):
            return f"key {key!r} is not a string"
        if isinstance(entry, bool) or not isinstance(
                entry, (int, float, type(None))):
            return f"[{key!r}] is not a number or null"
    return None


def _check_timeline(value: Any) -> Optional[str]:
    """A ``repro.obs.timeline_digest`` dict (docs/OBSERVABILITY.md)."""
    if not isinstance(value, dict):
        return f"is not an object ({type(value).__name__})"
    for name in ("window", "extra_accesses"):
        entry = value.get(name)
        if isinstance(entry, bool) or not isinstance(entry, int):
            return f"[{name!r}] missing or not an int"
    if value["window"] <= 0:
        return "['window'] must be positive"
    by_source = value.get("by_source")
    if not isinstance(by_source, dict):
        return "['by_source'] missing or not an object"
    for source, extra in by_source.items():
        if not isinstance(source, str) or isinstance(extra, bool) \
                or not isinstance(extra, int):
            return f"['by_source'][{source!r}] is not an int"
    peak = value.get("peak", None)
    if peak is not None and not isinstance(peak, dict):
        return "['peak'] is neither an object nor null"
    return None


def _check_sanitizer(value: Any) -> Optional[str]:
    """The sanitizer digest: at least a ``violations`` count."""
    if not isinstance(value, dict):
        return f"is not an object ({type(value).__name__})"
    violations = value.get("violations")
    if isinstance(violations, bool) or not isinstance(violations, int):
        return "['violations'] missing or not an int"
    if violations < 0:
        return "['violations'] is negative"
    return None


def _check_int(value: Any) -> Optional[str]:
    if isinstance(value, bool) or not isinstance(value, int):
        return f"is not an int ({type(value).__name__})"
    return None


#: event type -> {optional field: shape checker}.  These fields may be
#: absent; when present their payload must have the documented shape.
_OPTIONAL_FIELDS: Dict[str, Dict[str, Any]] = {
    "run_start": {"seeds": _check_int, "base_seed": _check_int},
    "unit_start": {"seed": _check_int},
    "unit_end": {"seed": _check_int, "stats": _check_number_map,
                 "timeline": _check_timeline,
                 "sanitizer": _check_sanitizer},
}


class RunJournal:
    """Append-only JSONL event log for one (or more) runner invocations."""

    # flowcheck: boundary(run_id is deliberately unique per invocation; it labels provenance, not results)
    def __init__(self, path: str | Path = DEFAULT_JOURNAL_PATH,
                 run_id: Optional[str] = None) -> None:
        self.path = Path(path)
        self.run_id = run_id or uuid.uuid4().hex[:12]

    # flowcheck: boundary(ts field is wall-clock provenance by design; simulated results never read it)
    def event(self, event: str, **fields: Any) -> Dict[str, Any]:
        """Append one event; returns the record written.

        The line is flushed and fsynced before returning, so every
        event that this method returned from survives a crash of the
        process or the machine (crash-safe journal,
        docs/ROBUSTNESS.md).
        """
        record = {"event": event, "run_id": self.run_id,
                  "ts": time.time(), **fields}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        return record


def validate_event(record: Any) -> List[str]:
    """Return a list of schema problems for one journal record (empty = ok)."""
    problems: List[str] = []
    if not isinstance(record, dict):
        return [f"record is not an object: {record!r}"]
    for name, types in _COMMON_FIELDS.items():
        if name not in record:
            problems.append(f"missing field {name!r}")
        elif not isinstance(record[name], types):
            problems.append(f"field {name!r} has type "
                            f"{type(record[name]).__name__}")
    event = record.get("event")
    if event not in EVENT_SCHEMA:
        problems.append(f"unknown event type {event!r}")
        return problems
    for name, types in EVENT_SCHEMA[event].items():
        if name not in record:
            problems.append(f"{event}: missing field {name!r}")
        elif not isinstance(record[name], types):
            problems.append(f"{event}: field {name!r} has type "
                            f"{type(record[name]).__name__}")
    for name, checker in _OPTIONAL_FIELDS.get(event, {}).items():
        if name not in record:
            continue
        problem = checker(record[name])
        if problem is not None:
            problems.append(f"{event}: field {name!r} {problem}")
    return problems


def read_journal(path: str | Path,
                 skip_invalid: bool = False) -> List[Dict[str, Any]]:
    """Parse every event in a ``runs.jsonl`` file (skipping blank lines).

    A torn *final* line — the signature of a crash mid-append, since
    every append is fsynced whole — is repaired, not propagated: the
    file is truncated back to the last valid newline (with a warning)
    and the surviving prefix is returned, so the next append continues
    a well-formed journal instead of gluing onto half a record.  An
    undecodable line anywhere *else* is genuine corruption and raises,
    unless ``skip_invalid`` drops it.
    """
    target = Path(path)
    data = target.read_bytes()
    records: List[Dict[str, Any]] = []
    offset = 0
    for raw_line in data.splitlines(keepends=True):
        line_start = offset
        offset += len(raw_line)
        line = raw_line.decode("utf-8", errors="replace").strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if not data[offset:].strip():
                # Torn final line: truncate to the last valid newline.
                warnings.warn(
                    f"{target}: torn final line "
                    f"({len(raw_line)} bytes) truncated",
                    RuntimeWarning, stacklevel=2)
                try:
                    with target.open("r+b") as handle:
                        handle.truncate(line_start)
                except OSError:
                    pass   # unwritable journal: still return the prefix
                break
            if not skip_invalid:
                raise
    return records


def find_interrupted(path: str | Path) -> Dict[str, List[Any]]:
    """Reconstruct what a crashed run left unfinished.

    Returns ``{"runs": [run_ids...], "units": [unit_start records...]}``
    where the runs have a ``run_start`` but no ``run_end`` and the
    units have a ``unit_start`` (in such a run or any other) with no
    matching ``unit_end``.  Because the runner journals ``unit_end``
    for every settled unit — success, cache hit or permanent failure —
    an open ``unit_start`` means the process died (or was killed)
    while that unit was in flight; rerunning the sweep with the cache
    enabled recomputes exactly those cells (docs/ROBUSTNESS.md).

    Units are keyed by ``(run_id, unit, key, seed)``: multi-seed
    sweeps (``run --seeds N``) run the same unit label once per seed,
    and a ``unit_end`` for seed 0 must not close seed 1's in-flight
    start — only the exact (unit, seed) pair that finished.
    """
    open_units: Dict[tuple, Dict[str, Any]] = {}
    seen_runs: List[str] = []
    ended_runs: set = set()
    for record in read_journal(path, skip_invalid=True):
        run_id = record.get("run_id")
        event = record.get("event")
        if event == "run_start" and run_id not in seen_runs:
            seen_runs.append(run_id)
        elif event == "run_end":
            ended_runs.add(run_id)
        elif event == "unit_start":
            marker = (run_id, record.get("unit"), record.get("key"),
                      record.get("seed"))
            open_units[marker] = record
        elif event == "unit_end":
            open_units.pop(
                (run_id, record.get("unit"), record.get("key"),
                 record.get("seed")), None)
    return {
        "runs": [run for run in seen_runs if run not in ended_runs],
        "units": list(open_units.values()),
    }
