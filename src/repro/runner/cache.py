"""Content-addressed result cache persisted as JSON under ``.repro_cache/``.

Each cached cell is one file named ``<sha256>.json`` holding the unit
name, its canonical params, the code version, the result payload and a
content checksum.  Keys come from :func:`repro.runner.units.unit_key`;
because the key covers (config fields, trace seed, code version),
invalidation is automatic — a stale key is simply never looked up
again and the file becomes garbage that ``clear()`` or deleting the
directory reclaims.

Writes are atomic (tmp file + ``os.replace``) so parallel workers and
concurrent runs never observe a torn cell.  Reads verify the checksum
(a SHA-256 over the rest of the payload); a cell that is unreadable,
unparsable or checksum-mismatched counts as a miss and is moved to
``.repro_cache/quarantine/`` for post-mortem rather than silently
feeding a corrupt result into an experiment table
(docs/ROBUSTNESS.md).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path
from typing import Any, Optional

from .units import WorkUnit, canonical, code_version

DEFAULT_CACHE_DIR = ".repro_cache"

#: Subdirectory (under the cache root) holding quarantined cells.
QUARANTINE_DIR = "quarantine"


def payload_checksum(payload: dict) -> str:
    """Checksum over a cell payload, excluding the checksum field itself."""
    body = {key: value for key, value in payload.items()
            if key != "checksum"}
    return hashlib.sha256(
        json.dumps(body, sort_keys=True).encode()).hexdigest()


class ResultCache:
    """JSON file store mapping unit keys to experiment cell results."""

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.quarantined = 0        # cells quarantined by this instance

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[Any]:
        """Return the cached result for ``key``, or None on miss.

        A cell that exists but is unreadable, unparsable, shaped wrong
        or checksum-mismatched is quarantined and counts as a miss;
        the next ``put`` writes a fresh cell.
        """
        path = self._path(key)
        try:
            text = path.read_text()
        except FileNotFoundError:
            return None
        except OSError:
            self._quarantine(path)
            return None
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            self._quarantine(path)
            return None
        if (not isinstance(payload, dict) or "result" not in payload
                or payload.get("checksum") != payload_checksum(payload)):
            self._quarantine(path)
            return None
        return payload["result"]

    # flowcheck: boundary(created timestamp is cache-entry provenance; results are keyed by content hash)
    def put(self, key: str, unit: WorkUnit, result: Any) -> None:
        """Persist ``result`` for ``key`` atomically."""
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {
            "key": key,
            "unit": unit.fn.__name__,
            "experiment": unit.experiment,
            "label": unit.label,
            "params": canonical(dict(unit.params)),
            "code_version": code_version(),
            "created": time.time(),
            "result": result,
        }
        payload["checksum"] = payload_checksum(payload)
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload, sort_keys=True))
        os.replace(tmp, path)

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt cell aside so it cannot serve future lookups."""
        target = self.root / QUARANTINE_DIR / path.name
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except OSError:
            # The cell may be gone already (concurrent runner) or the
            # filesystem read-only; either way it will not be served.
            return
        self.quarantined += 1

    def clear(self) -> int:
        """Delete every cached cell; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))
