"""Content-addressed result cache persisted as JSON under ``.repro_cache/``.

Each cached cell is one file named ``<sha256>.json`` holding the unit
name, its canonical params, the code version, and the result payload.
Keys come from :func:`repro.runner.units.unit_key`; because the key
covers (config fields, trace seed, code version), invalidation is
automatic — a stale key is simply never looked up again and the file
becomes garbage that ``clear()`` or deleting the directory reclaims.

Writes are atomic (tmp file + ``os.replace``) so parallel workers and
concurrent runs never observe a torn cell.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Optional

from .units import WorkUnit, canonical, code_version

DEFAULT_CACHE_DIR = ".repro_cache"


class ResultCache:
    """JSON file store mapping unit keys to experiment cell results."""

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[Any]:
        """Return the cached result for ``key``, or None on miss.

        A corrupt or half-written legacy file counts as a miss; the
        next ``put`` overwrites it.
        """
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(payload, dict) or "result" not in payload:
            return None
        return payload["result"]

    def put(self, key: str, unit: WorkUnit, result: Any) -> None:
        """Persist ``result`` for ``key`` atomically."""
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {
            "key": key,
            "unit": unit.fn.__name__,
            "experiment": unit.experiment,
            "label": unit.label,
            "params": canonical(dict(unit.params)),
            "code_version": code_version(),
            "created": time.time(),
            "result": result,
        }
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload, sort_keys=True))
        os.replace(tmp, path)

    def clear(self) -> int:
        """Delete every cached cell; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))
