"""Parallel executor: fan work units out over ``multiprocessing``.

``Runner.map`` preserves submission order in its results regardless of
completion order, normalizes every fresh result through a JSON
round-trip (so cold, warm and parallel runs return byte-identical
payloads), consults the :class:`~repro.runner.cache.ResultCache`
before computing, and emits ``unit_start``/``unit_end`` journal events
plus a live progress line.  ``jobs=1`` executes inline in the parent
process — the historical deterministic serial path, with no pool and
no pickling.

Crash tolerance (docs/ROBUSTNESS.md): parallel units each run in their
own child process, so a crashing worker (segfault, ``os._exit``,
OOM-kill) or a hanging one (killed at ``timeout`` seconds) loses only
that unit.  The scheduler retries lost units up to ``retries`` times
with exponential backoff and deterministic jitter, journals each
attempt as ``unit_retry``, and records units that exhaust their budget
as :class:`UnitFailure` (``strict=True`` raises
:class:`UnitFailureError` at the end of the sweep; non-strict sweeps
return ``None`` for the failed cells).  Passing ``timeout`` or
``retries`` routes even single-job sweeps through child processes,
since a hang can only be killed across a process boundary.

Unit processes are daemonic by default so a dying parent takes its
workers with it.  Units that must spawn their own subprocesses — the
sharded simulation's supervisor (docs/SHARDING.md) — need
``allow_children=True``, which drops the daemon flag.  That mode
refuses ``timeout``: SIGTERM-killing a supervisor unit would orphan
its grandchildren, and the supervisor carries its own heartbeat
watchdog anyway.
"""

from __future__ import annotations

import json
import multiprocessing
import random
import sys
import time
from dataclasses import dataclass
from queue import Empty
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .cache import ResultCache
from .journal import RunJournal
from .units import WorkUnit

#: Seconds a worker may be dead before its silence counts as a crash
#: (covers the gap between a child's final queue put and its exit).
_DEATH_GRACE_S = 0.5

#: Queue poll interval while the scheduler waits for results.
_POLL_S = 0.05


@dataclass
class UnitRecord:
    """Timing/caching record for one executed (or cache-served) unit."""

    label: str
    experiment: str
    key: Optional[str]
    cached: bool
    wall_s: float


@dataclass
class UnitFailure:
    """One unit that exhausted its retry budget."""

    label: str
    experiment: str
    key: Optional[str]
    attempts: int
    reason: str


class UnitFailureError(RuntimeError):
    """Raised by a strict ``Runner.map`` when units failed permanently."""


def _worker(payload: Tuple[int, int, Any, Dict[str, Any]], queue) -> None:
    """Child-process entry point: run one unit, report via the queue."""
    index, attempt, fn, params = payload
    started = time.perf_counter()
    try:
        result = fn(**params)
    except BaseException as exc:
        queue.put((index, attempt, False,
                   f"{type(exc).__name__}: {exc}",
                   time.perf_counter() - started))
        return
    queue.put((index, attempt, True, result,
               time.perf_counter() - started))


@dataclass
class _Task:
    """Scheduler state for one not-yet-settled unit."""

    index: int
    unit: WorkUnit
    key: Optional[str]
    attempt: int = 0
    not_before: float = 0.0      # monotonic launch gate (backoff)
    proc: Any = None
    deadline: Optional[float] = None
    started: float = 0.0
    dead_since: Optional[float] = None


class Runner:
    """Schedules work units serially or across worker processes.

    Args:
        jobs: max concurrently running units (1 = serial).
        cache: optional result cache probed before computing.
        journal: optional run journal receiving per-unit events.
        progress: live one-line progress on stderr.
        timeout: per-unit wall-clock budget in seconds; an over-budget
            worker is killed and the unit retried.  ``None`` disables.
        retries: extra attempts after a crash, hang or raising unit.
        backoff: base retry delay; attempt ``n`` waits
            ``backoff * 2**n`` scaled by a deterministic jitter in
            [0.5, 1.5) seeded from the unit key.
        strict: raise :class:`UnitFailureError` at the end of ``map``
            if any unit failed permanently (otherwise its result slot
            is ``None`` and the failure is listed in ``failures``).
        allow_children: spawn unit processes non-daemonic so they may
            create subprocesses of their own (the sharded simulation's
            supervisor needs this).  Incompatible with ``timeout`` —
            killing such a unit would orphan its children.
    """

    def __init__(self, jobs: int = 1, cache: Optional[ResultCache] = None,
                 journal: Optional[RunJournal] = None,
                 progress: bool = False,
                 timeout: Optional[float] = None, retries: int = 0,
                 backoff: float = 0.25, strict: bool = True,
                 allow_children: bool = False) -> None:
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.journal = journal
        self.progress = progress
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if allow_children and timeout is not None:
            raise ValueError(
                "allow_children is incompatible with timeout: killing a "
                "unit that hosts subprocesses would orphan them")
        self.allow_children = allow_children
        self.timeout = timeout
        self.retries = int(retries)
        self.backoff = backoff
        self.strict = strict
        self.records: List[UnitRecord] = []
        self.failures: List[UnitFailure] = []

    # -- public API -------------------------------------------------------

    def map(self, units: Sequence[WorkUnit]) -> List[Any]:
        """Run every unit, returning results in submission order."""
        units = list(units)
        results: List[Any] = [None] * len(units)
        # Keys are only needed when a cache or journal observes them.
        need_keys = self.cache is not None or self.journal is not None
        keys = [unit.key() if need_keys else None for unit in units]

        started = time.perf_counter()
        base = len(self.records)
        failures_base = len(self.failures)
        done = 0
        pending: List[_Task] = []
        for index, unit in enumerate(units):
            key = keys[index]
            hit = self.cache.get(key) if (self.cache is not None) else None
            self._journal_start(unit, key, cached=hit is not None)
            if hit is not None:
                results[index] = hit
                self._finish(unit, key, hit, wall_s=0.0, cached=True)
                done += 1
                self._progress_line(units, done, started, base)
            else:
                pending.append(_Task(index, unit, key))

        isolate = self.timeout is not None or self.retries > 0
        if not isolate and (self.jobs == 1 or len(pending) <= 1):
            for task in pending:
                unit_started = time.perf_counter()
                result = self._normalize(task.unit.run())
                wall = time.perf_counter() - unit_started
                results[task.index] = result
                self._store(task.unit, task.key, result)
                self._finish(task.unit, task.key, result, wall_s=wall,
                             cached=False)
                done += 1
                self._progress_line(units, done, started, base)
        elif pending:
            self._run_isolated(pending, units, results, started, base, done)
        self._progress_end(units)
        new_failures = self.failures[failures_base:]
        if new_failures and self.strict:
            details = "; ".join(
                f"{f.label} ({f.reason}, {f.attempts} attempts)"
                for f in new_failures)
            raise UnitFailureError(
                f"{len(new_failures)} unit(s) failed permanently: {details}")
        return results

    @property
    def cache_hits(self) -> int:
        return sum(1 for record in self.records if record.cached)

    # -- process scheduler ------------------------------------------------

    def _run_isolated(self, pending: List[_Task],
                      units: Sequence[WorkUnit], results: List[Any],
                      started: float, base: int, done: int) -> None:
        """Run pending units in child processes with kill-and-retry."""
        ctx = multiprocessing.get_context()
        queue = ctx.Queue()
        waiting: List[_Task] = list(pending)
        running: Dict[int, _Task] = {}

        while waiting or running:
            now = time.monotonic()
            for task in list(waiting):
                if len(running) >= self.jobs:
                    break
                if task.not_before > now:
                    continue
                waiting.remove(task)
                payload = (task.index, task.attempt, task.unit.fn,
                           dict(task.unit.params))
                task.proc = ctx.Process(target=_worker,
                                        args=(payload, queue),
                                        daemon=not self.allow_children)
                task.started = time.perf_counter()
                task.deadline = (None if self.timeout is None
                                 else now + self.timeout)
                task.dead_since = None
                task.proc.start()
                running[task.index] = task

            try:
                message = queue.get(timeout=_POLL_S)
            except Empty:
                message = None
            if message is not None:
                index, attempt, ok, payload, wall = message
                task = running.get(index)
                if task is None or task.attempt != attempt:
                    continue    # stale echo from a worker already killed
                running.pop(index)
                task.proc.join()
                if ok:
                    result = self._normalize(payload)
                    results[index] = result
                    self._store(task.unit, task.key, result)
                    self._finish(task.unit, task.key, result, wall_s=wall,
                                 cached=False)
                    done += 1
                    self._progress_line(units, done, started, base)
                else:
                    settled = self._retry_or_fail(task, payload, waiting)
                    done += settled
                    if settled:
                        self._progress_line(units, done, started, base)
                continue

            now = time.monotonic()
            for index, task in list(running.items()):
                if task.deadline is not None and now >= task.deadline:
                    task.proc.terminate()
                    task.proc.join()
                    running.pop(index)
                    settled = self._retry_or_fail(
                        task, f"timeout after {self.timeout}s", waiting)
                    done += settled
                    if settled:
                        self._progress_line(units, done, started, base)
                elif not task.proc.is_alive():
                    # A finished worker's result may still be draining
                    # through the queue: give it a grace period before
                    # its silence counts as a crash.
                    if task.dead_since is None:
                        task.dead_since = now
                    elif now - task.dead_since > _DEATH_GRACE_S:
                        running.pop(index)
                        settled = self._retry_or_fail(
                            task,
                            f"worker died (exit {task.proc.exitcode})",
                            waiting)
                        done += settled
                        if settled:
                            self._progress_line(units, done, started, base)
        queue.close()

    def _retry_or_fail(self, task: _Task, reason: str,
                       waiting: List[_Task]) -> int:
        """Requeue a lost unit with backoff, or record a permanent failure.

        Returns 1 when the unit settled (failed permanently), 0 when it
        was requeued.
        """
        if task.attempt < self.retries:
            delay = self.backoff * (2 ** task.attempt)
            # Deterministic jitter: same unit + attempt -> same delay.
            rng = random.Random(f"{task.key or task.unit.label}"
                                f":{task.attempt}")
            delay *= 0.5 + rng.random()
            if self.journal is not None:
                # reprolint: disable=determinism-taint -- retry deadline/delay are wall-clock provenance on the unit_retry event
                self.journal.event(
                    "unit_retry", unit=task.unit.label,
                    experiment=task.unit.experiment, key=task.key,
                    attempt=task.attempt + 1, reason=reason, delay_s=delay)
            task.attempt += 1
            task.not_before = time.monotonic() + delay
            task.proc = None
            waiting.append(task)
            return 0
        self.failures.append(UnitFailure(
            label=task.unit.label, experiment=task.unit.experiment,
            key=task.key, attempts=task.attempt + 1, reason=reason))
        self._finish(task.unit, task.key, None,
                     wall_s=time.perf_counter() - task.started,
                     cached=False, ok=False)
        return 1

    # -- internals --------------------------------------------------------

    @staticmethod
    def _normalize(result: Any) -> Any:
        """JSON round-trip so fresh and cached results are identical."""
        return json.loads(json.dumps(result))

    def _store(self, unit: WorkUnit, key: Optional[str],
               result: Any) -> None:
        if self.cache is not None and key is not None:
            self.cache.put(key, unit, result)

    def _journal_start(self, unit: WorkUnit, key: Optional[str],
                       cached: bool) -> None:
        if self.journal is not None:
            fields: Dict[str, Any] = dict(
                unit=unit.label, experiment=unit.experiment, key=key,
                cached=cached)
            seed = unit.seed()
            if seed is not None:
                fields["seed"] = seed
            self.journal.event("unit_start", **fields)

    def _finish(self, unit: WorkUnit, key: Optional[str], result: Any,
                wall_s: float, cached: bool, ok: bool = True) -> None:
        self.records.append(UnitRecord(
            label=unit.label, experiment=unit.experiment, key=key,
            cached=cached, wall_s=wall_s))
        if self.journal is not None:
            fields: Dict[str, Any] = dict(
                unit=unit.label, experiment=unit.experiment, key=key,
                cached=cached, wall_s=wall_s, ok=ok)
            seed = unit.seed()
            if seed is not None:
                fields["seed"] = seed
            if isinstance(result, dict) and isinstance(
                    result.get("stats"), dict):
                fields["stats"] = result["stats"]
            if isinstance(result, dict) and isinstance(
                    result.get("timeline"), dict):
                fields["timeline"] = result["timeline"]
            if isinstance(result, dict) and isinstance(
                    result.get("sanitizer"), dict):
                fields["sanitizer"] = result["sanitizer"]
            self.journal.event("unit_end", **fields)

    def _progress_line(self, units: Sequence[WorkUnit], done: int,
                       started: float, base: int) -> None:
        if not self.progress or not units:
            return
        hits = sum(1 for record in self.records[base:] if record.cached)
        elapsed = time.perf_counter() - started
        sys.stderr.write(
            f"\r[{units[0].experiment}] {done}/{len(units)} units "
            f"({hits} cached) {elapsed:.1f}s")
        sys.stderr.flush()

    def _progress_end(self, units: Sequence[WorkUnit]) -> None:
        if self.progress and units:
            sys.stderr.write("\n")
            sys.stderr.flush()


def timing_table(records: Sequence[UnitRecord]) -> str:
    """End-of-run timing table: slowest units first, totals last."""
    lines = ["== run timing =="]
    width = max([len(r.label) for r in records], default=10)
    width = max(width, len("unit"))
    lines.append(f"{'unit':<{width}}  {'wall_s':>8}  cache")
    lines.append("-" * (width + 18))
    for record in sorted(records, key=lambda r: r.wall_s, reverse=True):
        source = "hit" if record.cached else "miss"
        lines.append(
            f"{record.label:<{width}}  {record.wall_s:>8.2f}  {source}")
    total = sum(record.wall_s for record in records)
    hits = sum(1 for record in records if record.cached)
    lines.append("-" * (width + 18))
    lines.append(f"{len(records)} units, {hits} cache hits, "
                 f"{total:.2f}s total unit wall time")
    return "\n".join(lines)
