"""Parallel executor: fan work units out over ``multiprocessing``.

``Runner.map`` preserves submission order in its results regardless of
completion order, normalizes every fresh result through a JSON
round-trip (so cold, warm and parallel runs return byte-identical
payloads), consults the :class:`~repro.runner.cache.ResultCache`
before computing, and emits ``unit_start``/``unit_end`` journal events
plus a live progress line.  ``jobs=1`` executes inline in the parent
process — the historical deterministic serial path, with no pool and
no pickling.
"""

from __future__ import annotations

import json
import multiprocessing
import sys
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .cache import ResultCache
from .journal import RunJournal
from .units import WorkUnit


@dataclass
class UnitRecord:
    """Timing/caching record for one executed (or cache-served) unit."""

    label: str
    experiment: str
    key: Optional[str]
    cached: bool
    wall_s: float


def _execute(payload: Tuple[int, Any, Dict[str, Any]]):
    """Worker entry point: run one unit function, timing it."""
    index, fn, params = payload
    started = time.perf_counter()
    result = fn(**params)
    return index, result, time.perf_counter() - started


class Runner:
    """Schedules work units serially or across a process pool."""

    def __init__(self, jobs: int = 1, cache: Optional[ResultCache] = None,
                 journal: Optional[RunJournal] = None,
                 progress: bool = False) -> None:
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.journal = journal
        self.progress = progress
        self.records: List[UnitRecord] = []

    # -- public API -------------------------------------------------------

    def map(self, units: Sequence[WorkUnit]) -> List[Any]:
        """Run every unit, returning results in submission order."""
        units = list(units)
        results: List[Any] = [None] * len(units)
        # Keys are only needed when a cache or journal observes them.
        need_keys = self.cache is not None or self.journal is not None
        keys = [unit.key() if need_keys else None for unit in units]

        started = time.perf_counter()
        base = len(self.records)
        done = 0
        pending: List[Tuple[int, WorkUnit, Optional[str]]] = []
        for index, unit in enumerate(units):
            key = keys[index]
            hit = self.cache.get(key) if (self.cache is not None) else None
            self._journal_start(unit, key, cached=hit is not None)
            if hit is not None:
                results[index] = hit
                self._finish(unit, key, hit, wall_s=0.0, cached=True)
                done += 1
                self._progress_line(units, done, started, base)
            else:
                pending.append((index, unit, key))

        if self.jobs == 1 or len(pending) <= 1:
            for index, unit, key in pending:
                unit_started = time.perf_counter()
                result = self._normalize(unit.run())
                wall = time.perf_counter() - unit_started
                results[index] = result
                self._store(unit, key, result)
                self._finish(unit, key, result, wall_s=wall, cached=False)
                done += 1
                self._progress_line(units, done, started, base)
        else:
            by_index = {index: (unit, key) for index, unit, key in pending}
            jobs = min(self.jobs, len(pending))
            payloads = [(index, unit.fn, dict(unit.params))
                        for index, unit, _ in pending]
            with multiprocessing.Pool(processes=jobs) as pool:
                for index, result, wall in pool.imap_unordered(
                        _execute, payloads):
                    unit, key = by_index[index]
                    result = self._normalize(result)
                    results[index] = result
                    self._store(unit, key, result)
                    self._finish(unit, key, result, wall_s=wall,
                                 cached=False)
                    done += 1
                    self._progress_line(units, done, started, base)
        self._progress_end(units)
        return results

    @property
    def cache_hits(self) -> int:
        return sum(1 for record in self.records if record.cached)

    # -- internals --------------------------------------------------------

    @staticmethod
    def _normalize(result: Any) -> Any:
        """JSON round-trip so fresh and cached results are identical."""
        return json.loads(json.dumps(result))

    def _store(self, unit: WorkUnit, key: Optional[str],
               result: Any) -> None:
        if self.cache is not None and key is not None:
            self.cache.put(key, unit, result)

    def _journal_start(self, unit: WorkUnit, key: Optional[str],
                       cached: bool) -> None:
        if self.journal is not None:
            self.journal.event("unit_start", unit=unit.label,
                               experiment=unit.experiment, key=key,
                               cached=cached)

    def _finish(self, unit: WorkUnit, key: Optional[str], result: Any,
                wall_s: float, cached: bool) -> None:
        self.records.append(UnitRecord(
            label=unit.label, experiment=unit.experiment, key=key,
            cached=cached, wall_s=wall_s))
        if self.journal is not None:
            fields: Dict[str, Any] = dict(
                unit=unit.label, experiment=unit.experiment, key=key,
                cached=cached, wall_s=wall_s, ok=True)
            if isinstance(result, dict) and isinstance(
                    result.get("stats"), dict):
                fields["stats"] = result["stats"]
            if isinstance(result, dict) and isinstance(
                    result.get("timeline"), dict):
                fields["timeline"] = result["timeline"]
            if isinstance(result, dict) and isinstance(
                    result.get("sanitizer"), dict):
                fields["sanitizer"] = result["sanitizer"]
            self.journal.event("unit_end", **fields)

    def _progress_line(self, units: Sequence[WorkUnit], done: int,
                       started: float, base: int) -> None:
        if not self.progress or not units:
            return
        hits = sum(1 for record in self.records[base:] if record.cached)
        elapsed = time.perf_counter() - started
        sys.stderr.write(
            f"\r[{units[0].experiment}] {done}/{len(units)} units "
            f"({hits} cached) {elapsed:.1f}s")
        sys.stderr.flush()

    def _progress_end(self, units: Sequence[WorkUnit]) -> None:
        if self.progress and units:
            sys.stderr.write("\n")
            sys.stderr.flush()


def timing_table(records: Sequence[UnitRecord]) -> str:
    """End-of-run timing table: slowest units first, totals last."""
    lines = ["== run timing =="]
    width = max([len(r.label) for r in records], default=10)
    width = max(width, len("unit"))
    lines.append(f"{'unit':<{width}}  {'wall_s':>8}  cache")
    lines.append("-" * (width + 18))
    for record in sorted(records, key=lambda r: r.wall_s, reverse=True):
        source = "hit" if record.cached else "miss"
        lines.append(
            f"{record.label:<{width}}  {record.wall_s:>8.2f}  {source}")
    total = sum(record.wall_s for record in records)
    hits = sum(1 for record in records if record.cached)
    lines.append("-" * (width + 18))
    lines.append(f"{len(records)} units, {hits} cache hits, "
                 f"{total:.2f}s total unit wall time")
    return "\n".join(lines)
