"""Dependency-free statistics for multi-seed run comparison.

Everything here is pure Python over plain lists — the results index
(docs/RESULTS.md) must work in environments without numpy/scipy, and
the sample counts involved (a handful of seeds per experiment cell)
make vectorization pointless anyway.  Provided:

* :func:`mean` / :func:`stddev` — sample moments (n-1 denominator);
* :func:`bootstrap_ci` — percentile bootstrap confidence interval for
  the mean, seeded and deterministic;
* :func:`welch_t` — Welch's unequal-variance t statistic with the
  Welch–Satterthwaite degrees of freedom;
* :func:`permutation_test` — exact (small n) or sampled two-sided
  permutation test on the difference of means;
* :func:`mann_whitney` — Mann-Whitney U with tie-corrected normal
  approximation;
* :func:`significance` — the combined verdict
  ``python -m repro.analysis compare`` gates on.
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

#: Below this many total observations the permutation test enumerates
#: every reassignment exactly instead of sampling.
EXACT_PERMUTATION_LIMIT = 12

#: Resamples used by the sampled permutation test and the bootstrap.
DEFAULT_RESAMPLES = 2000


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def stddev(values: Sequence[float]) -> float:
    """Sample standard deviation, n-1 denominator (0.0 when n < 2)."""
    values = list(values)
    if len(values) < 2:
        return 0.0
    center = mean(values)
    return math.sqrt(sum((v - center) ** 2 for v in values)
                     / (len(values) - 1))


def _normal_cdf(x: float) -> float:
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


def bootstrap_ci(values: Sequence[float], confidence: float = 0.95,
                 n_resamples: int = DEFAULT_RESAMPLES,
                 seed: int = 0) -> Tuple[float, float]:
    """Percentile-bootstrap confidence interval for the mean.

    Deterministic for a given ``seed``.  With fewer than two samples
    the interval collapses to the (single or zero) observed value.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    values = list(values)
    if len(values) < 2:
        point = mean(values)
        return (point, point)
    rng = random.Random(seed)
    n = len(values)
    resampled = sorted(
        mean([values[rng.randrange(n)] for _ in range(n)])
        for _ in range(max(1, n_resamples)))
    tail = (1.0 - confidence) / 2.0
    lo_index = int(tail * len(resampled))
    hi_index = min(len(resampled) - 1,
                   int((1.0 - tail) * len(resampled)))
    return (resampled[lo_index], resampled[hi_index])


def welch_t(a: Sequence[float], b: Sequence[float]
            ) -> Tuple[float, float]:
    """Welch's t statistic and Welch–Satterthwaite degrees of freedom.

    Returns ``(0.0, 0.0)`` when either group has fewer than two
    samples or both groups have zero variance.
    """
    a, b = list(a), list(b)
    if len(a) < 2 or len(b) < 2:
        return (0.0, 0.0)
    var_a, var_b = stddev(a) ** 2, stddev(b) ** 2
    se_a, se_b = var_a / len(a), var_b / len(b)
    denom = se_a + se_b
    if denom == 0.0:
        return (0.0, 0.0)
    t = (mean(a) - mean(b)) / math.sqrt(denom)
    df = denom ** 2 / (se_a ** 2 / (len(a) - 1)
                       + se_b ** 2 / (len(b) - 1))
    return (t, df)


def permutation_test(a: Sequence[float], b: Sequence[float],
                     n_resamples: int = DEFAULT_RESAMPLES,
                     seed: int = 0) -> float:
    """Two-sided permutation p-value on the difference of means.

    Exact enumeration when ``len(a) + len(b)`` is small
    (:data:`EXACT_PERMUTATION_LIMIT`), seeded Monte-Carlo sampling
    otherwise.  Returns 1.0 when either group is smaller than two —
    one sample per group carries no significance evidence.
    """
    a, b = list(a), list(b)
    if len(a) < 2 or len(b) < 2:
        return 1.0
    observed = abs(mean(a) - mean(b))
    pooled = a + b
    n_a = len(a)

    if len(pooled) <= EXACT_PERMUTATION_LIMIT:
        at_least = total = 0
        for combo in itertools.combinations(range(len(pooled)), n_a):
            chosen = set(combo)
            left = [pooled[i] for i in chosen]
            right = [pooled[i] for i in range(len(pooled))
                     if i not in chosen]
            total += 1
            if abs(mean(left) - mean(right)) >= observed - 1e-12:
                at_least += 1
        return at_least / total

    rng = random.Random(seed)
    at_least = 0
    for _ in range(n_resamples):
        shuffled = pooled[:]
        rng.shuffle(shuffled)
        if abs(mean(shuffled[:n_a]) - mean(shuffled[n_a:])) \
                >= observed - 1e-12:
            at_least += 1
    # +1/+1 keeps the Monte-Carlo estimate away from an impossible 0.
    return (at_least + 1) / (n_resamples + 1)


def min_achievable_p(n_a: int, n_b: int) -> float:
    """Smallest two-sided p a permutation-space test can ever produce.

    With ``n_a + n_b`` pooled observations there are only
    ``C(n_a + n_b, n_a)`` group reassignments, and the observed split
    plus its mirror always count as "at least as extreme" — so the
    floor is ``2 / C(n_a + n_b, n_a)`` no matter how separated the
    groups are (0.333 at 2+2, 0.1 at 3+3, ~0.029 at 4+4).  A gate
    whose alpha lies below this floor is *powerless* at that sample
    size and should fall back to a threshold check
    (docs/RESULTS.md).  Returns 1.0 when either group is smaller than
    two.
    """
    if n_a < 2 or n_b < 2:
        return 1.0
    return 2.0 / math.comb(n_a + n_b, n_a)


def mann_whitney(a: Sequence[float], b: Sequence[float]
                 ) -> Tuple[float, float]:
    """Mann-Whitney U and its two-sided normal-approximation p-value.

    Midranks handle ties, and the variance carries the tie correction.
    Returns ``(U, 1.0)`` when either group has fewer than two samples
    or every observation is identical.
    """
    a, b = list(a), list(b)
    n_a, n_b = len(a), len(b)
    pooled = sorted((value, 0 if i < n_a else 1)
                    for i, value in enumerate(a + b))
    ranks: List[float] = [0.0] * len(pooled)
    tie_term = 0.0
    i = 0
    while i < len(pooled):
        j = i
        while j < len(pooled) and pooled[j][0] == pooled[i][0]:
            j += 1
        midrank = (i + j + 1) / 2.0    # ranks are 1-based
        for k in range(i, j):
            ranks[k] = midrank
        count = j - i
        tie_term += count ** 3 - count
        i = j
    rank_sum_a = sum(rank for rank, (_, group) in zip(ranks, pooled)
                     if group == 0)
    u_a = rank_sum_a - n_a * (n_a + 1) / 2.0
    u = min(u_a, n_a * n_b - u_a)
    if n_a < 2 or n_b < 2:
        return (u, 1.0)
    n = n_a + n_b
    variance = (n_a * n_b / 12.0) * ((n + 1) - tie_term / (n * (n - 1)))
    if variance <= 0.0:
        return (u, 1.0)
    z = (u - n_a * n_b / 2.0 + 0.5) / math.sqrt(variance)
    return (u, max(0.0, min(1.0, 2.0 * _normal_cdf(z))))


@dataclass(frozen=True)
class Significance:
    """Verdict of one two-group comparison."""

    n_a: int
    n_b: int
    mean_a: float
    mean_b: float
    #: ``mean_b - mean_a`` (B is the candidate, A the baseline).
    diff: float
    #: ``diff`` relative to ``|mean_a|`` (0.0 when the baseline is 0).
    relative: float
    #: Two-sided p-value; 1.0 when significance cannot be assessed.
    p_value: float
    #: Which test produced ``p_value`` (``permutation``,
    #: ``mann-whitney`` or ``none``).
    test: str
    significant: bool


def significance(a: Sequence[float], b: Sequence[float],
                 alpha: float = 0.05, method: str = "permutation",
                 seed: int = 0) -> Significance:
    """Compare baseline samples ``a`` against candidate samples ``b``.

    ``method`` selects :func:`permutation_test` (default) or
    :func:`mann_whitney`.  Groups with fewer than two samples are
    never significant — a single seed cannot witness noise.
    """
    if method not in ("permutation", "mann-whitney"):
        raise ValueError(f"unknown method {method!r}")
    a, b = list(a), list(b)
    mean_a, mean_b = mean(a), mean(b)
    diff = mean_b - mean_a
    relative = diff / abs(mean_a) if mean_a else 0.0
    if len(a) < 2 or len(b) < 2:
        return Significance(len(a), len(b), mean_a, mean_b, diff,
                            relative, 1.0, "none", False)
    if method == "mann-whitney":
        _, p_value = mann_whitney(a, b)
    else:
        p_value = permutation_test(a, b, seed=seed)
    return Significance(len(a), len(b), mean_a, mean_b, diff, relative,
                        p_value, method, p_value < alpha)


__all__ = [
    "DEFAULT_RESAMPLES",
    "EXACT_PERMUTATION_LIMIT",
    "Significance",
    "bootstrap_ci",
    "mann_whitney",
    "mean",
    "min_achievable_p",
    "permutation_test",
    "significance",
    "stddev",
    "welch_t",
]
