"""Cross-run metric comparison and the regression gate.

``python -m repro.analysis compare RUN_A RUN_B`` (docs/RESULTS.md)
pulls every metric both runs share out of the results index, groups
the samples per (unit, metric) across seeds, and asks
:mod:`repro.results.stats` whether the candidate run B moved each
headline metric in the *bad* direction by a statistically significant
margin.  Only metrics with a known good direction
(:data:`METRIC_DIRECTIONS`) can gate; everything else is reported
informationally.  Single-seed runs cannot witness noise, so they fall
back to a pure relative-threshold verdict (``test="threshold"``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .index import ResultsIndex
from .stats import Significance, min_achievable_p, significance

#: Default significance level for the permutation test.
DEFAULT_ALPHA = 0.05

#: Minimum relative change (vs. the baseline mean) for a significant
#: move to count as a regression — guards against statistically
#: significant but practically irrelevant drift.
DEFAULT_MIN_EFFECT = 0.01

#: Relative change that flags a regression when significance cannot
#: be assessed at all — either side has a single sample, or the
#: permutation-space floor (``stats.min_achievable_p``) sits above
#: alpha, making the test powerless at that seed count.
DEFAULT_SINGLE_SAMPLE_EFFECT = 0.10

#: metric name (or dotted prefix) -> good direction.  ``higher`` means
#: a significant decrease is a regression; ``lower`` the reverse.
#: Matching is by exact name first, then by longest dotted prefix, so
#: ``timeline.extra_accesses`` gates via the ``extra_accesses`` entry
#: only through its own explicit row below.
METRIC_DIRECTIONS: Dict[str, str] = {
    "compression_ratio": "higher",
    "metadata_hit_rate": "higher",
    "scalar_lines_per_s": "higher",
    "vector_lines_per_s": "higher",
    "sizes_lines_per_s": "higher",
    "speedup": "higher",
    "sizes_speedup": "higher",
    "extra_accesses": "lower",
    "relative_extra_accesses": "lower",
    "timeline.extra_accesses": "lower",
    "sanitizer.violations": "lower",
}


def metric_direction(metric: str) -> Optional[str]:
    """``"higher"``/``"lower"`` for gated metrics, else ``None``."""
    if metric in METRIC_DIRECTIONS:
        return METRIC_DIRECTIONS[metric]
    # timeline.by_source.<x> inherits the extra-accesses direction.
    if metric.startswith("timeline.by_source."):
        return "lower"
    return None


@dataclass(frozen=True)
class MetricVerdict:
    """One (unit, metric) cell of a run comparison."""

    unit: str
    metric: str
    #: ``higher``/``lower`` for gated metrics, ``None`` otherwise.
    direction: Optional[str]
    stats: Significance
    #: True when the change moves against ``direction``.
    worsened: bool
    #: Worsened, significant (or past the single-sample threshold) and
    #: past ``min_effect`` — this is what fails the gate.
    regression: bool
    #: Same, but in the *good* direction.
    improvement: bool


@dataclass(frozen=True)
class Comparison:
    """Everything ``compare`` found between two runs."""

    run_a: str
    run_b: str
    verdicts: List[MetricVerdict]
    #: (unit, metric) pairs present in only one of the two runs.
    only_in_a: List[Tuple[str, str]]
    only_in_b: List[Tuple[str, str]]

    @property
    def regressions(self) -> List[MetricVerdict]:
        return [v for v in self.verdicts if v.regression]

    @property
    def improvements(self) -> List[MetricVerdict]:
        return [v for v in self.verdicts if v.improvement]


def _judge(unit: str, metric: str, a: Sequence[float],
           b: Sequence[float], alpha: float, min_effect: float,
           single_sample_effect: float, method: str,
           seed: int) -> MetricVerdict:
    direction = metric_direction(metric)
    verdict = significance(a, b, alpha=alpha, method=method, seed=seed)
    powerless = (verdict.test == "none"
                 or min_achievable_p(verdict.n_a, verdict.n_b) > alpha)
    if powerless and verdict.diff != 0.0:
        # Significance is unattainable at this seed count (one sample,
        # or the permutation floor exceeds alpha) — fall back to a
        # pure relative-threshold check rather than gating nothing.
        meaningful = abs(verdict.relative) >= single_sample_effect \
            if verdict.mean_a else True
        verdict = Significance(
            verdict.n_a, verdict.n_b, verdict.mean_a, verdict.mean_b,
            verdict.diff, verdict.relative, 1.0, "threshold",
            meaningful)
    worsened = bool(direction) and (
        verdict.diff < 0.0 if direction == "higher"
        else verdict.diff > 0.0)
    improved = bool(direction) and verdict.diff != 0.0 and not worsened
    past_effect = (abs(verdict.relative) >= min_effect
                   if verdict.mean_a else verdict.diff != 0.0)
    meaningful = verdict.significant and past_effect
    return MetricVerdict(unit, metric, direction, verdict,
                         worsened, worsened and meaningful,
                         improved and meaningful)


def compare_runs(index: ResultsIndex, run_a: str, run_b: str,
                 metrics: Optional[Sequence[str]] = None,
                 alpha: float = DEFAULT_ALPHA,
                 min_effect: float = DEFAULT_MIN_EFFECT,
                 single_sample_effect: float =
                 DEFAULT_SINGLE_SAMPLE_EFFECT,
                 method: str = "permutation",
                 seed: int = 0) -> Comparison:
    """Compare baseline ``run_a`` against candidate ``run_b``.

    Both arguments may be unambiguous run-id prefixes.  ``metrics``
    restricts the comparison to the named metrics (dotted names as
    indexed); by default every metric the runs share is compared.
    """
    run_a = index.resolve_run(run_a)
    run_b = index.resolve_run(run_b)
    samples_a = index.metric_samples(run_a, metrics)
    samples_b = index.metric_samples(run_b, metrics)
    shared = sorted(set(samples_a) & set(samples_b))
    verdicts = [
        _judge(unit, metric, samples_a[(unit, metric)],
               samples_b[(unit, metric)], alpha, min_effect,
               single_sample_effect, method, seed)
        for unit, metric in shared
    ]
    return Comparison(
        run_a, run_b, verdicts,
        only_in_a=sorted(set(samples_a) - set(samples_b)),
        only_in_b=sorted(set(samples_b) - set(samples_a)))


def render_comparison(comparison: Comparison,
                      verbose: bool = False) -> str:
    """Human-readable comparison report (one table plus a verdict)."""
    lines = [f"compare {comparison.run_a} (A, baseline) vs "
             f"{comparison.run_b} (B, candidate)"]
    rows = [v for v in comparison.verdicts
            if verbose or v.direction or v.regression or v.improvement]
    if rows:
        lines.append("")
        header = (f"{'unit':<28} {'metric':<28} {'mean A':>12} "
                  f"{'mean B':>12} {'delta%':>8} {'p':>7}  verdict")
        lines.append(header)
        lines.append("-" * len(header))
        for v in rows:
            s = v.stats
            if v.regression:
                verdict = "REGRESSION"
            elif v.improvement:
                verdict = "improved"
            elif v.direction is None:
                verdict = "info"
            elif v.worsened:
                verdict = "worse (n.s.)"
            else:
                verdict = "ok"
            delta = (f"{100.0 * s.relative:+8.2f}" if s.mean_a
                     else f"{s.diff:+8.3g}")
            p_text = ("  --" if s.test in ("none", "threshold")
                      else f"{s.p_value:7.3f}")
            lines.append(f"{v.unit:<28.28} {v.metric:<28.28} "
                         f"{s.mean_a:>12.5g} {s.mean_b:>12.5g} "
                         f"{delta} {p_text:>7}  {verdict} "
                         f"(n={s.n_a}/{s.n_b}, {s.test})")
    for label, missing in (("A", comparison.only_in_a),
                           ("B", comparison.only_in_b)):
        if missing:
            lines.append(f"only in {label}: {len(missing)} metric(s), "
                         f"e.g. {missing[0][0]}/{missing[0][1]}")
    lines.append("")
    lines.append(f"{len(comparison.verdicts)} shared metric(s), "
                 f"{len(comparison.improvements)} improved, "
                 f"{len(comparison.regressions)} regression(s)")
    if comparison.regressions:
        lines.append("VERDICT: REGRESSION — candidate run B is "
                     "significantly worse on a gated metric")
    else:
        lines.append("VERDICT: ok — no significant regression on any "
                     "gated metric")
    return "\n".join(lines)


__all__ = [
    "Comparison",
    "DEFAULT_ALPHA",
    "DEFAULT_MIN_EFFECT",
    "DEFAULT_SINGLE_SAMPLE_EFFECT",
    "METRIC_DIRECTIONS",
    "MetricVerdict",
    "compare_runs",
    "metric_direction",
    "render_comparison",
]
