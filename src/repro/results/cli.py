"""CLI entry points for the results index and the regression gate.

Wired into ``python -m repro.analysis`` (docs/RESULTS.md)::

    python -m repro.analysis index                 # ingest runs.jsonl (+ bench)
    python -m repro.analysis index --rebuild       # drop and re-ingest
    python -m repro.analysis index --runs          # list indexed runs
    python -m repro.analysis compare RUN_A RUN_B   # gate B against A

``index`` is idempotent — re-running it over an already-ingested
journal inserts zero rows — and both commands journal what they did
(``index`` / ``compare`` events, see :mod:`repro.runner.journal`).
``compare`` exits nonzero when the candidate run regresses a gated
metric with statistical significance.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional

from ..runner import RunJournal
from .compare import (
    DEFAULT_ALPHA,
    DEFAULT_MIN_EFFECT,
    DEFAULT_SINGLE_SAMPLE_EFFECT,
    compare_runs,
    render_comparison,
)
from .index import DEFAULT_DB_PATH, ResultsIndex

DEFAULT_SOURCES = ("runs.jsonl", "BENCH_kernels.json")


def _default_sources() -> List[str]:
    return [source for source in DEFAULT_SOURCES
            if Path(source).is_file()]


def _ingest(index: ResultsIndex, source: str) -> dict:
    if source.endswith(".json"):
        return index.ingest_bench_file(source)
    return index.ingest_journal(source)


def index_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis index",
        description="Maintain the cross-run SQLite results index "
                    "(docs/RESULTS.md).",
    )
    parser.add_argument("sources", nargs="*", metavar="PATH",
                        help="journals (*.jsonl) and bench trajectories "
                             "(*.json) to ingest (default: runs.jsonl "
                             "and BENCH_kernels.json when present)")
    parser.add_argument("--db", default=DEFAULT_DB_PATH, metavar="PATH",
                        help=f"index database (default: {DEFAULT_DB_PATH})")
    parser.add_argument("--rebuild", action="store_true",
                        help="delete the database first and re-ingest "
                             "from scratch")
    parser.add_argument("--runs", action="store_true",
                        help="list the indexed runs and exit (no ingest)")
    parser.add_argument("--metrics", default=None, metavar="RUN",
                        help="list the metric names indexed for RUN "
                             "(a run-id prefix) and exit")
    parser.add_argument("--journal", default="runs.jsonl", metavar="PATH",
                        help="journal the ingest there "
                             "(default: runs.jsonl)")
    parser.add_argument("--no-journal", dest="journal",
                        action="store_const", const="",
                        help="do not journal the ingest")
    args = parser.parse_args(argv)

    if args.runs or args.metrics:
        with ResultsIndex(args.db) as index:
            if args.metrics:
                run_id = index.resolve_run(args.metrics)
                for metric in index.metric_names(run_id):
                    print(metric)
                return 0
            rows = index.runs()
            if not rows:
                print(f"{args.db}: no runs indexed yet")
                return 0
            for row in rows:
                seeds = row["seeds"] or 1
                print(f"{row['run_id']:<16} scale={row['scale'] or '?':<8} "
                      f"seeds={seeds:<3} units={row['units'] or 0:<4} "
                      f"source={row['source']}")
            return 0

    sources = args.sources or _default_sources()
    if not sources:
        parser.error("nothing to ingest: no sources given and neither "
                     f"{' nor '.join(DEFAULT_SOURCES)} exists")
    missing = [source for source in sources
               if not Path(source).is_file()]
    if missing:
        parser.error(f"source file(s) not found: {missing}")

    if args.rebuild:
        Path(args.db).unlink(missing_ok=True)
    total_inserted = 0
    with ResultsIndex(args.db) as index:
        for source in sources:
            inserted = _ingest(index, source)
            new_rows = sum(inserted.get(table, 0) for table in
                           ("runs", "units", "metrics", "bench"))
            total_inserted += new_rows
            skipped = inserted.get("skipped", 0)
            detail = ", ".join(f"{table}+{count}" for table, count
                               in sorted(inserted.items())
                               if table != "skipped" and count)
            print(f"index: {source}: {new_rows} new row(s)"
                  + (f" ({detail})" if detail else "")
                  + (f", {skipped} invalid record(s) skipped"
                     if skipped else ""))
        counts = index.counts()
    print(f"index: {args.db}: " + ", ".join(
        f"{counts[table]} {table}" for table in sorted(counts)))
    if args.journal:
        RunJournal(args.journal).event(
            "index", db=args.db, sources=list(sources),
            inserted=total_inserted)
    return 0


def compare_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis compare",
        description="Statistical cross-run regression gate over the "
                    "results index (docs/RESULTS.md).  Exits 1 when "
                    "candidate RUN_B significantly regresses a gated "
                    "metric relative to baseline RUN_A.",
    )
    parser.add_argument("run_a", metavar="RUN_A",
                        help="baseline run id (unambiguous prefix ok)")
    parser.add_argument("run_b", metavar="RUN_B",
                        help="candidate run id (unambiguous prefix ok)")
    parser.add_argument("--db", default=DEFAULT_DB_PATH, metavar="PATH",
                        help=f"index database (default: {DEFAULT_DB_PATH})")
    parser.add_argument("--metrics", default=None, metavar="NAME[,NAME..]",
                        help="compare only these metrics (dotted names "
                             "as indexed; default: all shared metrics)")
    parser.add_argument("--alpha", type=float, default=DEFAULT_ALPHA,
                        help="significance level for the two-sided test "
                             f"(default: {DEFAULT_ALPHA})")
    parser.add_argument("--min-effect", type=float,
                        default=DEFAULT_MIN_EFFECT, metavar="FRAC",
                        help="ignore relative changes smaller than FRAC "
                             f"(default: {DEFAULT_MIN_EFFECT})")
    parser.add_argument("--single-sample-effect", type=float,
                        default=DEFAULT_SINGLE_SAMPLE_EFFECT,
                        metavar="FRAC",
                        help="threshold used instead of a significance "
                             "test when either run has one seed "
                             f"(default: {DEFAULT_SINGLE_SAMPLE_EFFECT})")
    parser.add_argument("--method", default="permutation",
                        choices=("permutation", "mann-whitney"),
                        help="significance test (default: permutation)")
    parser.add_argument("--seed", type=int, default=0,
                        help="resampling seed for the permutation test "
                             "(default: 0)")
    parser.add_argument("--verbose", action="store_true",
                        help="show every shared metric, not just gated "
                             "and changed ones")
    parser.add_argument("--journal", default="runs.jsonl", metavar="PATH",
                        help="journal the comparison there "
                             "(default: runs.jsonl)")
    parser.add_argument("--no-journal", dest="journal",
                        action="store_const", const="",
                        help="do not journal the comparison")
    args = parser.parse_args(argv)
    if not 0.0 < args.alpha < 1.0:
        parser.error("--alpha must be in (0, 1)")
    if args.min_effect < 0.0 or args.single_sample_effect < 0.0:
        parser.error("effect thresholds must be non-negative")

    metrics = None
    if args.metrics:
        metrics = [name.strip() for name in args.metrics.split(",")
                   if name.strip()]
    if not Path(args.db).is_file():
        parser.error(f"no index database at {args.db} "
                     "(run 'python -m repro.analysis index' first)")
    with ResultsIndex(args.db) as index:
        try:
            comparison = compare_runs(
                index, args.run_a, args.run_b, metrics=metrics,
                alpha=args.alpha, min_effect=args.min_effect,
                single_sample_effect=args.single_sample_effect,
                method=args.method, seed=args.seed)
        except KeyError as exc:
            parser.error(str(exc.args[0]) if exc.args else str(exc))
    print(render_comparison(comparison, verbose=args.verbose))
    if args.journal:
        RunJournal(args.journal).event(
            "compare", db=args.db, run_a=comparison.run_a,
            run_b=comparison.run_b,
            metrics=len(comparison.verdicts),
            regressions=len(comparison.regressions))
    return 1 if comparison.regressions else 0


__all__ = ["compare_main", "index_main"]
