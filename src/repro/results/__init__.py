"""Cross-run results index, statistics and the regression gate.

The runner's append-only artifacts — the ``runs.jsonl`` journal and
the ``BENCH_kernels.json`` kernel trajectory — record everything but
answer nothing.  This package makes the history queryable and lets
two runs be compared with statistical rigor:

* :mod:`repro.results.index` — ``ResultsIndex``, a SQLite database
  (``results_index.sqlite``; tables ``runs``, ``units``, ``metrics``,
  ``bench``) with idempotent ingesters for both artifact kinds;
* :mod:`repro.results.stats` — dependency-free sample statistics:
  bootstrap confidence intervals, Welch's t, permutation and
  Mann-Whitney significance tests sized for a handful of seeds;
* :mod:`repro.results.compare` — per-(unit, metric) verdicts with
  good-direction gating, the heart of
  ``python -m repro.analysis compare``;
* :mod:`repro.results.cli` — the ``index`` and ``compare``
  subcommands.

Schema, ingest rules and the compare workflow are documented in
``docs/RESULTS.md``.
"""

from .compare import (
    Comparison,
    METRIC_DIRECTIONS,
    MetricVerdict,
    compare_runs,
    metric_direction,
    render_comparison,
)
from .index import DEFAULT_DB_PATH, NO_SEED, ResultsIndex, flatten_metrics
from .stats import (
    Significance,
    bootstrap_ci,
    mann_whitney,
    mean,
    min_achievable_p,
    permutation_test,
    significance,
    stddev,
    welch_t,
)

__all__ = [
    "Comparison",
    "DEFAULT_DB_PATH",
    "METRIC_DIRECTIONS",
    "MetricVerdict",
    "NO_SEED",
    "ResultsIndex",
    "Significance",
    "bootstrap_ci",
    "compare_runs",
    "flatten_metrics",
    "mann_whitney",
    "mean",
    "metric_direction",
    "min_achievable_p",
    "permutation_test",
    "render_comparison",
    "significance",
    "stddev",
    "welch_t",
]
