"""Cross-run SQLite results index (``results_index.sqlite``).

The run journal (``runs.jsonl``) and the kernel-bench trajectory
(``BENCH_kernels.json``) are append-only, write-only history; this
module turns them into a queryable database (docs/RESULTS.md):

* ``runs``    — one row per runner invocation (``run_start`` merged
  with its ``run_end``);
* ``units``   — one row per settled work unit per seed
  (``unit_end``);
* ``metrics`` — the numeric leaves of every unit's journaled
  ``stats``/``timeline``/``sanitizer`` digests, flattened to dotted
  names, one row per (run, unit, seed, metric);
* ``bench``   — one row per (document, algorithm) of every ingested
  kernel-bench file, plus one ``*`` summary row per journal ``bench``
  event.

Ingestion is **idempotent**: rows are keyed by their natural identity
(run id + unit + seed, bench generation + algorithm), inserts use
``INSERT OR IGNORE``/conflict-update upserts, and
:meth:`ResultsIndex.ingest_journal` reports how many rows were
actually new — re-ingesting an already-indexed journal inserts zero.
Records that fail :func:`repro.runner.validate_event` are counted and
skipped, never half-ingested.
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..analysis.bench import BENCH_SCHEMA
from ..runner import read_journal, validate_event

DEFAULT_DB_PATH = "results_index.sqlite"

#: ``units.seed``/``metrics.seed`` value for seedless units (SQLite
#: primary keys cannot contain NULL).
NO_SEED = -1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id        TEXT PRIMARY KEY,
    started       REAL,
    finished      REAL,
    jobs          INTEGER,
    cache_enabled INTEGER,
    scale         TEXT,
    sanitize      TEXT,
    seeds         INTEGER,
    base_seed     INTEGER,
    experiments   TEXT,
    units         INTEGER,
    cache_hits    INTEGER,
    wall_s        REAL,
    source        TEXT
);
CREATE TABLE IF NOT EXISTS units (
    run_id     TEXT NOT NULL,
    unit       TEXT NOT NULL,
    seed       INTEGER NOT NULL DEFAULT -1,
    experiment TEXT,
    key        TEXT,
    cached     INTEGER,
    ok         INTEGER,
    wall_s     REAL,
    ts         REAL,
    violations INTEGER,
    PRIMARY KEY (run_id, unit, seed)
);
CREATE TABLE IF NOT EXISTS metrics (
    run_id TEXT NOT NULL,
    unit   TEXT NOT NULL,
    seed   INTEGER NOT NULL DEFAULT -1,
    metric TEXT NOT NULL,
    value  REAL,
    PRIMARY KEY (run_id, unit, seed, metric)
);
CREATE INDEX IF NOT EXISTS metrics_by_name
    ON metrics (metric, run_id);
CREATE TABLE IF NOT EXISTS bench (
    source             TEXT NOT NULL,
    generated          TEXT NOT NULL,
    algorithm          TEXT NOT NULL,
    lines              INTEGER,
    scalar_lines_per_s REAL,
    vector_lines_per_s REAL,
    sizes_lines_per_s  REAL,
    speedup            REAL,
    sizes_speedup      REAL,
    match              INTEGER,
    PRIMARY KEY (source, generated, algorithm)
);
"""

_TABLES = ("runs", "units", "metrics", "bench")


def flatten_metrics(digest: Any, prefix: str = "") -> Iterator[
        Tuple[str, float]]:
    """Yield the numeric leaves of a nested digest as dotted names.

    Booleans and nulls are skipped; nested dicts recurse so a future
    digest carrying e.g. ``{"size": {"p95": 48}}`` lands in the index
    as ``size.p95`` without a schema change.
    """
    if not isinstance(digest, dict):
        return
    for key in sorted(digest, key=str):
        value = digest[key]
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            yield from flatten_metrics(value, prefix=f"{name}.")
        elif isinstance(value, bool) or value is None:
            continue
        elif isinstance(value, (int, float)):
            yield (name, float(value))


class ResultsIndex:
    """One open results database; use as a context manager or `close()`."""

    def __init__(self, path: str | Path = DEFAULT_DB_PATH) -> None:
        self.path = Path(path)
        self.conn = sqlite3.connect(str(self.path))
        self.conn.row_factory = sqlite3.Row
        self.conn.executescript(_SCHEMA)
        self.conn.commit()

    def __enter__(self) -> "ResultsIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        self.conn.close()

    # -- ingestion --------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        """Current row count per table."""
        return {
            table: self.conn.execute(
                f"SELECT COUNT(*) FROM {table}").fetchone()[0]
            for table in _TABLES
        }

    def ingest_journal(self, path: str | Path) -> Dict[str, int]:
        """Upsert every valid event of one ``runs.jsonl`` file.

        Returns ``{"runs": n, "units": n, "metrics": n, "bench": n,
        "skipped": n}`` where the table entries count rows that are
        *new* (idempotent re-ingest reports zeros) and ``skipped``
        counts schema-invalid records.
        """
        before = self.counts()
        source = Path(path).name
        skipped = 0
        run_rows: Dict[str, Dict[str, Any]] = {}
        for record in read_journal(path, skip_invalid=True):
            if validate_event(record):
                skipped += 1
                continue
            event = record["event"]
            run_id = record["run_id"]
            if event == "run_start":
                row = run_rows.setdefault(run_id, {"run_id": run_id})
                row.update(
                    started=record["ts"], jobs=record["jobs"],
                    cache_enabled=int(record["cache_enabled"]),
                    scale=record.get("scale"),
                    sanitize=_text_or_null(record.get("sanitize")),
                    seeds=record.get("seeds"),
                    base_seed=record.get("base_seed"),
                    experiments=json.dumps(record.get("experiments"))
                    if record.get("experiments") is not None else None,
                    source=source)
            elif event == "run_end":
                row = run_rows.setdefault(run_id, {"run_id": run_id})
                row.update(finished=record["ts"],
                           units=record["units"],
                           cache_hits=record["cache_hits"],
                           wall_s=record["wall_s"], source=source)
            elif event == "unit_end":
                self._ingest_unit_end(record)
            elif event == "bench":
                self._ingest_bench_event(record, source)
            # unit_start/unit_retry/index/compare events carry no
            # indexed state beyond what unit_end/run rows already hold.
        for row in run_rows.values():
            self._upsert_run(row)
        self.conn.commit()
        after = self.counts()
        inserted = {table: after[table] - before[table]
                    for table in _TABLES}
        inserted["skipped"] = skipped
        return inserted

    def ingest_bench_file(self, path: str | Path) -> Dict[str, int]:
        """Upsert every algorithm row of one ``BENCH_kernels.json``.

        The document is also mirrored into ``runs``/``metrics`` under
        the synthetic run id ``bench:<generated>`` with one
        ``kernels/<algorithm>`` unit each, so ``compare`` can gate
        lines/sec between two bench generations with the same
        machinery it uses for experiment metrics.
        """
        before = self.counts()
        path = Path(path)
        doc = json.loads(path.read_text())
        if not isinstance(doc, dict) or doc.get("schema") != BENCH_SCHEMA:
            raise ValueError(
                f"{path} is not a {BENCH_SCHEMA} document "
                f"(schema={doc.get('schema') if isinstance(doc, dict) else None!r})")
        generated = str(doc.get("generated"))
        algorithms = doc.get("algorithms") or {}
        run_id = f"bench:{generated}"
        self._upsert_run({"run_id": run_id, "scale": "bench",
                          "experiments": json.dumps(sorted(algorithms)),
                          "units": len(algorithms),
                          "source": path.name})
        for algorithm in sorted(algorithms):
            entry = algorithms[algorithm]
            if not isinstance(entry, dict):
                continue
            self.conn.execute(
                "INSERT OR IGNORE INTO bench (source, generated, "
                "algorithm, lines, scalar_lines_per_s, "
                "vector_lines_per_s, sizes_lines_per_s, speedup, "
                "sizes_speedup, match) VALUES (?,?,?,?,?,?,?,?,?,?)",
                (path.name, generated, algorithm, doc.get("lines"),
                 entry.get("scalar_lines_per_s"),
                 entry.get("vector_lines_per_s"),
                 entry.get("sizes_lines_per_s"), entry.get("speedup"),
                 entry.get("sizes_speedup"),
                 _int_or_null(entry.get("match"))))
            unit = f"kernels/{algorithm}"
            self.conn.execute(
                "INSERT OR IGNORE INTO units (run_id, unit, seed, "
                "experiment, cached, ok) VALUES (?,?,?,?,0,1)",
                (run_id, unit, doc.get("seed", NO_SEED), "bench"))
            for metric, value in flatten_metrics(entry):
                self.conn.execute(
                    "INSERT OR IGNORE INTO metrics (run_id, unit, "
                    "seed, metric, value) VALUES (?,?,?,?,?)",
                    (run_id, unit, doc.get("seed", NO_SEED), metric,
                     value))
        self.conn.commit()
        after = self.counts()
        return {table: after[table] - before[table] for table in _TABLES}

    # -- queries ----------------------------------------------------------

    def runs(self) -> List[Dict[str, Any]]:
        """Every indexed run, oldest first (bench runs included)."""
        rows = self.conn.execute(
            "SELECT * FROM runs ORDER BY started IS NULL, started, "
            "run_id").fetchall()
        return [dict(row) for row in rows]

    def resolve_run(self, run_ref: str) -> str:
        """Resolve a (possibly abbreviated) run id to the full one."""
        rows = self.conn.execute(
            "SELECT run_id FROM runs WHERE run_id = ?",
            (run_ref,)).fetchall()
        if not rows:
            rows = self.conn.execute(
                "SELECT run_id FROM runs WHERE run_id LIKE ? "
                "ORDER BY run_id", (run_ref + "%",)).fetchall()
        if not rows:
            raise KeyError(f"no indexed run matches {run_ref!r}")
        if len(rows) > 1:
            matches = ", ".join(row["run_id"] for row in rows)
            raise KeyError(f"run prefix {run_ref!r} is ambiguous: "
                           f"{matches}")
        return rows[0]["run_id"]

    def units_for(self, run_id: str) -> List[Dict[str, Any]]:
        rows = self.conn.execute(
            "SELECT * FROM units WHERE run_id = ? ORDER BY unit, seed",
            (run_id,)).fetchall()
        return [dict(row) for row in rows]

    def metric_names(self, run_id: str) -> List[str]:
        rows = self.conn.execute(
            "SELECT DISTINCT metric FROM metrics WHERE run_id = ? "
            "ORDER BY metric", (run_id,)).fetchall()
        return [row["metric"] for row in rows]

    def metric_samples(self, run_id: str,
                       metrics: Optional[Sequence[str]] = None
                       ) -> Dict[Tuple[str, str], List[float]]:
        """``{(unit, metric): [values across seeds]}`` for one run.

        Values are ordered by seed so two same-seed runs line up
        sample by sample.
        """
        query = ("SELECT unit, metric, value FROM metrics "
                 "WHERE run_id = ? AND value IS NOT NULL")
        params: List[Any] = [run_id]
        if metrics:
            placeholders = ",".join("?" for _ in metrics)
            query += f" AND metric IN ({placeholders})"
            params.extend(metrics)
        query += " ORDER BY unit, metric, seed"
        samples: Dict[Tuple[str, str], List[float]] = {}
        for row in self.conn.execute(query, params):
            samples.setdefault((row["unit"], row["metric"]),
                               []).append(row["value"])
        return samples

    def bench_history(self, algorithm: Optional[str] = None
                      ) -> List[Dict[str, Any]]:
        """The full bench trajectory, oldest generation first."""
        query = "SELECT * FROM bench"
        params: Tuple[Any, ...] = ()
        if algorithm is not None:
            query += " WHERE algorithm = ?"
            params = (algorithm,)
        query += " ORDER BY generated, algorithm"
        return [dict(row) for row in
                self.conn.execute(query, params).fetchall()]

    # -- internals --------------------------------------------------------

    def _ingest_unit_end(self, record: Dict[str, Any]) -> None:
        seed = record.get("seed", NO_SEED)
        sanitizer = record.get("sanitizer")
        violations = (sanitizer.get("violations")
                      if isinstance(sanitizer, dict) else None)
        self.conn.execute(
            "INSERT OR IGNORE INTO units (run_id, unit, seed, "
            "experiment, key, cached, ok, wall_s, ts, violations) "
            "VALUES (?,?,?,?,?,?,?,?,?,?)",
            (record["run_id"], record["unit"], seed,
             record["experiment"], record["key"],
             int(record["cached"]), int(record["ok"]),
             record["wall_s"], record["ts"], violations))
        digests = {"": record.get("stats"),
                   "timeline.": record.get("timeline"),
                   "sanitizer.": record.get("sanitizer")}
        for prefix, digest in digests.items():
            for metric, value in flatten_metrics(digest, prefix=prefix):
                self.conn.execute(
                    "INSERT OR IGNORE INTO metrics (run_id, unit, "
                    "seed, metric, value) VALUES (?,?,?,?,?)",
                    (record["run_id"], record["unit"], seed, metric,
                     value))

    def _ingest_bench_event(self, record: Dict[str, Any],
                            source: str) -> None:
        """A journal ``bench`` event: one ``*`` summary row."""
        self.conn.execute(
            "INSERT OR IGNORE INTO bench (source, generated, "
            "algorithm, lines, speedup, match) VALUES (?,?,?,?,?,?)",
            (source, repr(record["ts"]), "*", record["lines"],
             record["best_speedup"], int(record["match"])))

    def _upsert_run(self, row: Dict[str, Any]) -> None:
        columns = ("run_id", "started", "finished", "jobs",
                   "cache_enabled", "scale", "sanitize", "seeds",
                   "base_seed", "experiments", "units", "cache_hits",
                   "wall_s", "source")
        values = tuple(row.get(column) for column in columns)
        updates = ", ".join(
            f"{column} = COALESCE(excluded.{column}, runs.{column})"
            for column in columns[1:])
        self.conn.execute(
            f"INSERT INTO runs ({', '.join(columns)}) "
            f"VALUES ({', '.join('?' for _ in columns)}) "
            f"ON CONFLICT(run_id) DO UPDATE SET {updates}",
            values)


def _text_or_null(value: Any) -> Optional[str]:
    if value is None:
        return None
    return value if isinstance(value, str) else repr(value)


def _int_or_null(value: Any) -> Optional[int]:
    return None if value is None else int(value)


__all__ = [
    "DEFAULT_DB_PATH",
    "NO_SEED",
    "ResultsIndex",
    "flatten_metrics",
]
