"""Memory budgeting, mirroring the paper's cgroups methodology (§VI-A).

The authors budget a benchmark's memory with Linux cgroups: a *static*
budget replicates a regular (uncompressed) constrained system; a
*dynamic* budget that follows the workload's real-time compression
ratio emulates a compressed system ("change the memory available to
the benchmark dynamically according to its real-time compressibility").
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class StaticBudget:
    """Fixed resident-page budget (uncompressed constrained system)."""

    pages: int

    def resident_limit(self, progress: float) -> int:
        return self.pages


class DynamicBudget:
    """Budget scaled by the compression-ratio timeline.

    ``ratio_timeline`` holds the workload's effective compression ratio
    sampled at equally spaced progress points (the paper's saved
    vectors over instruction intervals); the effective budget at any
    progress is ``base_pages * ratio`` — compression stretches how many
    OSPA pages fit in the same machine memory.
    """

    def __init__(self, base_pages: int, ratio_timeline: Sequence[float]) -> None:
        if base_pages <= 0:
            raise ValueError("base budget must be positive")
        if not ratio_timeline:
            raise ValueError("need at least one ratio sample")
        if any(r < 1.0 for r in ratio_timeline):
            raise ValueError("compression ratios below 1.0 are not meaningful here")
        self.base_pages = base_pages
        self.timeline = list(ratio_timeline)

    def ratio_at(self, progress: float) -> float:
        progress = min(max(progress, 0.0), 1.0)
        index = min(int(progress * len(self.timeline)), len(self.timeline) - 1)
        return self.timeline[index]

    def resident_limit(self, progress: float) -> int:
        return max(1, int(self.base_pages * self.ratio_at(progress)))


class ScaledBudget:
    """A base budget modulated by a factor timeline (overload control).

    Unlike :class:`DynamicBudget`, the factors may drop *below* 1.0 —
    this is how the pressure layer (repro.pressure, docs/PRESSURE.md)
    squeezes a tenant's resident set mid-run: the base budget expresses
    the tenant's entitlement, the factor timeline the share of it the
    node can currently honour.  ``resident_limit`` never drops below
    one page, so a throttled tenant can still make progress.
    """

    def __init__(self, base, factor_timeline: Sequence[float]) -> None:
        if not factor_timeline:
            raise ValueError("need at least one factor sample")
        if any(f <= 0.0 for f in factor_timeline):
            raise ValueError("scale factors must be positive")
        self.base = base
        self.timeline = list(factor_timeline)

    def factor_at(self, progress: float) -> float:
        progress = min(max(progress, 0.0), 1.0)
        index = min(int(progress * len(self.timeline)), len(self.timeline) - 1)
        return self.timeline[index]

    def resident_limit(self, progress: float) -> int:
        base_limit = self.base.resident_limit(progress)
        return max(1, int(base_limit * self.factor_at(progress)))
