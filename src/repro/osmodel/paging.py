"""LRU paging simulation for the memory-capacity impact runs (§VI-A).

Replays a page-touch reference string against a resident-set budget
(static or compression-scaled), counting major faults.  Runtime is then
``T = T_cpu + faults * t_fault``; the experiments report performance
relative to the uncompressed constrained baseline, exactly like the
paper's Tab. II / Fig. 10a "Mem-Cap Impact" series.

The reference string is synthesized from the benchmark profile's
zipf-ranked page-reuse shape (``reuse_alpha``), which preserves what
matters: how violently the fault rate rises once the budget drops
below the hot pages.  mcf / GemsFDTD / lbm have near-flat reuse over
their whole footprint, so they thrash ("stall") at 60–70% budgets, as
in the paper.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from .._util import stable_seed
from ..workloads.profiles import BenchmarkProfile


@dataclass
class PagingStats:
    touches: int = 0
    faults: int = 0
    evictions: int = 0

    def fault_rate(self) -> float:
        return self.faults / self.touches if self.touches else 0.0


@dataclass(frozen=True)
class PagingCostModel:
    """Relative time accounting for the capacity runs.

    ``touch_cost`` is the CPU time represented by one page-level touch
    (arbitrary units); ``fault_cost`` is the page-fault service time in
    the same units (swap I/O + kernel work).  One touch here stands for
    a long run of accesses to a resident page (the reference string is
    page-granular), so the ratio is far below the raw
    fault-vs-DRAM-access latency ratio; 1:150 calibrates the
    70%-constrained slowdowns of almost-linearly-sensitive benchmarks
    into the paper's Tab. II band (~1.2-1.5x) while flat-reuse
    benchmarks still stall.
    """

    touch_cost: float = 1.0
    fault_cost: float = 150.0

    def runtime(self, stats: PagingStats) -> float:
        return stats.touches * self.touch_cost + stats.faults * self.fault_cost


class LRUPagingSimulator:
    """Exact LRU resident set with a (possibly time-varying) budget."""

    def __init__(self, budget) -> None:
        """``budget`` provides ``resident_limit(progress) -> int``."""
        self.budget = budget
        self._resident: OrderedDict = OrderedDict()
        self.stats = PagingStats()

    def touch(self, page: int, progress: float) -> bool:
        """Access one page; returns True if it faulted."""
        self.stats.touches += 1
        limit = max(1, self.budget.resident_limit(progress))
        faulted = page not in self._resident
        if faulted:
            self.stats.faults += 1
        else:
            self._resident.move_to_end(page)
        self._resident[page] = True
        while len(self._resident) > limit:
            self._resident.popitem(last=False)
            self.stats.evictions += 1
        return faulted

    @property
    def resident_pages(self) -> int:
        return len(self._resident)

    def evict_coldest(self, n: int) -> List[int]:
        """Force out the ``n`` least-recently-touched pages.

        The overload-control escalation path (repro.pressure,
        docs/PRESSURE.md) pages out an over-budget tenant's coldest
        pages explicitly rather than waiting for the budget to squeeze
        them; returns the evicted page numbers (may be fewer than
        ``n`` when the resident set is smaller).
        """
        evicted: List[int] = []
        while self._resident and len(evicted) < n:
            page, _ = self._resident.popitem(last=False)
            self.stats.evictions += 1
            evicted.append(page)
        return evicted

    def drop(self, page: int) -> bool:
        """Remove one page from the resident set (tenant freed it)."""
        if page in self._resident:
            del self._resident[page]
            return True
        return False


def reference_string(profile: BenchmarkProfile, n_touches: int,
                     seed: int = 0, footprint_pages: Optional[int] = None
                     ) -> Iterator[int]:
    """Page-touch stream with zipf-ranked reuse.

    Page ``r`` is touched with probability proportional to
    ``(r+1)**-reuse_alpha``.  The exponent shapes the fault curve under
    a constrained budget: flat reuse (alpha ~0.4, mcf-like) touches the
    whole footprint near-uniformly and thrashes once the budget drops
    below it; steep reuse (alpha > 2) concentrates on a small hot set
    and barely notices the constraint.  Page *identities* are shuffled
    so the hot pages are not simply the low-numbered ones.
    """
    pages = footprint_pages or profile.footprint_pages
    rng = np.random.RandomState(stable_seed(profile.name, "ref", seed))
    weights = (np.arange(1, pages + 1, dtype=float)
               ** -max(0.0, profile.reuse_alpha))
    cdf = np.cumsum(weights / weights.sum())
    identity = rng.permutation(pages)
    batch = 4096
    produced = 0
    while produced < n_touches:
        count = min(batch, n_touches - produced)
        ranks = np.searchsorted(cdf, rng.rand(count))
        for rank in ranks:
            yield int(identity[min(rank, pages - 1)])
        produced += count


def run_capacity_simulation(profile: BenchmarkProfile, budget,
                            n_touches: int = 50000, seed: int = 0,
                            footprint_pages: Optional[int] = None,
                            cost_model: PagingCostModel = PagingCostModel()
                            ) -> tuple:
    """Replay a reference string under a budget; returns (stats, runtime)."""
    sim = LRUPagingSimulator(budget)
    for index, page in enumerate(
        reference_string(profile, n_touches, seed, footprint_pages)
    ):
        sim.touch(page, progress=index / n_touches)
    return sim.stats, cost_model.runtime(sim.stats)
