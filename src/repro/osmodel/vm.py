"""Guest OS virtual-memory bookkeeping (substrate for §V and §VI-A).

Tracks which OSPA pages the OS considers allocated, free, or cold —
the information the ballooning driver (§V-B) relies on: when the
balloon inflates, the guest hands over free pages first, then pages out
cold pages via its regular paging mechanism.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass
class VMStats:
    allocations: int = 0
    frees: int = 0
    balloon_takes: int = 0
    cold_takes: int = 0


class VirtualMemory:
    """OS page-allocation state over the advertised OSPA space."""

    def __init__(self, total_pages: int) -> None:
        if total_pages <= 0:
            raise ValueError("need a positive page count")
        self.total_pages = total_pages
        self._free: List[int] = list(range(total_pages - 1, -1, -1))
        # Allocated pages in LRU order (oldest touch first); value=dirty.
        self._allocated: OrderedDict = OrderedDict()
        self.stats = VMStats()

    # -- normal OS operation ----------------------------------------------

    def allocate_page(self) -> int:
        """Allocate one OSPA page (e.g. on an application's first touch)."""
        if not self._free:
            raise MemoryError("OSPA space exhausted")
        page = self._free.pop()
        self._allocated[page] = False
        self.stats.allocations += 1
        return page

    def free_page(self, page: int) -> None:
        if page not in self._allocated:
            raise ValueError(f"page {page} is not allocated")
        del self._allocated[page]
        self._free.append(page)
        self.stats.frees += 1

    def touch(self, page: int, dirty: bool = False) -> None:
        """Record an access: page becomes most-recently used."""
        if page not in self._allocated:
            raise ValueError(f"page {page} is not allocated")
        self._allocated[page] = self._allocated[page] or dirty
        self._allocated.move_to_end(page)

    @property
    def allocated_pages(self) -> int:
        return len(self._allocated)

    @property
    def free_pages(self) -> int:
        return len(self._free)

    def is_allocated(self, page: int) -> bool:
        return page in self._allocated

    # -- balloon interface (§V-B) ------------------------------------------

    def take_free_page(self) -> Optional[int]:
        """Balloon demand served from the free list (cheap)."""
        if not self._free:
            return None
        self.stats.balloon_takes += 1
        return self._free.pop()

    def take_cold_page(self) -> Optional[Tuple[int, bool]]:
        """Balloon demand served by paging out the coldest page."""
        if not self._allocated:
            return None
        page, dirty = next(iter(self._allocated.items()))
        del self._allocated[page]
        self.stats.cold_takes += 1
        return page, dirty
