"""OS substrate: virtual memory, budgets, LRU paging (DESIGN.md)."""

from .cgroups import DynamicBudget, ScaledBudget, StaticBudget
from .paging import (
    LRUPagingSimulator,
    PagingCostModel,
    PagingStats,
    reference_string,
    run_capacity_simulation,
)
from .vm import VirtualMemory, VMStats

__all__ = [
    "DynamicBudget",
    "LRUPagingSimulator",
    "PagingCostModel",
    "PagingStats",
    "ScaledBudget",
    "StaticBudget",
    "VMStats",
    "VirtualMemory",
    "reference_string",
    "run_capacity_simulation",
]
