"""SimPoints vs. CompressPoints (paper §VI-B, Fig. 9).

SimPoint picks representative simulation regions by clustering
basic-block vectors (BBVs) — good for pipeline/cache behaviour, blind
to data *content*.  CompressPoints [Choukse et al., CAL 2018] extend
the feature vector with compression metrics (compression ratio, page
overflow/underflow rates, memory usage), which matters because
compressibility has strong phases that BBVs cannot see: Fig. 9 shows
GemsFDTD swinging between ~1x and ~13x while executing similar code.

We reproduce the methodology over our synthetic benchmarks: intervals
are profiled for (a) an access-pattern histogram standing in for the
BBV — like a BBV, it captures *where* execution goes, not what the
data looks like — and (b) compression metrics.  K-means over features
(a) alone emulates SimPoint; over (a)+(b), CompressPoint.  The error
of each method's weighted compression-ratio estimate against the true
per-interval series is the Fig. 9 comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..compression import BPCCompressor, is_zero_line
from ..core.packing import choose_bin
from ..workloads.profiles import BenchmarkProfile
from ..workloads.tracegen import TraceGenerator, Workload

_BBV_BINS = 16
_LINE_BINS = (0, 8, 32, 64)


@dataclass
class IntervalProfile:
    """Features of one fixed-length instruction interval."""

    index: int
    bbv: np.ndarray              # normalized access-region histogram
    compression_ratio: float
    overflow_rate: float
    underflow_rate: float
    memory_used: float           # touched fraction of the footprint

    def feature_vector(self, with_compression: bool) -> np.ndarray:
        if not with_compression:
            return self.bbv
        extras = np.array([
            1.0 / self.compression_ratio,   # bounded (0, 1]
            self.overflow_rate,
            self.underflow_rate,
            self.memory_used,
        ])
        return np.concatenate([self.bbv, extras])


class _SizeTracker:
    """Tracks per-page packed sizes without a full controller."""

    def __init__(self) -> None:
        self._compressor = BPCCompressor()
        self._cache = {}
        self.page_bins = {}

    def line_bin_bytes(self, data: bytes) -> int:
        if is_zero_line(data):
            return 0
        size = self._cache.get(data)
        if size is None:
            size = min(self._compressor.compress(data).size_bytes, 64)
            self._cache[data] = size
        return _LINE_BINS[choose_bin(size, _LINE_BINS)]


def profile_intervals(profile: BenchmarkProfile, n_intervals: int = 20,
                      events_per_interval: int = 1500, scale: float = 0.05,
                      seed: int = 0) -> List[IntervalProfile]:
    """Profile a benchmark into per-interval feature vectors."""
    workload = Workload(profile, scale=scale, seed=seed)
    trace = TraceGenerator(workload, seed=seed)
    tracker = _SizeTracker()
    phase_rng = np.random.RandomState(seed + 17)
    total_events = n_intervals * events_per_interval
    events = trace.events(total_events)

    page_sizes = {}          # page -> list of 64 packed bin bytes
    touched = set()
    intervals: List[IntervalProfile] = []

    def page_entry(page: int) -> list:
        entry = page_sizes.get(page)
        if entry is None:
            entry = [
                tracker.line_bin_bytes(workload.line_data(page, line))
                for line in range(64)
            ]
            page_sizes[page] = entry
        return entry

    for interval_index in range(n_intervals):
        bbv = np.zeros(_BBV_BINS)
        overflows = underflows = writes = 0
        for _ in range(events_per_interval):
            event = next(events)
            touched.add(event.page)
            region = event.page * _BBV_BINS // max(1, workload.pages)
            bbv[min(region, _BBV_BINS - 1)] += 1
            entry = page_entry(event.page)
            if event.is_writeback:
                progress = interval_index / n_intervals
                override = trace.overwrite_class_at(progress, phase_rng)
                data = workload.apply_writeback(event.page, event.line,
                                                override)
                new_size = tracker.line_bin_bytes(data)
                old_size = entry[event.line]
                if new_size > old_size:
                    overflows += 1
                elif new_size < old_size:
                    underflows += 1
                entry[event.line] = new_size
                writes += 1
        # Snapshot compression ratio of the whole allocation (Fig. 9):
        # untouched pages are still zeroed-out allocations, costing only
        # their metadata entry, so early intervals show very high ratios
        # that decline as the footprint fills with real data.
        raw = workload.pages * 4096
        compressed = 0
        for page in range(workload.pages):
            entry = page_sizes.get(page)
            if entry is None:
                compressed += 64  # metadata entry only
                continue
            packed = sum(entry)
            compressed += max(512, (packed + 511) // 512 * 512) \
                if packed else 64
        ratio = raw / max(1, compressed)
        intervals.append(IntervalProfile(
            index=interval_index,
            bbv=bbv / max(1.0, bbv.sum()),
            compression_ratio=min(16.0, ratio),
            overflow_rate=overflows / max(1, writes),
            underflow_rate=underflows / max(1, writes),
            memory_used=len(touched) / workload.pages,
        ))
    return intervals


def kmeans(points: np.ndarray, k: int, seed: int = 0,
           iterations: int = 50) -> Tuple[np.ndarray, np.ndarray]:
    """Small deterministic k-means (k-means++ init). Returns (labels, centers)."""
    rng = np.random.RandomState(seed)
    n = len(points)
    k = min(k, n)
    centers = [points[rng.randint(n)]]
    for _ in range(1, k):
        d2 = np.min(
            [np.sum((points - c) ** 2, axis=1) for c in centers], axis=0
        )
        total = d2.sum()
        if total <= 0:
            centers.append(points[rng.randint(n)])
            continue
        centers.append(points[np.searchsorted(np.cumsum(d2 / total),
                                              rng.rand())])
    centers = np.array(centers)
    labels = np.zeros(n, dtype=int)
    for _ in range(iterations):
        distances = np.array([
            np.sum((points - c) ** 2, axis=1) for c in centers
        ])
        new_labels = np.argmin(distances, axis=0)
        if np.array_equal(new_labels, labels) and _ > 0:
            break
        labels = new_labels
        for j in range(k):
            members = points[labels == j]
            if len(members):
                centers[j] = members.mean(axis=0)
    return labels, centers


@dataclass
class PointSelection:
    """Chosen representative intervals and their weights."""

    method: str                       # "simpoint" | "compresspoint"
    chosen: List[int]                 # interval indices
    weights: List[float]              # cluster-size weights (sum to 1)

    def estimate_ratio(self, intervals: List[IntervalProfile]) -> float:
        """Weighted compression-ratio estimate from the chosen points."""
        return float(sum(
            w * intervals[i].compression_ratio
            for i, w in zip(self.chosen, self.weights)
        ))


def select_points(intervals: List[IntervalProfile], k: int = 4,
                  with_compression: bool = True, seed: int = 0
                  ) -> PointSelection:
    """SimPoint (BBV-only) or CompressPoint (BBV + compression) selection."""
    features = np.array([
        interval.feature_vector(with_compression) for interval in intervals
    ])
    labels, centers = kmeans(features, k, seed)
    chosen: List[int] = []
    weights: List[float] = []
    n = len(intervals)
    for j in range(len(centers)):
        members = np.flatnonzero(labels == j)
        if not len(members):
            continue
        distances = np.sum((features[members] - centers[j]) ** 2, axis=1)
        chosen.append(int(members[int(np.argmin(distances))]))
        weights.append(len(members) / n)
    return PointSelection(
        method="compresspoint" if with_compression else "simpoint",
        chosen=chosen,
        weights=weights,
    )


def representativeness_error(intervals: List[IntervalProfile],
                             selection: PointSelection) -> float:
    """|estimated mean ratio - true mean ratio| / true mean ratio."""
    true_mean = float(np.mean([i.compression_ratio for i in intervals]))
    estimate = selection.estimate_ratio(intervals)
    return abs(estimate - true_mean) / true_mean
