"""Overall performance: cycle-based x capacity impact (paper §VI-F).

The paper multiplies the two speedups, arguing they are mutually
independent: compression's latency/bandwidth effects act on compute
time, and its capacity effect acts on paging time.  The unconstrained
system bounds the possible gain from capacity alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .capacity import CapacityResult
from .simulator import SimulationResult


@dataclass
class OverallResult:
    """Fig. 10b / 11b row for one benchmark (or mix)."""

    benchmark: str
    cycle_speedup: Dict[str, float]     # vs uncompressed, same trace
    capacity_speedup: Dict[str, float]  # vs uncompressed constrained

    def overall(self, system: str) -> float:
        """Relative overall speedup vs. the constrained baseline."""
        return self.cycle_speedup[system] * self.capacity_speedup[system]

    @property
    def unconstrained_bound(self) -> float:
        return self.capacity_speedup["unconstrained"]


def combine(cycle_results: Dict[str, SimulationResult],
            capacity_result: CapacityResult) -> OverallResult:
    """Build the overall-performance row from the two evaluations."""
    baseline = cycle_results["uncompressed"]
    cycle_speedup = {
        system: result.speedup_over(baseline)
        for system, result in cycle_results.items()
        if system != "uncompressed"
    }
    cycle_speedup["unconstrained"] = 1.0  # uncompressed, just more memory
    capacity_speedup = {
        system: capacity_result.relative(system)
        for system in capacity_result.runtimes
        if system != "constrained"
    }
    return OverallResult(
        benchmark=capacity_result.benchmark,
        cycle_speedup=cycle_speedup,
        capacity_speedup=capacity_speedup,
    )
