"""Cycle-based simulation driver (paper §VI, Figs. 10a/11a "Cycle-Based").

Feeds a benchmark's LLC-level trace through a memory system — the
uncompressed baseline or a compressed controller — over the DDR4 timing
model and the analytic core.  Captures everything the experiments need:
cycles (→ relative performance), the controller's data-movement stats
(→ Figs. 4/6), DRAM traffic (→ energy), and a compression-ratio
timeline (→ the capacity runs' dynamic budget).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core.config import CompressoConfig
from ..core.controller import CompressedMemoryController
from ..core.stats import ControllerStats
from ..cpu.core import AnalyticCore, CoreConfig
from ..memory.dram import DRAMStats, DRAMSystem, DRAMTimings
from ..memory.physical import MemoryGeometry
from ..memory.request import AccessCategory, AccessKind, AccessResult, MemAccess
from ..obs import NULL_TRACER, timeline_digest
from ..workloads.profiles import BenchmarkProfile
from ..workloads.tracegen import TraceGenerator, Workload
from .configs import OS_PAGE_FAULT_PENALTY_CYCLES, system_config


@dataclass
class SimulationConfig:
    """Knobs for one cycle-based run."""

    n_events: int = 40000
    scale: float = 0.25              # footprint scale factor
    seed: int = 0
    warm_install: bool = True        # pre-populate memory (CompressPoint)
    #: Prime the controller's compressed-size cache through the numpy
    #: batch kernels before the warm install (docs/KERNELS.md).  Purely
    #: a wall-clock optimization — the vector kernels are byte-identical
    #: to the scalar compressors, so results and statistics do not
    #: change; opt-in because correctness runs deliberately exercise
    #: the scalar demand path.
    batch_install: bool = False
    ratio_samples: int = 20          # compression-ratio timeline length
    os_fault_penalty: int = OS_PAGE_FAULT_PENALTY_CYCLES
    dram_channels: int = 1
    #: Fraction of a *sequential* demand read's latency hidden by the
    #: core's stream prefetcher (all systems benefit equally); without
    #: it, an analytic core overstates how memory-latency-bound
    #: streaming workloads are, and with them every bandwidth benefit.
    prefetch_hide: float = 0.6
    #: Scale the metadata cache with the footprint so the working-set /
    #: cache-reach ratio matches the full-size system (96 KB vs. real
    #: footprints); disable for absolute-capacity studies.
    scale_metadata_cache: bool = True
    #: Visible-latency weight of the second and later accesses in a
    #: serial critical chain (metadata miss -> data); 1.0 models full
    #: serialization.  Metadata fetches are already prioritized in the
    #: DRAM model, so full serialization is the honest default.
    serial_overlap: float = 1.0
    #: Attach the memory-model sanitizer (repro.check.sanitizer): the
    #: controller re-verifies its layout and allocator invariants after
    #: every operation, and the result reports the violation count.
    #: Beyond True/False this accepts ``"strict"`` (raise on the first
    #: violation) and ``"recover"`` (repair detected corruption via the
    #: decompress-and-mark-uncompressed fallback, docs/ROBUSTNESS.md).
    sanitize: object = False
    #: Fault-injection spec (``repro.inject`` grammar, e.g.
    #: ``"line:0.01,meta:0.005"``); ``None`` disables injection.  The
    #: injector is seeded from ``seed`` and steps once per trace event.
    #: Pair with ``sanitize="recover"`` for detect-and-recover runs.
    faults: Optional[str] = None
    #: Run the multicore simulation across this many supervised worker
    #: processes (``repro.shard``, docs/SHARDING.md); 0 keeps the
    #: single-process path.  Results are byte-identical either way —
    #: the supervisor verifies N-way agreement before merging.
    shards: int = 0


@dataclass
class SimulationResult:
    """Outcome of one (benchmark, system) cycle-based run."""

    benchmark: str
    system: str
    cycles: int
    instructions: int
    controller_stats: Optional[ControllerStats]
    dram_stats: DRAMStats
    ratio_timeline: List[float] = field(default_factory=list)
    #: Metadata-cache hit rate; ``None`` when the run produced no
    #: metadata traffic (uncompressed baseline, or zero lookups).
    metadata_hit_rate: Optional[float] = None
    #: Compression ratio after the final metadata flush (all pending
    #: repack triggers fired) — what a long-running system converges to.
    final_ratio: float = 1.0
    #: Windowed trace digest (``repro.obs.timeline.timeline_digest``);
    #: only present when the run was traced.
    timeline: Optional[dict] = None
    #: Invariant violations the memory-model sanitizer detected;
    #: ``None`` when the run was not sanitized (``sanitize=False``).
    sanitizer_violations: Optional[int] = None
    #: Faults the injector committed; ``None`` when the run had no
    #: injector (``faults=None``).
    faults_injected: Optional[int] = None

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def speedup_over(self, baseline: "SimulationResult") -> float:
        """Relative performance vs. a run of the same trace."""
        if baseline.instructions != self.instructions:
            raise ValueError("speedup requires runs over the same trace")
        return baseline.cycles / self.cycles

    @property
    def mean_ratio(self) -> float:
        if not self.ratio_timeline:
            return 1.0
        return float(np.mean(self.ratio_timeline))


class UncompressedController:
    """Baseline memory controller: one access per fill/writeback."""

    def __init__(self, page_size: int = 4096, line_size: int = 64) -> None:
        self.page_size = page_size
        self.line_size = line_size
        self.stats = ControllerStats()

    def read_line(self, page: int, line: int) -> AccessResult:
        self.stats.demand_reads += 1
        address = page * self.page_size + line * self.line_size
        return AccessResult(accesses=[
            MemAccess(AccessKind.READ, AccessCategory.DEMAND, address)
        ])

    def write_line(self, page: int, line: int, data: bytes) -> AccessResult:
        self.stats.demand_writes += 1
        address = page * self.page_size + line * self.line_size
        return AccessResult(accesses=[
            MemAccess(AccessKind.WRITE, AccessCategory.DEMAND, address,
                      critical=False)
        ])

    def install_page(self, page: int, lines) -> None:
        """Uncompressed memory needs no installation bookkeeping."""

    def compression_ratio(self) -> float:
        return 1.0

    def flush_metadata(self):
        return []


def _build_controller(system: str, workload_pages: int,
                      sim: SimulationConfig,
                      config: Optional[CompressoConfig] = None,
                      tracer=NULL_TRACER):
    if config is None:
        config = system_config(system)
    if config is None:
        return UncompressedController()
    if sim.scale_metadata_cache and sim.scale < 1.0:
        entry_set = config.metadata_cache_assoc * 64
        scaled = max(entry_set, int(config.metadata_cache_bytes * sim.scale))
        scaled -= scaled % entry_set
        config = config.replace(metadata_cache_bytes=scaled)
    footprint = workload_pages * 4096
    # Cycle-based runs are not capacity constrained (8 GB in Tab. III):
    # install enough machine memory for the worst (incompressible) case
    # plus metadata, and advertise at least the workload's OSPA range.
    installed = footprint * 2 + (32 << 20)
    geometry = MemoryGeometry(
        installed_bytes=installed,
        advertised_ratio=max(2.0, (workload_pages + 64) * 4096 * 1.1 / installed),
    )
    return CompressedMemoryController(config, geometry, tracer=tracer,
                                      sanitize=sim.sanitize)


class EventEngine:
    """Processes one core's trace events against a (possibly shared)
    controller + DRAM.  Used by both the single-core and 4-core drivers."""

    def __init__(self, controller, dram: DRAMSystem, core: AnalyticCore,
                 workload: Workload, trace: TraceGenerator,
                 sim: SimulationConfig, page_offset: int = 0) -> None:
        self.controller = controller
        self.dram = dram
        self.core = core
        self.workload = workload
        self.trace = trace
        self.sim = sim
        self.page_offset = page_offset
        self._phase_rng = np.random.RandomState(sim.seed + 1 + page_offset)
        self._last_read = (-1, -1)

    def step(self, event, progress: float) -> None:
        """Advance the core through one trace event."""
        sim = self.sim
        core = self.core
        controller = self.controller
        page = self.page_offset + event.page
        core.advance_instructions(event.gap)
        if event.is_writeback:
            override = self.trace.overwrite_class_at(progress, self._phase_rng)
            data = self.workload.apply_writeback(event.page, event.line,
                                                 override)
            faults_before = controller.stats.os_page_faults
            result = controller.write_line(page, event.line, data)
            _issue(self.dram, core.now, result, stall_core=None)
            faults = controller.stats.os_page_faults - faults_before
            if faults:
                core.stall(faults * sim.os_fault_penalty)
        else:
            result = controller.read_line(page, event.line)
            latency = _issue(self.dram, core.now, result, stall_core=core,
                             serial_overlap=sim.serial_overlap)
            latency += result.controller_cycles
            sequential = (
                event.page == self._last_read[0]
                and event.line == self._last_read[1] + 1
            )
            if sequential:
                latency = int(latency * (1.0 - sim.prefetch_hide))
            core.stall(latency)
            self._last_read = (event.page, event.line)


def simulate(profile: BenchmarkProfile, system: str,
             sim: SimulationConfig = SimulationConfig(),
             config: Optional[CompressoConfig] = None,
             tracer=None, injector=None) -> SimulationResult:
    """Run one benchmark on one system configuration.

    ``system`` is a named configuration (§VI-F); pass ``config`` to run
    an explicit :class:`CompressoConfig` design point instead (the
    Fig. 4/6 ladders and ablations do this), with ``system`` then used
    only as the result label.  Pass a :class:`repro.obs.Tracer` to
    record controller events and wall-clock phase timings; the result
    then carries a windowed timeline digest.  A ``repro.inject``
    :class:`~repro.inject.FaultInjector` (given explicitly or built
    from ``sim.faults``) is stepped once per trace event against the
    compressed controller.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    workload = Workload(profile, scale=sim.scale, seed=sim.seed)
    controller = _build_controller(system, workload.pages, sim, config,
                                   tracer=tracer)
    if injector is None and sim.faults:
        from ..inject import FaultInjector
        injector = FaultInjector(sim.faults, seed=sim.seed)
    if injector is not None:
        if isinstance(controller, UncompressedController):
            injector = None     # nothing to corrupt in the baseline
        else:
            injector.bind(controller, tracer)
    with tracer.phase("install"):
        if sim.warm_install:
            if sim.batch_install and hasattr(controller, "prime_size_cache"):
                controller.prime_size_cache(
                    line
                    for page in range(workload.pages)
                    for line in workload.page_lines(page)
                )
            for page in range(workload.pages):
                controller.install_page(page, workload.page_lines(page))

    core = AnalyticCore(CoreConfig(), mlp=profile.mlp, cpi=profile.base_cpi)
    dram = DRAMSystem(n_channels=sim.dram_channels, timings=DRAMTimings())
    trace = TraceGenerator(workload, seed=sim.seed)
    engine = EventEngine(controller, dram, core, workload, trace, sim)

    ratio_timeline: List[float] = []
    sample_every = max(1, sim.n_events // max(1, sim.ratio_samples))

    with tracer.phase("simulate"):
        for index, event in enumerate(trace.events(sim.n_events)):
            engine.step(event, progress=index / sim.n_events)
            if injector is not None:
                injector.step()
            if index % sample_every == 0:
                ratio_timeline.append(max(1.0, controller.compression_ratio()))

    with tracer.phase("flush"):
        controller.flush_metadata()
    cstats = controller.stats if not isinstance(
        controller, UncompressedController
    ) else None
    sanitizer = getattr(controller, "sanitizer", None)
    return SimulationResult(
        benchmark=profile.name,
        system=system,
        cycles=max(1, core.now),
        instructions=core.stats.instructions,
        controller_stats=cstats or controller.stats,
        dram_stats=dram.stats,
        ratio_timeline=ratio_timeline,
        final_ratio=max(1.0, controller.compression_ratio()),
        metadata_hit_rate=controller.stats.metadata_hit_rate(),
        timeline=(
            timeline_digest(tracer.events, tracer.digest_window,
                            end_clock=tracer.clock)
            if tracer.enabled else None
        ),
        sanitizer_violations=(
            sanitizer.violation_count if sanitizer is not None else None
        ),
        faults_injected=(
            len(injector.records) if injector is not None else None
        ),
    )


def _issue(dram: DRAMSystem, now: int, result: AccessResult,
           stall_core, serial_overlap: float = 0.45) -> int:
    """Issue a result's DRAM accesses; returns critical-path latency.

    Critical accesses serialize in DRAM-time (metadata before data),
    but the *visible* latency of later chain links is discounted by
    ``serial_overlap`` — the OOO window overlaps dependent-miss chains
    across independent misses.  Non-critical accesses (writebacks,
    movement traffic, speculation) are posted at ``now`` and only cost
    bandwidth.
    """
    t = now
    visible = 0.0
    first = True
    for access in result.accesses:
        if access.critical and stall_core is not None:
            done = dram.access(t, access)
            service = done - t
            visible += service if first else service * serial_overlap
            first = False
            t = done
        else:
            dram.access(now, access)
    return int(visible)


def run_benchmark_systems(profile: BenchmarkProfile, systems,
                          sim: SimulationConfig = SimulationConfig()
                          ) -> Dict[str, SimulationResult]:
    """Run one benchmark across several systems on the same trace."""
    return {system: simulate(profile, system, sim) for system in systems}
