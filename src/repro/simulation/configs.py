"""Evaluated system configurations (paper Tab. III + §VI-F).

Four systems appear throughout the evaluation:

* ``uncompressed`` — the baseline all performance is relative to;
* ``lcp`` — the competitive baseline: OS-aware LCP with the optimized
  BPC compressor, 4 variable page sizes, exception region, speculative
  parallel access, and a same-size metadata cache;
* ``lcp+align`` — LCP with Compresso's alignment-friendly line bins;
* ``compresso`` — the full design with every data-movement optimization.

The Fig. 6 optimization ladder additionally needs Compresso with
optimizations applied cumulatively; :func:`optimization_ladder` builds
those design points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.config import (
    ALIGNMENT_FRIENDLY_LINE_BINS,
    PRIOR_WORK_LINE_BINS,
    CompressoConfig,
    compresso_config,
    lcp_align_config,
    lcp_config,
)

#: Paper Tab. III simulation parameters not covered by CompressoConfig.
CPU_FREQ_GHZ = 3.0
ISSUE_WIDTH = 4
ROB_ENTRIES = 192
DRAM_SIZE_GB = 8
OS_PAGE_FAULT_PENALTY_CYCLES = 3000  # OS-aware page-overflow fault (§VII-A)

SYSTEM_ORDER = ("uncompressed", "lcp", "lcp+align", "compresso")


def system_config(name: str) -> Optional[CompressoConfig]:
    """Controller config for a named system (None = uncompressed)."""
    if name == "uncompressed":
        return None
    if name == "lcp":
        return lcp_config()
    if name == "lcp+align":
        return lcp_align_config()
    if name == "compresso":
        return compresso_config()
    raise ValueError(f"unknown system {name!r}; known: {SYSTEM_ORDER}")


def optimization_ladder() -> List[Tuple[str, CompressoConfig]]:
    """Fig. 6's cumulative optimization steps, baseline first.

    Starts from Compresso's skeleton (LinePack, 512 B chunks) with
    prior-work line bins and no optimizations, then adds, in the
    paper's order: alignment-friendly bins, overflow prediction,
    dynamic IR expansion, and the metadata-cache half-entry
    optimization.  (Dynamic repacking is evaluated separately in
    Fig. 7 since it restores compression rather than cutting traffic.)
    """
    base = compresso_config(
        line_bins=PRIOR_WORK_LINE_BINS,
        enable_overflow_prediction=False,
        enable_ir_expansion=False,
        enable_metadata_half_entries=False,
    )
    steps = [("baseline", base)]
    steps.append((
        "+alignment",
        base.replace(line_bins=ALIGNMENT_FRIENDLY_LINE_BINS),
    ))
    steps.append((
        "+prediction",
        steps[-1][1].replace(enable_overflow_prediction=True),
    ))
    steps.append((
        "+ir-expansion",
        steps[-1][1].replace(enable_ir_expansion=True),
    ))
    steps.append((
        "+metadata-cache",
        steps[-1][1].replace(enable_metadata_half_entries=True),
    ))
    return steps


def chunk_vs_variable_configs() -> Dict[str, CompressoConfig]:
    """Fig. 4's two allocation schemes (both unoptimized)."""
    from ..core.config import CHUNK_PAGE_SIZES, VARIABLE_PAGE_SIZES

    common = dict(
        line_bins=PRIOR_WORK_LINE_BINS,
        enable_overflow_prediction=False,
        enable_ir_expansion=False,
        enable_repacking=False,
        enable_metadata_half_entries=False,
    )
    return {
        "fixed-512B": compresso_config(
            allocation="chunks", page_sizes=CHUNK_PAGE_SIZES, **common
        ),
        "variable-4": compresso_config(
            allocation="variable", page_sizes=VARIABLE_PAGE_SIZES, **common
        ),
    }
