"""Memory-capacity impact evaluation (paper §VI-A, Tab. II, Fig. 10a/11a).

Reproduces the paper's novel methodology: run the workload under a
memory budget constrained to a fraction of its footprint.

* The **uncompressed constrained** system gets a static budget (the
  cgroups limit) — this is the baseline all Tab. II numbers are
  relative to.
* A **compressed** system gets a dynamic budget: the same machine
  memory, stretched by the workload's real-time compression ratio
  (the saved ratio-vs-instructions vectors of §VI-A) — but only up to
  the OSPA space the system advertises.
* The **unconstrained** system gets the full footprint (upper bound).

Runtime is CPU time plus page-fault service; relative performance is
the ratio of runtimes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..osmodel.cgroups import DynamicBudget, StaticBudget
from ..osmodel.paging import PagingCostModel, run_capacity_simulation
from ..workloads.profiles import BenchmarkProfile


@dataclass
class CapacityConfig:
    """Knobs for one capacity-impact evaluation."""

    memory_fraction: float = 0.7      # budget / footprint (Tab. II rows)
    n_touches: int = 40000
    seed: int = 0
    footprint_pages: Optional[int] = None  # default: profile footprint
    cost_model: PagingCostModel = PagingCostModel()


@dataclass
class CapacityResult:
    """Relative performance of each system vs. uncompressed constrained."""

    benchmark: str
    memory_fraction: float
    runtimes: Dict[str, float]
    fault_rates: Dict[str, float]

    def relative(self, system: str) -> float:
        """Speedup of ``system`` over the uncompressed constrained run."""
        return self.runtimes["constrained"] / self.runtimes[system]

    @property
    def stalled(self) -> bool:
        """Paper's stall criterion: paging dominates the constrained run
        (the runtime is several times the unconstrained system's)."""
        return (self.fault_rates["constrained"] > 0.25
                or self.runtimes["constrained"]
                > 5 * self.runtimes["unconstrained"])


def capacity_impact(profile: BenchmarkProfile,
                    ratio_timelines: Dict[str, Sequence[float]],
                    config: CapacityConfig = CapacityConfig()
                    ) -> CapacityResult:
    """Run the §VI-A methodology for one benchmark.

    ``ratio_timelines`` maps system name → compression-ratio samples
    over the run (from the cycle-based simulation); the uncompressed
    constrained and unconstrained runs are added automatically.
    """
    footprint = config.footprint_pages or profile.footprint_pages
    budget_pages = max(1, int(footprint * config.memory_fraction))

    budgets = {
        "constrained": StaticBudget(budget_pages),
        "unconstrained": StaticBudget(footprint),
    }
    for system, timeline in ratio_timelines.items():
        samples = [max(1.0, r) for r in timeline] or [1.0]
        budgets[system] = DynamicBudget(budget_pages, samples)

    runtimes: Dict[str, float] = {}
    fault_rates: Dict[str, float] = {}
    for system, budget in budgets.items():
        stats, runtime = run_capacity_simulation(
            profile, budget,
            n_touches=config.n_touches,
            seed=config.seed,
            footprint_pages=footprint,
            cost_model=config.cost_model,
        )
        runtimes[system] = runtime
        fault_rates[system] = stats.fault_rate()
    return CapacityResult(
        benchmark=profile.name,
        memory_fraction=config.memory_fraction,
        runtimes=runtimes,
        fault_rates=fault_rates,
    )


def multicore_capacity_impact(profiles: List[BenchmarkProfile],
                              ratio_timelines: Dict[str, Sequence[float]],
                              config: CapacityConfig = CapacityConfig()
                              ) -> CapacityResult:
    """4-core capacity run: one shared budget over interleaved streams.

    The workload's combined footprint is budgeted as a whole, so a
    compressible benchmark frees room for an incompressible one — the
    slack effect the paper describes for Mixes 2/4/5/7 (§VII-B).
    """
    from ..osmodel.paging import LRUPagingSimulator, reference_string

    footprints = [
        config.footprint_pages or p.footprint_pages for p in profiles
    ]
    total = sum(footprints)
    budget_pages = max(1, int(total * config.memory_fraction))
    budgets = {
        "constrained": StaticBudget(budget_pages),
        "unconstrained": StaticBudget(total),
    }
    for system, timeline in ratio_timelines.items():
        samples = [max(1.0, r) for r in timeline] or [1.0]
        budgets[system] = DynamicBudget(budget_pages, samples)

    touches_per_core = config.n_touches // len(profiles)
    streams = []
    offset = 0
    for profile, footprint in zip(profiles, footprints):
        pages = list(reference_string(profile, touches_per_core,
                                      config.seed, footprint))
        streams.append([offset + page for page in pages])
        offset += footprint

    runtimes: Dict[str, float] = {}
    fault_rates: Dict[str, float] = {}
    for system, budget in budgets.items():
        sim = LRUPagingSimulator(budget)
        index = 0
        for step in range(touches_per_core):
            progress = step / touches_per_core
            for stream in streams:
                sim.touch(stream[step], progress)
        runtimes[system] = config.cost_model.runtime(sim.stats)
        fault_rates[system] = sim.stats.fault_rate()
    return CapacityResult(
        benchmark="+".join(p.name for p in profiles),
        memory_fraction=config.memory_fraction,
        runtimes=runtimes,
        fault_rates=fault_rates,
    )
