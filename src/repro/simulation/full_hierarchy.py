"""Full-hierarchy simulation mode: core loads/stores through L1/L2/L3.

The main experiments drive the memory controller with LLC-level traces
(the standard shortcut for memory-system studies, §VI).  This mode
instead synthesizes a *core-level* load/store stream and filters it
through the Tab. III cache hierarchy, so the LLC miss/writeback stream
the controller sees — including its dirty-victim timing — emerges from
real cache behaviour rather than from trace parameters.

Use it to sanity-check the trace-driven results or to study how cache
geometry interacts with compression (e.g. a larger LLC absorbs
writebacks and shrinks the controller's overflow traffic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .._util import stable_seed
from ..cache.hierarchy import CacheHierarchy, HierarchyConfig
from ..core.config import CompressoConfig
from ..cpu.core import AnalyticCore, CoreConfig
from ..memory.dram import DRAMStats, DRAMSystem, DRAMTimings
from ..workloads.datagen import LINES_PER_PAGE, LineClass
from ..workloads.profiles import BenchmarkProfile
from ..workloads.tracegen import Workload
from .simulator import SimulationConfig, UncompressedController, _build_controller, _issue


@dataclass
class FullHierarchyResult:
    """Outcome of one full-hierarchy run."""

    benchmark: str
    system: str
    cycles: int
    instructions: int
    core_accesses: int
    llc_fills: int
    llc_writebacks: int
    cache_stats: Dict[str, object]
    controller_stats: object
    dram_stats: DRAMStats
    final_ratio: float = 1.0

    @property
    def llc_mpki(self) -> float:
        if not self.instructions:
            return 0.0
        return 1000.0 * self.llc_fills / self.instructions

    def speedup_over(self, baseline: "FullHierarchyResult") -> float:
        if baseline.instructions != self.instructions:
            raise ValueError("speedup requires runs over the same stream")
        return baseline.cycles / self.cycles


def _core_stream(profile: BenchmarkProfile, workload: Workload,
                 n_accesses: int, seed: int):
    """Synthesize a core-level load/store address stream.

    Uses the profile's locality parameters at *access* granularity: the
    cache hierarchy, not the trace generator, decides what reaches
    memory.  Yields (address, is_write, gap_instructions).
    """
    rng = np.random.RandomState(stable_seed(profile.name, "corestream", seed))
    pages = workload.pages
    hot_pages = max(1, int(pages * profile.hot_fraction))
    # Core-level accesses are far denser than LLC misses; approximate
    # one memory instruction every ~3 instructions.
    page = int(rng.randint(0, pages))
    offset = 0
    for _ in range(n_accesses):
        if rng.rand() < profile.sequential:
            offset += 8  # pointer-sized stride within the line/page
            if offset >= 4096:
                offset = 0
                page = (page + 1) % pages
        else:
            if rng.rand() < profile.hot_weight:
                page = int(hot_pages * (rng.rand() ** profile.skew))
            else:
                page = int(rng.randint(0, pages))
            offset = int(rng.randint(0, 4096 // 8)) * 8
        address = page * 4096 + offset
        is_write = bool(rng.rand() < profile.write_fraction)
        yield address, is_write, int(rng.geometric(0.3))


def simulate_full_hierarchy(profile: BenchmarkProfile, system: str,
                            sim: SimulationConfig = SimulationConfig(),
                            hierarchy_config: Optional[HierarchyConfig] = None,
                            config: Optional[CompressoConfig] = None
                            ) -> FullHierarchyResult:
    """Run a core-level stream through caches into a memory system.

    ``sim.n_events`` counts *core accesses* here; the LLC filters them
    down to a (much smaller) memory stream.
    """
    workload = Workload(profile, scale=sim.scale, seed=sim.seed)
    controller = _build_controller(system, workload.pages, sim, config)
    if sim.warm_install:
        for page in range(workload.pages):
            controller.install_page(page, workload.page_lines(page))

    hierarchy = CacheHierarchy(hierarchy_config or HierarchyConfig())
    core = AnalyticCore(CoreConfig(), mlp=profile.mlp, cpi=profile.base_cpi)
    dram = DRAMSystem(n_channels=sim.dram_channels, timings=DRAMTimings())
    phase_rng = np.random.RandomState(sim.seed + 11)

    fills = writebacks = 0
    for index, (address, is_write, gap) in enumerate(
        _core_stream(profile, workload, sim.n_events, sim.seed)
    ):
        core.advance_instructions(gap)
        events = hierarchy.access(address, is_write)
        for event in events:
            page, line = divmod(event.address // 64, LINES_PER_PAGE)
            page %= workload.pages
            if event.is_writeback:
                writebacks += 1
                override = (LineClass.RANDOM
                            if phase_rng.rand() < profile.churn else None)
                data = workload.apply_writeback(page, line, override)
                result = controller.write_line(page, line, data)
                _issue(dram, core.now, result, stall_core=None)
            else:
                fills += 1
                result = controller.read_line(page, line)
                latency = _issue(dram, core.now, result, stall_core=core,
                                 serial_overlap=sim.serial_overlap)
                core.stall(latency + result.controller_cycles)

    # Drain dirty lines so the controller sees the full writeback load.
    for event in hierarchy.flush():
        page, line = divmod(event.address // 64, LINES_PER_PAGE)
        page %= workload.pages
        data = workload.apply_writeback(page, line, None)
        result = controller.write_line(page, line, data)
        _issue(dram, core.now, result, stall_core=None)
        writebacks += 1
    controller.flush_metadata()

    uncompressed = isinstance(controller, UncompressedController)
    return FullHierarchyResult(
        benchmark=profile.name,
        system=system,
        cycles=max(1, core.now),
        instructions=core.stats.instructions,
        core_accesses=sim.n_events,
        llc_fills=fills,
        llc_writebacks=writebacks,
        cache_stats=hierarchy.stats(),
        controller_stats=controller.stats,
        dram_stats=dram.stats,
        final_ratio=(1.0 if uncompressed
                     else max(1.0, controller.compression_ratio())),
    )
