"""4-core cycle-based simulation (paper §VI-E, Fig. 11a).

Four benchmarks run against one shared memory system: a single
compressed-memory controller (shared metadata cache — the pressure the
paper highlights for Mixes 4 and 10), a shared DDR4 system, and private
analytic cores.  Cores interleave in simulated time (the one furthest
behind steps next), mimicking zsim's always-under-contention
``syncedFastForward`` methodology (§VI-E).

The loop is factored into :class:`MulticoreRun` so it can be advanced
incrementally: the sharded driver (``repro.shard``, docs/SHARDING.md)
replays exactly this computation in worker processes segment by
segment, and sharing one stepping body is what makes the sharded
result *provably* byte-identical to the single-process one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from ..cpu.core import AnalyticCore, CoreConfig
from ..memory.dram import DRAMStats, DRAMSystem, DRAMTimings
from ..obs import NULL_TRACER, timeline_digest
from ..workloads.profiles import BenchmarkProfile
from ..workloads.tracegen import TraceGenerator, Workload
from .simulator import (
    EventEngine,
    SimulationConfig,
    _build_controller,
)


@dataclass
class MulticoreResult:
    """Outcome of one (mix, system) 4-core run."""

    mix: str
    system: str
    core_cycles: List[int]
    core_instructions: List[int]
    controller_stats: object
    dram_stats: DRAMStats
    ratio_timeline: List[float] = field(default_factory=list)
    #: ``None`` when the run produced no metadata traffic (e.g. the
    #: uncompressed baseline never probes the metadata cache).
    metadata_hit_rate: Optional[float] = None
    #: Windowed trace digest; only present when the run was traced.
    timeline: Optional[dict] = None

    def speedup_over(self, baseline: "MulticoreResult") -> float:
        """Geometric mean of per-core speedups (same per-core traces).

        Both sides are clamped to one cycle: a zero entry (a core that
        never stalled, or a degenerate baseline) would otherwise feed
        ``log(0)`` into the geometric mean and poison it with ``-inf``.
        """
        ratios = [
            max(1, b) / max(1, s)
            for b, s in zip(baseline.core_cycles, self.core_cycles)
        ]
        return float(np.exp(np.mean(np.log(ratios))))


class MulticoreRun:
    """One multicore simulation, advanced incrementally.

    Construction performs the warm install; :meth:`advance` steps the
    always-under-contention interleave up to a global step count;
    :meth:`finish` flushes metadata and assembles the
    :class:`MulticoreResult`.  ``simulate_multicore`` is the one-shot
    wrapper; the sharded workers (docs/SHARDING.md) call ``advance``
    per supervisor segment instead, so every step of both paths runs
    this class's single loop body.
    """

    def __init__(self, profiles: List[BenchmarkProfile], system: str,
                 sim: SimulationConfig = SimulationConfig(),
                 mix_name: str = "", tracer=None) -> None:
        if not profiles:
            raise ValueError("need at least one profile")
        self.sim = sim
        self.system = system
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.mix_name = mix_name or "+".join(p.name for p in profiles)
        self.workloads = [
            Workload(profile, scale=sim.scale, seed=sim.seed + index)
            for index, profile in enumerate(profiles)
        ]
        self.offsets: List[int] = []
        total_pages = 0
        for workload in self.workloads:
            self.offsets.append(total_pages)
            total_pages += workload.pages
        self.total_pages = total_pages

        self.controller = _build_controller(system, total_pages, sim,
                                            tracer=self.tracer)
        with self.tracer.phase("install"):
            if sim.warm_install:
                for workload, offset in zip(self.workloads, self.offsets):
                    for page in range(workload.pages):
                        self.controller.install_page(
                            offset + page, workload.page_lines(page))

        self.dram = DRAMSystem(n_channels=sim.dram_channels,
                               timings=DRAMTimings())
        self.cores = [
            AnalyticCore(CoreConfig(), mlp=profile.mlp, cpi=profile.base_cpi)
            for profile in profiles
        ]
        self.engines: List[EventEngine] = []
        self.iterators = []
        for workload, offset, core in zip(self.workloads, self.offsets,
                                          self.cores):
            trace = TraceGenerator(workload, seed=sim.seed)
            self.engines.append(EventEngine(self.controller, self.dram, core,
                                            workload, trace, sim,
                                            page_offset=offset))
            self.iterators.append(trace.events(sim.n_events))

        self.remaining = [sim.n_events] * len(profiles)
        self.progress_done = [0] * len(profiles)
        self.ratio_timeline: List[float] = []
        self.sample_every = max(1, sim.n_events * len(profiles)
                                // max(1, sim.ratio_samples))
        self.steps = 0

    @property
    def total_steps(self) -> int:
        """Global interleave steps in a complete run."""
        return self.sim.n_events * len(self.workloads)

    def advance(self, until: int,
                after_step: Optional[Callable[[int], None]] = None) -> int:
        """Step the interleave until ``self.steps == until`` (clamped).

        ``after_step``, when given, is called with the *global* page
        each event touched, after that step's bookkeeping — the shard
        workers use it to elide payload bytes of pages they do not own
        (docs/SHARDING.md).  Returns the new global step count.
        """
        sim = self.sim
        cores = self.cores
        # Always-under-contention interleave: the core furthest behind
        # in simulated time executes its next event.
        with self.tracer.phase("simulate"):
            while self.steps < until and any(self.remaining):
                core_index = min(
                    (i for i in range(len(cores)) if self.remaining[i]),
                    key=lambda i: cores[i].now,
                )
                event = next(self.iterators[core_index])
                progress = self.progress_done[core_index] / sim.n_events
                self.engines[core_index].step(event, progress)
                self.remaining[core_index] -= 1
                self.progress_done[core_index] += 1
                self.steps += 1
                if self.steps % self.sample_every == 0:
                    self.ratio_timeline.append(
                        max(1.0, self.controller.compression_ratio()))
                if after_step is not None:
                    after_step(self.offsets[core_index] + event.page)
        return self.steps

    def finish(self) -> MulticoreResult:
        """Flush metadata and assemble the result."""
        tracer = self.tracer
        with tracer.phase("flush"):
            self.controller.flush_metadata()
        return MulticoreResult(
            mix=self.mix_name,
            system=self.system,
            core_cycles=[core.now for core in self.cores],
            core_instructions=[core.stats.instructions
                               for core in self.cores],
            controller_stats=self.controller.stats,
            dram_stats=self.dram.stats,
            ratio_timeline=(self.ratio_timeline
                            or [self.controller.compression_ratio()]),
            metadata_hit_rate=self.controller.stats.metadata_hit_rate(),
            timeline=(
                timeline_digest(tracer.events, tracer.digest_window,
                                end_clock=tracer.clock)
                if tracer.enabled else None
            ),
        )


def simulate_multicore(profiles: List[BenchmarkProfile], system: str,
                       sim: SimulationConfig = SimulationConfig(),
                       mix_name: str = "", tracer=None) -> MulticoreResult:
    """Run a 4-benchmark mix on one system configuration.

    With ``sim.shards > 0`` the run is delegated to the supervised
    sharded driver (``repro.shard``, docs/SHARDING.md): N worker
    processes execute the same deterministic interleave with payload
    bytes partitioned by consistent hash, and the supervisor verifies
    their N-way byte-identical agreement before merging — the returned
    headline metrics equal this function's single-process output
    exactly.
    """
    if getattr(sim, "shards", 0):
        from ..shard import simulate_multicore_sharded
        return simulate_multicore_sharded(profiles, system, sim,
                                          mix_name=mix_name)
    run = MulticoreRun(profiles, system, sim, mix_name=mix_name,
                       tracer=tracer)
    run.advance(run.total_steps)
    return run.finish()
