"""4-core cycle-based simulation (paper §VI-E, Fig. 11a).

Four benchmarks run against one shared memory system: a single
compressed-memory controller (shared metadata cache — the pressure the
paper highlights for Mixes 4 and 10), a shared DDR4 system, and private
analytic cores.  Cores interleave in simulated time (the one furthest
behind steps next), mimicking zsim's always-under-contention
``syncedFastForward`` methodology (§VI-E).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..cpu.core import AnalyticCore, CoreConfig
from ..memory.dram import DRAMStats, DRAMSystem, DRAMTimings
from ..obs import NULL_TRACER, timeline_digest
from ..workloads.profiles import BenchmarkProfile
from ..workloads.tracegen import TraceGenerator, Workload
from .simulator import (
    EventEngine,
    SimulationConfig,
    _build_controller,
)


@dataclass
class MulticoreResult:
    """Outcome of one (mix, system) 4-core run."""

    mix: str
    system: str
    core_cycles: List[int]
    core_instructions: List[int]
    controller_stats: object
    dram_stats: DRAMStats
    ratio_timeline: List[float] = field(default_factory=list)
    #: ``None`` when the run produced no metadata traffic (e.g. the
    #: uncompressed baseline never probes the metadata cache).
    metadata_hit_rate: Optional[float] = None
    #: Windowed trace digest; only present when the run was traced.
    timeline: Optional[dict] = None

    def speedup_over(self, baseline: "MulticoreResult") -> float:
        """Geometric mean of per-core speedups (same per-core traces)."""
        ratios = [
            b / max(1, s)
            for b, s in zip(baseline.core_cycles, self.core_cycles)
        ]
        return float(np.exp(np.mean(np.log(ratios))))


def simulate_multicore(profiles: List[BenchmarkProfile], system: str,
                       sim: SimulationConfig = SimulationConfig(),
                       mix_name: str = "", tracer=None) -> MulticoreResult:
    """Run a 4-benchmark mix on one system configuration."""
    if not profiles:
        raise ValueError("need at least one profile")
    tracer = tracer if tracer is not None else NULL_TRACER
    workloads = [
        Workload(profile, scale=sim.scale, seed=sim.seed + index)
        for index, profile in enumerate(profiles)
    ]
    offsets = []
    total_pages = 0
    for workload in workloads:
        offsets.append(total_pages)
        total_pages += workload.pages

    controller = _build_controller(system, total_pages, sim, tracer=tracer)
    with tracer.phase("install"):
        if sim.warm_install:
            for workload, offset in zip(workloads, offsets):
                for page in range(workload.pages):
                    controller.install_page(offset + page,
                                            workload.page_lines(page))

    dram = DRAMSystem(n_channels=sim.dram_channels, timings=DRAMTimings())
    cores = [
        AnalyticCore(CoreConfig(), mlp=profile.mlp, cpi=profile.base_cpi)
        for profile in profiles
    ]
    engines = []
    iterators = []
    for workload, offset, core in zip(workloads, offsets, cores):
        trace = TraceGenerator(workload, seed=sim.seed)
        engines.append(EventEngine(controller, dram, core, workload,
                                   trace, sim, page_offset=offset))
        iterators.append(trace.events(sim.n_events))

    remaining = [sim.n_events] * len(profiles)
    progress_done = [0] * len(profiles)
    ratio_timeline: List[float] = []
    sample_every = max(1, sim.n_events * len(profiles)
                       // max(1, sim.ratio_samples))
    steps = 0
    # Always-under-contention interleave: the core furthest behind in
    # simulated time executes its next event.
    with tracer.phase("simulate"):
        while any(remaining):
            core_index = min(
                (i for i in range(len(cores)) if remaining[i]),
                key=lambda i: cores[i].now,
            )
            event = next(iterators[core_index])
            progress = progress_done[core_index] / sim.n_events
            engines[core_index].step(event, progress)
            remaining[core_index] -= 1
            progress_done[core_index] += 1
            steps += 1
            if steps % sample_every == 0:
                ratio_timeline.append(max(1.0, controller.compression_ratio()))

    with tracer.phase("flush"):
        controller.flush_metadata()
    return MulticoreResult(
        mix=mix_name or "+".join(p.name for p in profiles),
        system=system,
        core_cycles=[core.now for core in cores],
        core_instructions=[core.stats.instructions for core in cores],
        controller_stats=controller.stats,
        dram_stats=dram.stats,
        ratio_timeline=ratio_timeline or [controller.compression_ratio()],
        metadata_hit_rate=controller.stats.metadata_hit_rate(),
        timeline=(
            timeline_digest(tracer.events, tracer.digest_window,
                            end_clock=tracer.clock)
            if tracer.enabled else None
        ),
    )
