"""Simulation drivers: cycle-based, 4-core, capacity, overall (DESIGN.md)."""

from .capacity import (
    CapacityConfig,
    CapacityResult,
    capacity_impact,
    multicore_capacity_impact,
)
from .compresspoints import (
    IntervalProfile,
    PointSelection,
    kmeans,
    profile_intervals,
    representativeness_error,
    select_points,
)
from .configs import (
    OS_PAGE_FAULT_PENALTY_CYCLES,
    SYSTEM_ORDER,
    chunk_vs_variable_configs,
    optimization_ladder,
    system_config,
)
from .full_hierarchy import FullHierarchyResult, simulate_full_hierarchy
from .multicore import MulticoreResult, simulate_multicore
from .overall import OverallResult, combine
from .simulator import (
    SimulationConfig,
    SimulationResult,
    UncompressedController,
    run_benchmark_systems,
    simulate,
)

__all__ = [
    "CapacityConfig",
    "CapacityResult",
    "FullHierarchyResult",
    "IntervalProfile",
    "MulticoreResult",
    "OS_PAGE_FAULT_PENALTY_CYCLES",
    "OverallResult",
    "PointSelection",
    "SYSTEM_ORDER",
    "SimulationConfig",
    "SimulationResult",
    "UncompressedController",
    "capacity_impact",
    "chunk_vs_variable_configs",
    "combine",
    "kmeans",
    "multicore_capacity_impact",
    "optimization_ladder",
    "profile_intervals",
    "representativeness_error",
    "run_benchmark_systems",
    "select_points",
    "simulate",
    "simulate_full_hierarchy",
    "simulate_multicore",
    "system_config",
]
