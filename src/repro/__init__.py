"""Pure-Python reproduction of "Compresso: Pragmatic Main Memory
Compression" (Choukse, Erez, Alameldeen — MICRO 2018).

Subpackages: :mod:`repro.compression` (BPC/BDI/FPC/C-Pack/LZ),
:mod:`repro.core` (the Compresso controller), :mod:`repro.memory`,
:mod:`repro.cache`, :mod:`repro.cpu`, :mod:`repro.osmodel`,
:mod:`repro.workloads`, :mod:`repro.simulation`, :mod:`repro.energy`,
:mod:`repro.analysis` (paper-figure runners) and :mod:`repro.runner`
(the parallel experiment executor, result cache and run journal).

README.md is the front door; DESIGN.md maps each subsystem to the
paper's sections.
"""
