"""Memory-model sanitizer: shadow-state invariant checking.

Compresso's correctness rests on layout invariants the paper states
but code can silently violate.  The sanitizer re-derives every page's
layout from its metadata after each controller operation and verifies:

* **no-overlap** — packed line slots never overlap each other, and the
  inflation room sits strictly above the packed data (§II-C, §III);
* **bounds / bins** — every slot offset and size lies inside the page's
  allocation, and every slot size is one of the configured line bins
  (0/8/32/64 B for Compresso, §IV-B1);
* **layout-desync** — the controller's cached :class:`PageLayout`
  matches the layout re-derived from metadata bit fields (line bins +
  inflation pointers), so metadata and working state never drift;
* **inflation room** — pointer count within the 17-pointer budget, no
  duplicate pointers, and the room inside the allocation (§III);
* **allocator ownership** — the set of 512 B chunks (or buddy regions)
  referenced by page metadata is exactly the set the allocator has
  allocated: a chunk referenced but free is a double-free in waiting,
  an allocated chunk no page references is a leak (§II-D);
* **data-desync** — each line's recorded ideal compressed size matches
  what the shadow payload actually compresses to, so bit flips in line
  data surface as a size disagreement (docs/ROBUSTNESS.md);
* **mdcache-desync** — every resident metadata-cache entry indexes its
  own page and its half/full shape matches the page's compressed state
  (§IV-B5);
* **alloc-books** — the allocator's own free/allocated books are
  coherent (no duplicate free-list entries, no chunk simultaneously
  free and allocated); checked on full sweeps only, since the free
  list is large.

Violations are recorded as :class:`InvariantViolation` objects and
reported through the observability tracer as ``sanitizer_violation``
events; pass ``raise_on_violation=True`` to fail fast in tests.

Enable via ``CompressedMemoryController(..., sanitize=True)``,
``SimulationConfig(sanitize=True)``, or ``python -m repro.analysis run
--sanitize`` (the run journal then records the sanitized run).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..obs.tracer import NULL_TRACER


class SanitizerError(AssertionError):
    """Raised on the first violation when ``raise_on_violation`` is set."""


@dataclass(frozen=True)
class InvariantViolation:
    """One detected invariant violation."""

    invariant: str               # e.g. "line-overlap", "alloc-leak"
    page: Optional[int]          # OSPA page, when page-scoped
    detail: str

    def __str__(self) -> str:
        where = f"page {self.page}" if self.page is not None else "global"
        return f"[{self.invariant}] {where}: {self.detail}"


class MemorySanitizer:
    """Shadow-state checker for a ``CompressedMemoryController``.

    The sanitizer holds no authoritative state of its own: every check
    re-derives expectations from page metadata and compares them with
    the controller's working state and the allocator's books, so a
    corruption on either side surfaces as a disagreement.
    """

    def __init__(self, config, tracer=NULL_TRACER,
                 raise_on_violation: bool = False) -> None:
        self.config = config
        self.tracer = tracer
        self.raise_on_violation = raise_on_violation
        self.violations: List[InvariantViolation] = []
        self.checks = 0

    # -- entry points -----------------------------------------------------

    def after_op(self, controller, page: Optional[int] = None) -> None:
        """Verify the touched page plus global allocator accounting."""
        self.checks += 1
        if page is not None:
            state = controller.pages.get(page)
            if state is not None:
                self.check_page(controller, page, state)
        self.check_allocator(controller)
        self.check_metadata_cache(controller)

    def check_all(self, controller) -> None:
        """Full sweep: every resident page, then the allocator books."""
        self.checks += 1
        for page, state in controller.pages.items():
            self.check_page(controller, page, state)
        self.check_allocator(controller)
        self.check_metadata_cache(controller)
        self.check_allocator_books(controller)

    @property
    def violation_count(self) -> int:
        return len(self.violations)

    # -- page-scoped invariants -------------------------------------------

    def check_page(self, controller, page: int, state) -> None:
        config = self.config
        meta = state.meta
        if not meta.valid or meta.zero:
            if meta.size_chunks or meta.mpfns or state.region_base is not None:
                self._report("zero-page-storage", page,
                             f"invalid/zero page holds storage "
                             f"(size_chunks={meta.size_chunks})")
            return

        allocation = meta.size_chunks * config.chunk_size
        self._check_metadata(controller, page, state, allocation)
        self._check_data(controller, page, state)
        if meta.compressed:
            self._check_layout(controller, page, state, allocation)
        else:
            self._check_uncompressed(page, state)

    def _check_data(self, controller, page: int, state) -> None:
        """Shadow payload vs recorded sizes (data-desync).

        Every line's ``ideal_sizes`` entry was computed from the line
        data when it was written; recomputing it must agree.  A bit
        flip in the shadow payload (or a corrupted size record) shows
        up as a disagreement.  Flips that leave the compressed size
        identical are outside this fault model (they would need ECC
        modelling, docs/ROBUSTNESS.md).
        """
        sizes = state.ideal_sizes
        for line, data in enumerate(state.data):
            expected = 0 if data is None else controller._sizes.size_bytes(data)
            if sizes[line] != expected:
                self._report("data-desync", page,
                             f"line {line} recorded size {sizes[line]} but "
                             f"its data compresses to {expected}")

    def _check_metadata(self, controller, page: int, state,
                        allocation: int) -> None:
        meta = state.meta
        config = self.config
        if meta.size_chunks < 0 or meta.size_chunks > config.max_chunks_per_page:
            self._report("metadata-desync", page,
                         f"size_chunks out of range: {meta.size_chunks}")
        if len(meta.line_bins) != config.lines_per_page:
            self._report("metadata-desync", page,
                         f"{len(meta.line_bins)} line bins for "
                         f"{config.lines_per_page} lines")
        n_bins = len(config.line_bins)
        bad_bins = [b for b in meta.line_bins if b < 0 or b >= n_bins]
        if bad_bins:
            self._report("metadata-desync", page,
                         f"line bin index out of range: {bad_bins[:4]}")
        if config.allocation == "chunks":
            if len(meta.mpfns) != meta.size_chunks:
                self._report("metadata-desync", page,
                             f"{len(meta.mpfns)} MPFNs for "
                             f"{meta.size_chunks} chunks")
            total = controller.memory.allocator.total_chunks
            for mpfn in meta.mpfns:
                if mpfn < 0 or mpfn >= total:
                    self._report("metadata-desync", page,
                                 f"MPFN {mpfn} outside machine memory "
                                 f"({total} chunks)")
        else:
            if meta.size_chunks and state.region_base is None:
                self._report("metadata-desync", page,
                             "allocated page has no region base")

        inflated = meta.inflated_lines
        if len(inflated) > config.max_inflation_pointers:
            self._report("inflation-room", page,
                         f"{len(inflated)} inflated lines exceed "
                         f"{config.max_inflation_pointers} pointers (§III)")
        if len(set(inflated)) != len(inflated):
            self._report("inflation-room", page,
                         f"duplicate inflation pointers: {inflated}")
        out = [i for i in inflated
               if i < 0 or i >= config.lines_per_page]
        if out:
            self._report("inflation-room", page,
                         f"inflation pointer to nonexistent line: {out}")

    def _check_layout(self, controller, page: int, state,
                      allocation: int) -> None:
        packer = controller.packer
        meta = state.meta
        try:
            derived = packer.layout_from_bins(meta.line_bins,
                                              meta.inflated_lines)
        except (ValueError, IndexError) as exc:
            self._report("metadata-desync", page,
                         f"metadata does not describe a layout: {exc}")
            return

        cached = state.layout
        if cached is not None and (
            cached.slot_offsets != derived.slot_offsets
            or cached.slot_sizes != derived.slot_sizes
            or tuple(cached.inflated_lines) != tuple(derived.inflated_lines)
        ):
            self._report("layout-desync", page,
                         "cached layout disagrees with metadata-derived "
                         "layout (bins/pointers drifted)")
        layout = cached if cached is not None else derived

        # Slot sizes must be legal bins; offsets/extent inside the
        # allocation (§IV-B1 bins, §II-D allocation).
        legal = set(packer.line_bins)
        slots = []
        for line, (offset, size) in enumerate(
                zip(layout.slot_offsets, layout.slot_sizes)):
            if size not in legal:
                self._report("bin-alignment", page,
                             f"line {line} slot size {size} is not one of "
                             f"the configured bins {sorted(legal)}")
            if size == 0 or line in layout.inflated_lines:
                continue
            if offset < 0 or offset + size > allocation:
                self._report("offset-bounds", page,
                             f"line {line} slot [{offset}, {offset + size}) "
                             f"outside the {allocation} B allocation")
            slots.append((offset, size, line))

        slots.sort()
        for (off_a, size_a, line_a), (off_b, _size_b, line_b) in zip(
                slots, slots[1:]):
            if off_a + size_a > off_b:
                self._report("line-overlap", page,
                             f"lines {line_a} and {line_b} overlap: "
                             f"[{off_a}, {off_a + size_a}) vs offset {off_b}")

        # Inflation room: above the packed data, inside the allocation,
        # 64 B-aligned so inflated lines never split (§III).
        if layout.inflated_lines:
            base = layout.inflation_base
            end = base + layout.inflation_bytes
            if base % 64:
                self._report("inflation-room", page,
                             f"inflation room base {base} not 64 B-aligned")
            if base < layout.data_bytes:
                self._report("inflation-room", page,
                             f"inflation room (base {base}) overlaps packed "
                             f"data ({layout.data_bytes} B)")
            if end > allocation:
                self._report("inflation-room", page,
                             f"inflation room [{base}, {end}) outside the "
                             f"{allocation} B allocation")
        elif layout.total_bytes > allocation:
            self._report("offset-bounds", page,
                         f"packed data ({layout.total_bytes} B) exceeds the "
                         f"{allocation} B allocation")

    def _check_uncompressed(self, page: int, state) -> None:
        config = self.config
        meta = state.meta
        if meta.size_chunks != config.max_chunks_per_page:
            self._report("metadata-desync", page,
                         f"uncompressed page has {meta.size_chunks} chunks, "
                         f"expected {config.max_chunks_per_page}")
        raw_bin = len(config.line_bins) - 1
        if any(b != raw_bin for b in meta.line_bins):
            self._report("metadata-desync", page,
                         "uncompressed page has non-raw line bins")
        if meta.inflated_lines:
            self._report("inflation-room", page,
                         "uncompressed page has inflation pointers")

    # -- allocator ownership (§II-D) --------------------------------------

    def check_allocator(self, controller) -> None:
        if self.config.allocation == "chunks":
            self._check_chunk_ownership(controller)
        else:
            self._check_region_ownership(controller)

    def _check_chunk_ownership(self, controller) -> None:
        owner: Dict[int, int] = {}
        for page, state in controller.pages.items():
            for chunk in state.meta.mpfns:
                if chunk in owner:
                    self._report("alloc-ownership", page,
                                 f"chunk {chunk} owned by both page "
                                 f"{owner[chunk]} and page {page}")
                else:
                    owner[chunk] = page
        allocated = controller.memory.allocator.owned_chunks()
        for chunk, page in owner.items():
            if chunk not in allocated:
                self._report("alloc-double-free", page,
                             f"page {page} references chunk {chunk} the "
                             f"allocator has already freed")
        leaked = allocated - set(owner)
        if leaked:
            self._report("alloc-leak", None,
                         f"{len(leaked)} chunk(s) allocated but referenced "
                         f"by no page, e.g. {sorted(leaked)[:4]}")

    def _check_region_ownership(self, controller) -> None:
        owner: Dict[int, int] = {}
        for page, state in controller.pages.items():
            base = state.region_base
            if base is None:
                continue
            if base in owner:
                self._report("alloc-ownership", page,
                             f"region {base} owned by both page "
                             f"{owner[base]} and page {page}")
            else:
                owner[base] = page
        regions = controller.memory.allocator.owned_regions()
        chunk = self.config.chunk_size
        for base, page in owner.items():
            if base not in regions:
                self._report("alloc-double-free", page,
                             f"page {page} references region {base} the "
                             f"allocator has already freed")
            else:
                state = controller.pages[page]
                need = state.meta.size_chunks * chunk
                if regions[base] < need:
                    self._report("alloc-ownership", page,
                                 f"region {base} holds {regions[base]} B but "
                                 f"page {page} needs {need} B")
        leaked = set(regions) - set(owner)
        if leaked:
            self._report("alloc-leak", None,
                         f"{len(leaked)} region(s) allocated but referenced "
                         f"by no page, e.g. {sorted(leaked)[:4]}")

    # -- metadata cache (§IV-B5) -------------------------------------------

    def check_metadata_cache(self, controller) -> None:
        """Resident metadata-cache entries mirror page state."""
        cache = controller.metadata_cache
        for key, entry in cache.entry_items():
            if entry.page != key:
                self._report("mdcache-desync", key,
                             f"entry indexed by page {key} claims page "
                             f"{entry.page}")
                continue
            state = controller.pages.get(key)
            if state is None:
                self._report("mdcache-desync", key,
                             "resident entry for a page with no state")
                continue
            expected = state.meta.is_uncompressed and cache.half_entries
            if entry.half != expected:
                self._report("mdcache-desync", key,
                             f"half={entry.half} entry but the page has "
                             f"is_uncompressed={state.meta.is_uncompressed}")

    # -- allocator self-books (docs/ROBUSTNESS.md) -------------------------

    def check_allocator_books(self, controller) -> None:
        """The allocator's own free/allocated books are coherent.

        Walks the whole free list, so this runs on full sweeps
        (:meth:`check_all`, flushes, scrubs) rather than per-op.
        """
        for problem in controller.memory.allocator.check_books():
            self._report("alloc-books", None, problem)

    # -- reporting --------------------------------------------------------

    def _report(self, invariant: str, page: Optional[int],
                detail: str) -> None:
        violation = InvariantViolation(invariant, page, detail)
        self.violations.append(violation)
        self.tracer.emit("sanitizer_violation", page=page,
                         invariant=invariant, detail=detail)
        if self.raise_on_violation:
            raise SanitizerError(str(violation))
