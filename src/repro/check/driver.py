"""reprolint driver: file discovery, parallel fan-out, reporting.

``run_lint`` walks the tree, runs every file rule against every
matching Python file (optionally across a ``multiprocessing`` pool —
files are independent, so the fan-out is embarrassingly parallel),
runs project rules once in the parent, applies inline suppressions,
and returns a :class:`LintReport`.

``lint_file`` is the module-level worker (picklable by reference, like
the experiment runner's work units).
"""

from __future__ import annotations

import multiprocessing
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from .findings import Finding, format_finding
from .rules import ModuleSource, ProjectRule, all_rules, get_rule

#: Repo-relative directories lint walks for Python files by default.
DEFAULT_LINT_DIRS = ("src/repro", "scripts")


def repo_root(start: Optional[Path] = None) -> Path:
    """The repository root: the nearest ancestor holding ``src/repro``."""
    here = Path(start) if start is not None else Path(__file__).resolve()
    for candidate in (here, *here.parents):
        if (candidate / "src" / "repro").is_dir():
            return candidate
    raise FileNotFoundError("cannot locate the repo root (src/repro)")


def discover_files(root: Path,
                   dirs: Sequence[str] = DEFAULT_LINT_DIRS) -> List[Path]:
    """Python files under the lint directories, sorted for determinism."""
    files: List[Path] = []
    for directory in dirs:
        base = root / directory
        if base.is_dir():
            files.extend(sorted(base.rglob("*.py")))
    return files


class LintReport:
    """Outcome of one lint run."""

    def __init__(self, findings: Sequence[Finding], suppressed: int,
                 n_files: int, n_rules: int) -> None:
        self.findings = sorted(findings)
        self.suppressed = suppressed
        self.n_files = n_files
        self.n_rules = n_rules

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def ok(self) -> bool:
        """True when no error-severity finding survived suppression."""
        return not self.errors

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def render(self) -> str:
        lines = [format_finding(finding) for finding in self.findings]
        status = "OK" if self.ok else f"{len(self.errors)} error(s)"
        suffix = f", {self.suppressed} suppressed" if self.suppressed else ""
        lines.append(
            f"reprolint: {status} ({self.n_files} files, "
            f"{self.n_rules} rules{suffix})")
        return "\n".join(lines)


def lint_file(path: str, root: str,
              rule_ids: Sequence[str]) -> Tuple[List[Finding], int]:
    """Run the file-scoped rules against one file.

    Returns (kept findings, suppressed count).  Module-level so it can
    cross the multiprocessing boundary by reference.
    """
    module = ModuleSource(Path(path), Path(root))
    kept: List[Finding] = []
    suppressed = 0
    for rule_id in rule_ids:
        rule = get_rule(rule_id)
        if rule.scope != "file" or not rule.applies_to(module):
            continue
        for finding in rule.check(module):
            if module.suppressed(finding.line, finding.rule):
                suppressed += 1
            else:
                kept.append(finding)
    return kept, suppressed


def run_lint(root: Optional[Path] = None,
             files: Optional[Sequence[Path]] = None,
             rules: Optional[Sequence[str]] = None,
             jobs: int = 1) -> LintReport:
    """Lint the tree (or an explicit file list) and return the report."""
    root = repo_root() if root is None else Path(root)
    selected = ([get_rule(rule_id) for rule_id in rules]
                if rules is not None else all_rules())
    file_rule_ids = [r.id for r in selected if r.scope == "file"]
    project_rules = [r for r in selected if isinstance(r, ProjectRule)]
    paths = list(files) if files is not None else discover_files(root)

    findings: List[Finding] = []
    suppressed = 0
    payloads = [(str(path), str(root), file_rule_ids) for path in paths]
    if jobs > 1 and len(payloads) > 1:
        with multiprocessing.Pool(processes=min(jobs, len(payloads))) as pool:
            results = pool.starmap(lint_file, payloads)
    else:
        results = [lint_file(*payload) for payload in payloads]
    for kept, dropped in results:
        findings.extend(kept)
        suppressed += dropped

    for rule in project_rules:
        findings.extend(rule.check_project(root))

    return LintReport(findings, suppressed, n_files=len(paths),
                      n_rules=len(selected))
