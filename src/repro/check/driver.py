"""reprolint driver: file discovery, parallel fan-out, reporting.

``run_lint`` walks the tree, runs every file rule against every
matching Python file (optionally across a ``multiprocessing`` pool —
files are independent, so the fan-out is embarrassingly parallel),
runs project rules once in the parent, applies inline suppressions,
and returns a :class:`LintReport`.

``deep=True`` additionally builds one :class:`~repro.check.flow.FlowProgram`
over the whole tree and runs the flow-scoped rules against it
(docs/FLOWCHECK.md).  Flow findings honor the same inline-suppression
syntax, plus a checked-in baseline file (``.reprolint-baseline.json``)
for grandfathered findings.

The parent also audits the suppressions themselves: a ``disable=``
comment (or ``# flowcheck:`` annotation) that suppresses nothing
yields a ``stale-suppression`` warning, so waivers cannot rot.

``lint_file`` is the module-level worker (picklable by reference, like
the experiment runner's work units).  A file that fails to parse
produces a structured ``syntax-error`` finding, never a crashed
worker.
"""

from __future__ import annotations

import json
import multiprocessing
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .findings import Finding, format_finding
from .rules import ModuleSource, ProjectRule, all_rules, get_rule

#: Repo-relative directories lint walks for Python files by default.
DEFAULT_LINT_DIRS = ("src/repro", "scripts")

#: Repo-relative path of the grandfathered-findings baseline.
BASELINE_NAME = ".reprolint-baseline.json"

#: Pseudo-rule ids minted by the driver itself (not in the registry).
SYNTAX_RULE = "syntax-error"
STALE_RULE = "stale-suppression"
STALE_BASELINE_RULE = "stale-baseline"


def repo_root(start: Optional[Path] = None) -> Path:
    """The repository root: the nearest ancestor holding ``src/repro``."""
    here = Path(start) if start is not None else Path(__file__).resolve()
    for candidate in (here, *here.parents):
        if (candidate / "src" / "repro").is_dir():
            return candidate
    raise FileNotFoundError("cannot locate the repo root (src/repro)")


def discover_files(root: Path,
                   dirs: Sequence[str] = DEFAULT_LINT_DIRS) -> List[Path]:
    """Python files under the lint directories, sorted for determinism."""
    files: List[Path] = []
    for directory in dirs:
        base = root / directory
        if base.is_dir():
            files.extend(sorted(base.rglob("*.py")))
    return files


class LintReport:
    """Outcome of one lint run."""

    def __init__(self, findings: Sequence[Finding], suppressed: int,
                 n_files: int, n_rules: int, baselined: int = 0) -> None:
        self.findings = sorted(findings)
        self.suppressed = suppressed
        self.n_files = n_files
        self.n_rules = n_rules
        self.baselined = baselined

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def ok(self) -> bool:
        """True when no error-severity finding survived suppression."""
        return not self.errors

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def render(self) -> str:
        lines = [format_finding(finding) for finding in self.findings]
        status = "OK" if self.ok else f"{len(self.errors)} error(s)"
        suffix = f", {self.suppressed} suppressed" if self.suppressed else ""
        if self.baselined:
            suffix += f", {self.baselined} baselined"
        lines.append(
            f"reprolint: {status} ({self.n_files} files, "
            f"{self.n_rules} rules{suffix})")
        return "\n".join(lines)


@dataclass
class FileResult:
    """Everything one worker learned about one file."""

    relpath: str
    kept: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    #: (line, rule ids, standalone?) for every ``disable=`` comment.
    comments: List[Tuple[int, Tuple[str, ...], bool]] = \
        field(default_factory=list)


def lint_file_detail(path: str, root: str,
                     rule_ids: Sequence[str]) -> FileResult:
    """Run the file-scoped rules against one file (worker function).

    Module-level so it can cross the multiprocessing boundary by
    reference.  A syntax error becomes a structured finding.
    """
    module = ModuleSource(Path(path), Path(root))
    result = FileResult(relpath=module.relpath)
    result.comments = [(c.line, c.ids, c.standalone)
                       for c in module.suppression_comments]
    try:
        module.tree
    except SyntaxError as exc:
        line = exc.lineno or 1
        finding = Finding(path=module.relpath, line=line, rule=SYNTAX_RULE,
                          severity="error",
                          message=f"file does not parse: {exc.msg}")
        if module.suppressed(line, SYNTAX_RULE):
            result.suppressed.append(finding)
        else:
            result.kept.append(finding)
        return result
    for rule_id in rule_ids:
        rule = get_rule(rule_id)
        if rule.scope != "file" or not rule.applies_to(module):
            continue
        for finding in rule.check(module):
            if module.suppressed(finding.line, finding.rule):
                result.suppressed.append(finding)
            else:
                result.kept.append(finding)
    return result


def lint_file(path: str, root: str,
              rule_ids: Sequence[str]) -> Tuple[List[Finding], int]:
    """Compatibility wrapper: (kept findings, suppressed count)."""
    result = lint_file_detail(path, root, rule_ids)
    return result.kept, len(result.suppressed)


def load_baseline(path: Path) -> List[dict]:
    """Entries of a baseline file; [] when the file does not exist."""
    if not Path(path).is_file():
        return []
    doc = json.loads(Path(path).read_text())
    return list(doc.get("findings", ()))


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Write the grandfathered-findings baseline for ``findings``."""
    entries = [{"path": f.path, "rule": f.rule, "message": f.message}
               for f in sorted(findings)]
    doc = {"schema": "reprolint-baseline/1", "findings": entries}
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def _baseline_key(finding: Finding) -> Tuple[str, str, str]:
    # line numbers shift on every edit; path+rule+message is stable
    return (finding.path, finding.rule, finding.message)


def _apply_baseline(findings: List[Finding], entries: List[dict],
                    warn_stale: bool) -> Tuple[List[Finding], int,
                                               List[Finding]]:
    """(kept, baselined count, stale-baseline warnings)."""
    allowed: Dict[Tuple[str, str, str], int] = {}
    for entry in entries:
        key = (entry.get("path", ""), entry.get("rule", ""),
               entry.get("message", ""))
        allowed[key] = allowed.get(key, 0) + 1
    kept: List[Finding] = []
    baselined = 0
    for finding in findings:
        key = _baseline_key(finding)
        if allowed.get(key, 0) > 0:
            allowed[key] -= 1
            baselined += 1
        else:
            kept.append(finding)
    warnings: List[Finding] = []
    if warn_stale:
        for (path, rule, message), count in sorted(allowed.items()):
            if count > 0:
                warnings.append(Finding(
                    path=BASELINE_NAME, line=1, rule=STALE_BASELINE_RULE,
                    severity="warning",
                    message=(f"baseline entry matches no current finding "
                             f"({path}: [{rule}] {message[:60]}…); "
                             f"regenerate with lint --deep "
                             f"--write-baseline")))
    return kept, baselined, warnings


def _stale_suppression_findings(
        results: Sequence[FileResult],
        candidate_ids: Set[str],
        extra_suppressed: Dict[str, List[Finding]]) -> List[Finding]:
    """Warn for every ``disable=`` comment that suppressed nothing."""
    out: List[Finding] = []
    for result in results:
        pool = list(result.suppressed)
        pool.extend(extra_suppressed.get(result.relpath, ()))
        for line, ids, standalone in result.comments:
            covered = {line, line + 1} if standalone else {line}
            for rule_id in ids:
                if rule_id == "all":
                    used = any(f.line in covered for f in pool)
                elif rule_id in candidate_ids:
                    used = any(f.line in covered and f.rule == rule_id
                               for f in pool)
                else:
                    continue  # rule not part of this run: no verdict
                if not used:
                    out.append(Finding(
                        path=result.relpath, line=line, rule=STALE_RULE,
                        severity="warning",
                        message=(f"suppression 'disable={rule_id}' "
                                 f"matches no finding — remove it or fix "
                                 f"the rule id")))
    return out


def run_lint(root: Optional[Path] = None,
             files: Optional[Sequence[Path]] = None,
             rules: Optional[Sequence[str]] = None,
             jobs: int = 1,
             deep: bool = False,
             use_baseline: bool = True,
             dump_callgraph: Optional[Path] = None) -> LintReport:
    """Lint the tree (or an explicit file list) and return the report.

    ``deep=True`` adds the whole-program flow rules; ``rules`` naming a
    flow rule id explicitly also enables the flow pass.
    """
    root = repo_root() if root is None else Path(root)
    selected = ([get_rule(rule_id) for rule_id in rules]
                if rules is not None else all_rules())
    file_rule_ids = [r.id for r in selected if r.scope == "file"]
    project_rules = [r for r in selected if isinstance(r, ProjectRule)]
    flow_rules = [r for r in selected if r.scope == "flow"]
    if rules is None and not deep:
        flow_rules = []
    full_run = rules is None
    paths = list(files) if files is not None else discover_files(root)

    payloads = [(str(path), str(root), file_rule_ids) for path in paths]
    if jobs > 1 and len(payloads) > 1:
        with multiprocessing.Pool(processes=min(jobs, len(payloads))) as pool:
            results = pool.starmap(lint_file_detail, payloads)
    else:
        results = [lint_file_detail(*payload) for payload in payloads]

    findings: List[Finding] = []
    suppressed = 0
    for result in results:
        findings.extend(result.kept)
        suppressed += len(result.suppressed)

    for rule in project_rules:
        findings.extend(rule.check_project(root))

    baselined = 0
    flow_suppressed: Dict[str, List[Finding]] = {}
    if flow_rules or dump_callgraph is not None:
        from .flow import FlowProgram
        program = FlowProgram(root, discover_files(root))
        flow_findings: List[Finding] = []
        for rule in flow_rules:
            flow_findings.extend(rule.check_flow(program))
        sources: Dict[str, Optional[ModuleSource]] = {}
        kept_flow: List[Finding] = []
        for finding in sorted(flow_findings):
            module = _module_for(finding.path, root, sources)
            if module is not None and module.suppressed(finding.line,
                                                        finding.rule):
                flow_suppressed.setdefault(finding.path, []).append(finding)
                suppressed += 1
            else:
                kept_flow.append(finding)
        if use_baseline:
            entries = load_baseline(root / BASELINE_NAME)
            kept_flow, baselined, stale = _apply_baseline(
                kept_flow, entries, warn_stale=full_run and deep)
            findings.extend(stale)
        findings.extend(kept_flow)
        if full_run:
            for relpath, note in program.unconsumed_annotations():
                findings.append(Finding(
                    path=relpath, line=note.line, rule=STALE_RULE,
                    severity="warning",
                    message=(f"flowcheck annotation "
                             f"'{note.kind}({note.reason})' suppresses "
                             f"nothing — remove it or move it next to "
                             f"the code it excuses")))
        if dump_callgraph is not None:
            doc = program.dump_callgraph()
            Path(dump_callgraph).write_text(
                json.dumps(doc, indent=2, sort_keys=True) + "\n")

    if full_run:
        candidate_ids = set(file_rule_ids) | {SYNTAX_RULE}
        candidate_ids.update(r.id for r in flow_rules)
        findings.extend(_stale_suppression_findings(
            results, candidate_ids, flow_suppressed))

    return LintReport(findings, suppressed, n_files=len(paths),
                      n_rules=len(selected), baselined=baselined)


def _module_for(relpath: str, root: Path,
                cache: Dict[str, Optional[ModuleSource]]) -> \
        Optional[ModuleSource]:
    """ModuleSource for a repo-relative path, cached, None if unreadable."""
    module = cache.get(relpath)
    if module is not None:
        return module
    path = root / relpath
    if not path.is_file():
        return None
    module = ModuleSource(path, root)
    cache[relpath] = module
    return module
