"""Rule base classes, the rule registry, and per-file source context.

A rule is a small class with a unique ``id``; the :func:`register`
decorator adds it to the process-wide registry the driver draws from.
Two scopes exist:

* :class:`Rule` (``scope = "file"``) — called once per Python file
  with a :class:`ModuleSource` (text, lines, parsed AST, suppression
  map) and yields :class:`~repro.check.findings.Finding` objects;
* :class:`ProjectRule` (``scope = "project"``) — called once per lint
  run with the repo root (markdown link checking, cross-file
  consistency).

Suppressions are inline comments::

    problem_line = ...  # reprolint: disable=mutable-default
    # reprolint: disable=hot-path-wallclock   (suppresses the next line)

A finding is dropped when its line — or the standalone comment line
directly above it — carries a ``disable=`` listing its rule id (or
``all``).  Suppressed findings are counted, never silently lost.
"""

from __future__ import annotations

import abc
import ast
import re
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Set, Type

from .findings import Finding

_SUPPRESS = re.compile(r"#\s*reprolint:\s*disable=([\w,\-]+)")


class SuppressionComment:
    """One ``# reprolint: disable=...`` comment, located and parsed."""

    __slots__ = ("line", "ids", "standalone")

    def __init__(self, line: int, ids, standalone: bool) -> None:
        self.line = line
        self.ids = tuple(ids)
        self.standalone = bool(standalone)

    def covered_lines(self):
        """Lines this comment suppresses findings on."""
        return (self.line, self.line + 1) if self.standalone \
            else (self.line,)


class ModuleSource:
    """One Python file prepared for linting: text, lines, AST, suppressions."""

    def __init__(self, path: Path, root: Path) -> None:
        self.path = Path(path)
        self.root = Path(root)
        self.relpath = self.path.relative_to(self.root).as_posix()
        self.text = self.path.read_text()
        self.lines = self.text.splitlines()
        self._tree: Optional[ast.Module] = None
        self._suppressions: Optional[Dict[int, Set[str]]] = None
        self._comments: Optional[List["SuppressionComment"]] = None

    @property
    def tree(self) -> ast.Module:
        """The parsed AST (parsed once, shared by every rule)."""
        if self._tree is None:
            self._tree = ast.parse(self.text, filename=str(self.path))
        return self._tree

    @property
    def suppression_comments(self) -> List["SuppressionComment"]:
        """Every ``disable=`` comment, from real COMMENT tokens only —
        a comment-shaped string inside a docstring does not count."""
        if self._comments is None:
            from .flow.symbols import comment_tokens
            out: List[SuppressionComment] = []
            for number, comment, standalone in comment_tokens(self.text):
                match = _SUPPRESS.search(comment)
                if not match:
                    continue
                ids = tuple(sorted({part.strip()
                                    for part in match.group(1).split(",")
                                    if part.strip()}))
                if ids:
                    out.append(SuppressionComment(number, ids, standalone))
            self._comments = out
        return self._comments

    @property
    def suppressions(self) -> Dict[int, Set[str]]:
        """Line number -> rule ids disabled on that line.

        A standalone suppression comment also covers the next line, so
        long statements can carry their waiver above themselves.
        """
        if self._suppressions is None:
            table: Dict[int, Set[str]] = {}
            for comment in self.suppression_comments:
                table.setdefault(comment.line, set()).update(comment.ids)
                if comment.standalone:
                    table.setdefault(comment.line + 1,
                                     set()).update(comment.ids)
            self._suppressions = table
        return self._suppressions

    def suppressed(self, line: int, rule_id: str) -> bool:
        ids = self.suppressions.get(line)
        return bool(ids) and (rule_id in ids or "all" in ids)

    def in_dirs(self, *dirs: str) -> bool:
        """Does this file live under any of the given repo-relative dirs?"""
        return any(self.relpath.startswith(d.rstrip("/") + "/")
                   or self.relpath == d for d in dirs)

    def finding(self, line: int, rule_id: str, severity: str,
                message: str) -> Finding:
        return Finding(path=self.relpath, line=line, rule=rule_id,
                       severity=severity, message=message)


class Rule(abc.ABC):
    """A per-file AST lint rule."""

    #: Unique registry key, kebab-case.
    id: str = "abstract"
    severity: str = "error"
    #: One-line description for ``--list-rules`` and the doc catalog.
    description: str = ""
    scope: str = "file"

    def applies_to(self, module: ModuleSource) -> bool:
        """Cheap pre-filter; default: every Python file offered."""
        return True

    @abc.abstractmethod
    def check(self, module: ModuleSource) -> Iterable[Finding]:
        """Yield findings for one file."""


class ProjectRule(Rule):
    """A rule that runs once per lint run over the whole tree."""

    scope = "project"

    def applies_to(self, module: ModuleSource) -> bool:
        return False

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        return ()

    @abc.abstractmethod
    def check_project(self, root: Path) -> Iterable[Finding]:
        """Yield findings for the repository as a whole."""


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a rule to the registry (ids must be unique)."""
    if not cls.id or cls.id == "abstract":
        raise ValueError(f"rule {cls.__name__} needs a concrete id")
    existing = _REGISTRY.get(cls.id)
    if existing is not None and existing is not cls:
        raise ValueError(f"duplicate rule id {cls.id!r}")
    _REGISTRY[cls.id] = cls
    return cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, sorted by id."""
    _ensure_builtins()
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    _ensure_builtins()
    try:
        return _REGISTRY[rule_id]()
    except KeyError:
        raise KeyError(
            f"unknown rule {rule_id!r}; known: {sorted(_REGISTRY)}"
        ) from None


def _ensure_builtins() -> None:
    """Import the built-in rule modules so their @register calls run."""
    from . import builtin_rules  # noqa: F401
    from .flow import rules as flow_rules  # noqa: F401


def walk_calls(tree: ast.AST) -> Iterator[ast.Call]:
    """All Call nodes in a tree (shared helper for several rules)."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute chains; None for anything dynamic."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
