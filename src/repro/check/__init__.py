"""Static-analysis and runtime invariant checking (docs/LINTING.md).

Two complementary checking layers keep the reproduction honest as the
codebase grows:

* **reprolint** — an AST-based lint framework: a :class:`Rule`
  registry, a per-file visitor driver with parallel fan-out, structured
  :class:`Finding` objects, and inline ``# reprolint: disable=<id>``
  suppressions.  The built-in rule set enforces repo invariants that
  regexes used to approximate (``repro.check.builtin_rules``).
* **memory-model sanitizer** — a shadow-state checker
  (:class:`MemorySanitizer`) that verifies the paper's layout
  invariants — no overlapping packed lines, offsets within bounds and
  on the 0/8/32/64 B bins (§IV-B1), inflation-pointer/metadata
  consistency (§III), allocator no-double-free/no-leak (§II-D) — after
  every controller operation when a controller is built with
  ``sanitize=True``.

This package deliberately imports nothing from ``repro.core`` at
module scope, so the controller can import the sanitizer without an
import cycle; rules that inspect core types import them lazily.
"""

from .driver import (LintReport, lint_file, lint_file_detail, load_baseline,
                     run_lint, write_baseline)
from .findings import SEVERITIES, Finding, format_finding, to_sarif
from .rules import ModuleSource, ProjectRule, Rule, all_rules, get_rule, register
from .sanitizer import InvariantViolation, MemorySanitizer, SanitizerError

__all__ = [
    "Finding",
    "InvariantViolation",
    "LintReport",
    "MemorySanitizer",
    "SanitizerError",
    "ModuleSource",
    "ProjectRule",
    "Rule",
    "SEVERITIES",
    "all_rules",
    "format_finding",
    "get_rule",
    "lint_file",
    "lint_file_detail",
    "load_baseline",
    "register",
    "run_lint",
    "to_sarif",
    "write_baseline",
]
