"""The interprocedural flow rules (docs/FLOWCHECK.md).

Three rules registered with ``scope = "flow"`` — the driver runs them
once per ``lint --deep`` pass against a shared :class:`FlowProgram`
instead of once per file:

* ``determinism-taint`` — nondeterminism sources must not reach the
  journal / metrics / bench / results sinks except through an
  annotated boundary.  A finding lands on the *deepest meet*: the
  function where source-reach and sink-reach first combine, so one
  tainted helper does not splatter findings over every caller.
* ``shared-state-race`` — no write to module globals or class
  attributes from any function a multiprocessing worker can reach,
  and dispatch targets must be module-level (picklable by reference).
* ``exception-escape`` — ``OutOfMemoryError`` / ``SanitizerError``
  must be provably caught before control returns to ``src/repro/runner/``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from ..findings import Finding
from ..rules import Rule, register
from .engine import FlowProgram

#: Wall-clock / entropy calls that are always nondeterministic.
SOURCE_EXACT = frozenset({
    "time.time", "time.time_ns", "time.perf_counter",
    "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "os.urandom", "os.getpid", "uuid.uuid1", "uuid.uuid4",
    "secrets.token_bytes", "secrets.token_hex", "secrets.randbelow",
})

#: ``random.*`` / ``numpy.random.*`` module-level APIs draw from the
#: shared, unseeded global stream — always sources.
SOURCE_PREFIXES = ("random.", "numpy.random.")

#: RNG constructors that are deterministic when given an explicit
#: seed; with zero arguments they seed from OS entropy (= source).
SEEDED_CONSTRUCTORS = frozenset({
    "random.Random", "numpy.random.RandomState",
    "numpy.random.default_rng", "numpy.random.Generator",
    "numpy.random.SeedSequence",
})

#: ``datetime`` factories that read the wall clock.
DATETIME_SUFFIXES = (".now", ".utcnow", ".today", ".utcfromtimestamp",)

#: Calling one of these project functions makes the caller a sink
#: toucher (the call site is where tainted data would be recorded).
SINK_CALL_QUALS: Dict[str, str] = {
    "repro.runner.journal.RunJournal.event": "RunJournal.event",
    "repro.results.index.ResultsIndex.ingest_journal":
        "ResultsIndex.ingest_journal",
    "repro.results.index.ResultsIndex.ingest_bench_file":
        "ResultsIndex.ingest_bench_file",
}

#: Functions that ARE sinks (they serialize results themselves).
SINK_SELF_QUALS: Dict[str, str] = {
    "repro.analysis.bench.main": "BENCH_kernels.json writer",
    "repro.analysis.bench.run_bench": "bench result assembly",
}

#: Receiver names / type treated as the ControllerStats metrics sink.
STATS_RECEIVERS = frozenset({"stats", "cstats", "controller_stats"})
STATS_CLASS = "repro.core.stats.ControllerStats"

#: Exceptions that must never escape into the runner layer.
TRACKED_EXCEPTIONS = ("OutOfMemoryError", "SanitizerError")


class FlowRule(Rule):
    """Base for whole-program rules driven by a :class:`FlowProgram`."""

    scope = "flow"

    def applies_to(self, module) -> bool:
        return False

    def check(self, module) -> Iterable[Finding]:
        return ()

    def check_flow(self, program: FlowProgram) -> Iterable[Finding]:
        raise NotImplementedError


def _short(qual: str) -> str:
    parts = qual.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 else qual


@register
class DeterminismTaintRule(FlowRule):
    id = "determinism-taint"
    severity = "error"
    description = ("nondeterminism sources (wall clock, unseeded RNG, "
                   "identity ordering, set iteration) must not flow into "
                   "journal/metrics/bench/results sinks except through a "
                   "# flowcheck: boundary")

    def check_flow(self, program: FlowProgram) -> Iterable[Finding]:
        own_src = self._own_sources(program)
        own_snk, sink_lines = self._own_sinks(program)
        cuts = program.boundaries
        src = program.propagate(own_src, cuts)
        snk = program.propagate(own_snk, cuts)
        findings: List[Finding] = []
        for qual in sorted(program.graph.facts):
            if qual in cuts or not (src[qual] and snk[qual]):
                continue
            # deepest-meet dedup: a callee that already sees both ends
            # owns the finding
            if any(src.get(c) and snk.get(c)
                   for c in program.graph.callees(qual)):
                continue
            info = program.table.functions[qual]
            chain = program.witness_path(qual, src[qual], own_src, src)
            via = " -> ".join(_short(q) for q in chain)
            sources = ", ".join(sorted(src[qual])[:3])
            sinks = ", ".join(sorted(snk[qual])[:3])
            line = sink_lines.get(qual, info.lineno)
            findings.append(Finding(
                path=info.relpath, line=line, rule=self.id,
                severity=self.severity,
                message=(f"nondeterminism reaches a results sink in "
                         f"{_short(qual)}: {{{sources}}} (via {via}) "
                         f"meets {{{sinks}}}; seed it or mark an audited "
                         f"interface with # flowcheck: boundary(reason)")))
        return findings

    def _own_sources(self, program: FlowProgram) -> Dict[str, Set[str]]:
        out: Dict[str, Set[str]] = {}
        for qual, facts in program.graph.facts.items():
            labels: Set[str] = set()
            for call in facts.calls:
                name = call.name
                if not name:
                    continue
                if name in SOURCE_EXACT:
                    labels.add(name)
                elif name in SEEDED_CONSTRUCTORS:
                    if call.n_args == 0:
                        labels.add(f"{name}() unseeded")
                elif name == "random.SystemRandom":
                    labels.add(name)
                elif name.startswith(SOURCE_PREFIXES):
                    labels.add(name)
                elif (name.startswith("datetime.")
                      and name.endswith(DATETIME_SUFFIXES)):
                    labels.add(name)
            for event in facts.sources:
                labels.add(event.kind)
            if labels:
                out[qual] = labels
        return out

    def _own_sinks(self, program: FlowProgram):
        out: Dict[str, Set[str]] = {}
        lines: Dict[str, int] = {}
        for qual, facts in program.graph.facts.items():
            labels: Set[str] = set()
            for call in facts.calls:
                for callee in call.callees:
                    if callee in SINK_CALL_QUALS:
                        labels.add(SINK_CALL_QUALS[callee])
                        lines.setdefault(qual, call.line)
                if call.name in SINK_CALL_QUALS:
                    labels.add(SINK_CALL_QUALS[call.name])
                    lines.setdefault(qual, call.line)
            for store in facts.attr_stores:
                base_leaf = store.base.split(".")[-1]
                if (store.base_type == STATS_CLASS
                        or base_leaf in STATS_RECEIVERS):
                    labels.add(f"ControllerStats.{store.attr}")
                    lines.setdefault(qual, store.line)
            if qual in SINK_SELF_QUALS:
                labels.add(SINK_SELF_QUALS[qual])
            if labels:
                out[qual] = labels
        return out, lines


@register
class SharedStateRaceRule(FlowRule):
    id = "shared-state-race"
    severity = "error"
    description = ("functions reachable from a multiprocessing dispatch "
                   "must not mutate module globals or class attributes "
                   "(annotate # flowcheck: shared-ok(reason) to waive), "
                   "and dispatch targets must be module-level functions")

    #: "param"-channel dispatch sites are trusted only when the
    #: callable was passed into one of these (work units really do run
    #: in worker processes; a `fn=` field on a plain record does not).
    PARAM_DISPATCH_QUALS = frozenset({
        "repro.runner.units.WorkUnit",
        "repro.runner.units.WorkUnit.__init__",
        "repro.analysis.experiments._run_units",
        # Shard spawn sites: the supervisor dispatches its `worker=`
        # callable into per-shard processes (docs/SHARDING.md).
        "repro.shard.supervisor.ShardSupervisor",
        "repro.shard.supervisor.ShardSupervisor.__init__",
        "repro.shard.supervisor.ShardSupervisor.resume",
        "repro.shard.supervisor.simulate_multicore_sharded",
    })

    def _trusted_sites(self, program: FlowProgram):
        """(function qual, DispatchSite) for every real dispatch."""
        for qual in sorted(program.graph.facts):
            for site in program.graph.facts[qual].dispatches:
                if (site.channel == "param"
                        and site.callee not in self.PARAM_DISPATCH_QUALS):
                    continue
                yield qual, site

    def check_flow(self, program: FlowProgram) -> Iterable[Finding]:
        findings: List[Finding] = []
        roots: Dict[str, str] = {}
        for qual, site in self._trusted_sites(program):
            info = program.table.functions[qual]
            if site.target and site.target not in roots:
                roots[site.target] = (
                    f"{info.relpath}:{site.line} via {site.via}")
        reach = program.reachable_from(roots)
        for qual in sorted(reach):
            facts = program.graph.facts[qual]
            info = program.table.functions[qual]
            seen: Set[tuple] = set()
            for write in facts.writes:
                key = (write.line, write.target_qual)
                if key in seen:
                    continue
                seen.add(key)
                if self._waived(program, info.relpath, write):
                    continue
                root = reach[qual]
                findings.append(Finding(
                    path=info.relpath, line=write.line, rule=self.id,
                    severity=self.severity,
                    message=(f"{_short(qual)} {write.detail} but is "
                             f"worker-reachable (dispatched from "
                             f"{roots.get(root, _short(root))}); a write "
                             f"in a worker process is lost or racy — "
                             f"make it read-only or annotate "
                             f"# flowcheck: shared-ok(reason)")))
        for qual, site in self._trusted_sites(program):
            info = program.table.functions[qual]
            if site.kind in ("lambda", "nested"):
                what = ("a lambda" if site.kind == "lambda"
                        else f"nested function {_short(site.target)}")
                findings.append(Finding(
                    path=info.relpath, line=site.line, rule=self.id,
                    severity=self.severity,
                    message=(f"dispatch via {site.via} targets {what}"
                             f" — not picklable by reference, so it "
                             f"cannot cross the process boundary; "
                             f"use a module-level function")))
        return findings

    def _waived(self, program: FlowProgram, relpath: str, write) -> bool:
        note = program.table.annotation_at(relpath, write.line, "shared-ok")
        if note is not None:
            note.consumed = True
            return True
        # a shared-ok on the definition line waives every writer
        target = write.target_qual
        if target in program.table.globals_:
            var = program.table.globals_[target]
            mod = program.table.modules[var.module]
            note = program.table.annotation_at(
                mod.relpath, var.lineno, "shared-ok")
        elif target in program.table.classes:
            cls = program.table.classes[target]
            note = program.table.annotation_at(
                cls.relpath, cls.lineno, "shared-ok")
        else:
            note = None
        if note is not None:
            note.consumed = True
            return True
        return False


@register
class ExceptionEscapeRule(FlowRule):
    id = "exception-escape"
    severity = "error"
    description = ("OutOfMemoryError and SanitizerError must be caught "
                   "inside core//pressure — no call path may let them "
                   "escape into src/repro/runner/")

    def check_flow(self, program: FlowProgram) -> Iterable[Finding]:
        raises = program.raises_fixpoint(TRACKED_EXCEPTIONS)
        findings: List[Finding] = []
        from .callgraph import _covered
        for qual in sorted(program.graph.facts):
            info = program.table.functions[qual]
            if not info.relpath.startswith("src/repro/runner/"):
                continue
            facts = program.graph.facts[qual]
            seen: Set[tuple] = set()
            for event in facts.raises_:
                if event.name in TRACKED_EXCEPTIONS:
                    key = (event.line, event.name)
                    if key not in seen:
                        seen.add(key)
                        findings.append(Finding(
                            path=info.relpath, line=event.line,
                            rule=self.id, severity=self.severity,
                            message=(f"{_short(qual)} raises {event.name} "
                                     f"inside runner/ — simulated-memory "
                                     f"faults must stay in core//pressure")))
            for call in facts.calls:
                if call.via_cha:
                    continue
                for callee in call.callees:
                    for name in sorted(raises.get(callee, ())):
                        if _covered(name, call.caught):
                            continue
                        key = (call.line, name)
                        if key in seen:
                            continue
                        seen.add(key)
                        findings.append(Finding(
                            path=info.relpath, line=call.line,
                            rule=self.id, severity=self.severity,
                            message=(f"call to {_short(callee)} may let "
                                     f"{name} escape into runner/ — catch "
                                     f"it inside core//pressure "
                                     f"(docs/FLOWCHECK.md)")))
        return findings


def flow_rule_ids() -> List[str]:
    """Registry ids of the flow rules (import side effect: registers)."""
    return [DeterminismTaintRule.id, SharedStateRaceRule.id,
            ExceptionEscapeRule.id]
