"""Project-wide symbol table for the flow engine (docs/FLOWCHECK.md).

One :class:`SymbolTable` holds every module under the lint roots,
parsed once: module names derived from repo-relative paths, import
aliases (including relative imports and package re-exports), top-level
functions, classes with their methods / dataclass fields / inferred
attribute types, module-level globals (with a mutability guess from
the initializer), and ``# flowcheck:`` annotations.

The table answers the one question every flow pass asks: *given a
dotted name written in module M, which project symbol (or external
qualified name) does it denote?*  Resolution chases import chains
through package ``__init__`` re-exports (``from ..runner import
RunJournal`` canonicalizes to ``repro.runner.journal.RunJournal``), so
rules match call targets against stable qualified names no matter how
a call site spells them.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: ``# flowcheck: <kind>(<reason>)`` — the inline annotation grammar.
#: ``boundary`` marks a function as an audited nondeterminism boundary
#: (taint does not escape it); ``shared-ok`` waives a shared-state
#: finding for a deliberately shared global or class attribute.
ANNOTATION_KINDS = ("boundary", "shared-ok")

_ANNOTATION = re.compile(
    r"#\s*flowcheck:\s*(" + "|".join(ANNOTATION_KINDS) + r")\(([^)]*)\)")

#: Initializer call names that make a module-level global mutable.
_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict",
                  "OrderedDict", "Counter", "deque"}


def comment_tokens(text: str) -> List[Tuple[int, str, bool]]:
    """(line, comment text, standalone?) for every real comment.

    Tokenized, not regex-scanned, so comment-shaped strings inside
    docstrings do not register.  Falls back to a line scan when the
    file does not tokenize (syntax errors still deserve suppression
    handling).
    """
    out: List[Tuple[int, str, bool]] = []
    try:
        for tok in tokenize.generate_tokens(io.StringIO(text).readline):
            if tok.type == tokenize.COMMENT:
                line_text = tok.line[:tok.start[1]].strip()
                out.append((tok.start[0], tok.string, line_text == ""))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        out = []
        for number, line in enumerate(text.splitlines(), start=1):
            if "#" in line:
                idx = line.index("#")
                out.append((number, line[idx:], line[:idx].strip() == ""))
    return out


@dataclass
class Annotation:
    """One inline ``# flowcheck:`` marker."""

    kind: str
    reason: str
    line: int               # line the comment sits on
    anchor: int             # line the annotation governs
    consumed: bool = False


@dataclass
class GlobalVar:
    """A module-level variable assignment."""

    name: str
    qual: str
    module: str
    lineno: int
    mutable: bool


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qual: str
    module: str
    relpath: str
    name: str
    lineno: int
    node: ast.AST
    params: Tuple[str, ...]
    class_qual: Optional[str] = None
    parent_qual: Optional[str] = None     # enclosing function, if nested


@dataclass
class ClassInfo:
    """One top-level class definition."""

    qual: str
    module: str
    relpath: str
    name: str
    lineno: int
    base_names: Tuple[str, ...] = ()
    base_quals: Tuple[str, ...] = ()
    methods: Dict[str, str] = field(default_factory=dict)
    #: AnnAssign field names in declaration order (dataclass ctor order).
    fields: Tuple[str, ...] = ()
    #: attribute name -> class qual inferred from annotations/ctor calls.
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed module."""

    modname: str
    relpath: str
    is_package: bool
    tree: Optional[ast.Module]
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, str] = field(default_factory=dict)
    classes: Dict[str, str] = field(default_factory=dict)
    globals_: Dict[str, GlobalVar] = field(default_factory=dict)
    annotations: Dict[int, Annotation] = field(default_factory=dict)


def module_name(relpath: str) -> Tuple[str, bool]:
    """(dotted module name, is_package) for a repo-relative path."""
    parts = list(PurePosixPath(relpath).with_suffix("").parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    is_package = False
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
        is_package = True
    return ".".join(parts), is_package


class SymbolTable:
    """Every module, function, class and global under the lint roots."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.by_relpath: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.globals_: Dict[str, GlobalVar] = {}
        self.subclasses: Dict[str, Set[str]] = {}
        self.methods_by_name: Dict[str, List[str]] = {}
        #: files that failed to parse: relpath -> error message.
        self.broken: Dict[str, str] = {}

    # -- construction -----------------------------------------------------

    @classmethod
    def build(cls, root: Path, files: Sequence[Path]) -> "SymbolTable":
        table = cls()
        for path in sorted(files):
            table._add_file(Path(path), Path(root))
        table._finalize()
        return table

    def _add_file(self, path: Path, root: Path) -> None:
        relpath = path.relative_to(root).as_posix()
        modname, is_package = module_name(relpath)
        text = path.read_text()
        try:
            tree = ast.parse(text, filename=relpath)
        except SyntaxError as exc:
            self.broken[relpath] = f"{exc.msg} (line {exc.lineno})"
            self.modules[modname] = ModuleInfo(modname, relpath,
                                               is_package, None)
            self.by_relpath[relpath] = self.modules[modname]
            return
        mod = ModuleInfo(modname, relpath, is_package, tree)
        self.modules[modname] = mod
        self.by_relpath[relpath] = mod
        self._collect_annotations(mod, text)
        self._collect_imports(mod)
        self._collect_definitions(mod)

    def _collect_annotations(self, mod: ModuleInfo, text: str) -> None:
        for line, comment, standalone in comment_tokens(text):
            match = _ANNOTATION.search(comment)
            if match:
                anchor = line + 1 if standalone else line
                mod.annotations[line] = Annotation(
                    kind=match.group(1), reason=match.group(2).strip(),
                    line=line, anchor=anchor)

    def _collect_imports(self, mod: ModuleInfo) -> None:
        assert mod.tree is not None
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else local
                    mod.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(mod, node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    mod.imports[local] = f"{base}.{alias.name}"

    @staticmethod
    def _import_base(mod: ModuleInfo,
                     node: ast.ImportFrom) -> Optional[str]:
        if node.level == 0:
            return node.module
        parts = mod.modname.split(".")
        if not mod.is_package:
            parts = parts[:-1]
        drop = node.level - 1
        if drop > len(parts):
            return None
        if drop:
            parts = parts[:-drop]
        if node.module:
            parts = parts + node.module.split(".")
        return ".".join(parts) if parts else None

    def _collect_definitions(self, mod: ModuleInfo) -> None:
        assert mod.tree is not None
        for node in mod.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(mod, node, prefix=mod.modname,
                                   class_qual=None, parent_qual=None)
            elif isinstance(node, ast.ClassDef):
                self._add_class(mod, node)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                self._add_global(mod, node)

    def _add_function(self, mod: ModuleInfo, node, prefix: str,
                      class_qual: Optional[str],
                      parent_qual: Optional[str]) -> None:
        qual = f"{prefix}.{node.name}"
        params = tuple(
            arg.arg for arg in (node.args.posonlyargs + node.args.args
                                + node.args.kwonlyargs))
        info = FunctionInfo(qual=qual, module=mod.modname,
                            relpath=mod.relpath, name=node.name,
                            lineno=node.lineno, node=node, params=params,
                            class_qual=class_qual, parent_qual=parent_qual)
        self.functions[qual] = info
        if class_qual is None and parent_qual is None:
            mod.functions[node.name] = qual
        # Nested defs become their own nodes (reached via reference
        # edges from the parent); one level of nesting is plenty here.
        for child in ast.walk(node):
            if child is node:
                continue
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_qual = f"{qual}.{child.name}"
                if child_qual not in self.functions:
                    self.functions[child_qual] = FunctionInfo(
                        qual=child_qual, module=mod.modname,
                        relpath=mod.relpath, name=child.name,
                        lineno=child.lineno, node=child,
                        params=tuple(a.arg for a in child.args.args),
                        class_qual=class_qual, parent_qual=qual)

    def _add_class(self, mod: ModuleInfo, node: ast.ClassDef) -> None:
        qual = f"{mod.modname}.{node.name}"
        bases = tuple(name for name in
                      (_dotted(base) for base in node.bases)
                      if name is not None)
        fields: List[str] = []
        info = ClassInfo(qual=qual, module=mod.modname,
                         relpath=mod.relpath, name=node.name,
                         lineno=node.lineno, base_names=bases)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(mod, stmt, prefix=qual,
                                   class_qual=qual, parent_qual=None)
                info.methods[stmt.name] = f"{qual}.{stmt.name}"
            elif (isinstance(stmt, ast.AnnAssign)
                  and isinstance(stmt.target, ast.Name)):
                fields.append(stmt.target.id)
                ann = _annotation_names(stmt.annotation)
                if ann:
                    # resolved against the table in _finalize
                    info.attr_types[stmt.target.id] = "|".join(ann)
        info.fields = tuple(fields)
        self.classes[qual] = info
        mod.classes[node.name] = qual

    def _add_global(self, mod: ModuleInfo, node) -> None:
        targets = (node.targets if isinstance(node, ast.Assign)
                   else [node.target])
        value = node.value
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            qual = f"{mod.modname}.{target.id}"
            var = GlobalVar(name=target.id, qual=qual,
                            module=mod.modname, lineno=node.lineno,
                            mutable=_is_mutable_value(value))
            mod.globals_[target.id] = var
            self.globals_[qual] = var

    # -- finalize: hierarchy + attribute types ----------------------------

    def _finalize(self) -> None:
        for info in self.classes.values():
            quals = []
            for base in info.base_names:
                resolved = self.canonicalize(
                    self.resolve(info.module, base) or base)
                if resolved in self.classes:
                    quals.append(resolved)
                    self.subclasses.setdefault(resolved, set()).add(
                        info.qual)
            info.base_quals = tuple(quals)
        for info in self.classes.values():
            for name, qual in info.methods.items():
                self.methods_by_name.setdefault(name, []).append(qual)
            # resolve annotation-name unions stashed by _add_class
            resolved_types: Dict[str, str] = {}
            for attr, names in info.attr_types.items():
                for candidate in names.split("|"):
                    qual = self.canonicalize(
                        self.resolve(info.module, candidate) or candidate)
                    if qual in self.classes:
                        resolved_types[attr] = qual
                        break
            info.attr_types = resolved_types
        for name in self.methods_by_name:
            self.methods_by_name[name].sort()
        for info in self.classes.values():
            self._infer_init_attr_types(info)

    def _infer_init_attr_types(self, info: ClassInfo) -> None:
        init_qual = info.methods.get("__init__")
        if init_qual is None:
            return
        node = self.functions[init_qual].node
        param_types: Dict[str, str] = {}
        args = node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.annotation is None:
                continue
            for candidate in _annotation_names(arg.annotation):
                qual = self.canonicalize(
                    self.resolve(info.module, candidate) or candidate)
                if qual in self.classes:
                    param_types[arg.arg] = qual
                    break
        for stmt in ast.walk(node):
            if not isinstance(stmt, ast.Assign):
                continue
            for target in stmt.targets:
                if not (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    continue
                if target.attr in info.attr_types:
                    continue
                value = stmt.value
                if (isinstance(value, ast.Name)
                        and value.id in param_types):
                    info.attr_types[target.attr] = param_types[value.id]
                elif isinstance(value, ast.Call):
                    name = _dotted(value.func)
                    if name:
                        qual = self.canonicalize(
                            self.resolve(info.module, name) or name)
                        if qual in self.classes:
                            info.attr_types[target.attr] = qual

    # -- resolution -------------------------------------------------------

    def resolve(self, modname: str, dotted: str,
                shadowed: Iterable[str] = ()) -> Optional[str]:
        """Resolve a dotted name written in ``modname`` to a qualified
        name — a project symbol or a normalized external name."""
        parts = dotted.split(".")
        head = parts[0]
        if head in set(shadowed):
            return None
        mod = self.modules.get(modname)
        if mod is None:
            return dotted
        if head in mod.imports:
            return ".".join([mod.imports[head]] + parts[1:])
        if head in mod.classes:
            return ".".join([mod.classes[head]] + parts[1:])
        if head in mod.functions and len(parts) == 1:
            return mod.functions[head]
        if head in mod.globals_:
            return ".".join([mod.globals_[head].qual] + parts[1:])
        return dotted

    def canonicalize(self, full: str, _depth: int = 0) -> str:
        """Chase re-export chains until the name stops moving."""
        if _depth > 8 or not full:
            return full
        if (full in self.functions or full in self.classes
                or full in self.globals_):
            return full
        parts = full.split(".")
        for i in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:i])
            mod = self.modules.get(prefix)
            if mod is None:
                continue
            sym, rest = parts[i], parts[i + 1:]
            if sym in mod.imports:
                return self.canonicalize(
                    ".".join([mod.imports[sym]] + rest), _depth + 1)
            if sym in mod.classes:
                return ".".join([mod.classes[sym]] + rest)
            if sym in mod.functions and not rest:
                return mod.functions[sym]
            if sym in mod.globals_ and not rest:
                return mod.globals_[sym].qual
            break
        return full

    # -- class hierarchy --------------------------------------------------

    def mro(self, class_qual: str) -> List[str]:
        """Approximate linearization: the class, then BFS over bases."""
        order, queue, seen = [], [class_qual], set()
        while queue:
            current = queue.pop(0)
            if current in seen or current not in self.classes:
                continue
            seen.add(current)
            order.append(current)
            queue.extend(self.classes[current].base_quals)
        return order

    def all_subclasses(self, class_qual: str) -> Set[str]:
        out: Set[str] = set()
        queue = [class_qual]
        while queue:
            for sub in self.subclasses.get(queue.pop(), ()):
                if sub not in out:
                    out.add(sub)
                    queue.append(sub)
        return out

    def resolve_method(self, class_qual: str, name: str) -> List[str]:
        """Method candidates for ``obj.name()`` where obj: class_qual.

        The static definition found along the MRO, plus every override
        in the subtree below the receiver class (class-hierarchy
        analysis for dynamic dispatch).
        """
        out: Set[str] = set()
        for cq in self.mro(class_qual):
            methods = self.classes[cq].methods
            if name in methods:
                out.add(methods[name])
                break
        for sub in self.all_subclasses(class_qual):
            methods = self.classes[sub].methods
            if name in methods:
                out.add(methods[name])
        return sorted(out)

    # -- annotations ------------------------------------------------------

    def annotation_at(self, relpath: str, anchor: int,
                      kind: str) -> Optional[Annotation]:
        """The ``# flowcheck: kind(...)`` annotation governing a line."""
        mod = self.by_relpath.get(relpath)
        if mod is None:
            return None
        for note in mod.annotations.values():
            if note.kind == kind and note.anchor == anchor:
                return note
        return None


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _annotation_names(node: ast.AST) -> List[str]:
    """Class-name candidates inside a type annotation expression."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # string annotation: take the identifier-looking head
        text = node.value.strip()
        match = re.match(r"[A-Za-z_][\w.]*", text)
        return [match.group(0)] if match else []
    name = _dotted(node)
    if name is not None:
        return [name]
    if isinstance(node, ast.Subscript):
        # Optional[X] / Union[X, Y] / List[X]: consider the arguments
        inner = node.slice
        elements = (inner.elts if isinstance(inner, ast.Tuple)
                    else [inner])
        out: List[str] = []
        for element in elements:
            out.extend(_annotation_names(element))
        return out
    return []


def _is_mutable_value(value: Optional[ast.AST]) -> bool:
    if value is None:
        return False
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        name = _dotted(value.func)
        return bool(name) and name.split(".")[-1] in _MUTABLE_CALLS
    return False
