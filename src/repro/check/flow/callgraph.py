"""Call graph and per-function facts for the flow rules (docs/FLOWCHECK.md).

For every function in the :class:`~repro.check.flow.symbols.SymbolTable`
a single AST pass extracts the facts the interprocedural rules need:

* **call sites** — resolved to project function quals where possible
  (imports chased, ``self``/typed receivers bound, unknown receivers
  dispatched by class-hierarchy analysis with a candidate cap), each
  tagged with the exception names caught around it;
* **reference edges** — a function passed as a value (callback, pool
  worker) links the referencer to the referee;
* **nondeterminism events** — syntactic sources a per-file rule could
  also see, but recorded here with normalized names so taint can flow
  through calls (``time.time``, unseeded RNG constructors, ``id``/
  ``hash`` ordering keys, set-literal iteration);
* **writes** — stores/mutations hitting module-level globals or class
  attributes, for the shared-state race rule;
* **raises** — exceptions raised and not caught locally, seeds for the
  escape fixpoint;
* **dispatch sites** — multiprocessing entry points whose target
  functions become worker-reachability roots.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from .symbols import FunctionInfo, SymbolTable, _dotted

#: Most override candidates a name-only (receiver type unknown) method
#: call may fan out to; beyond this the edge is dropped as noise.
CHA_CANDIDATE_CAP = 6

#: Mutating container/method names: a call ``G.append(...)`` on a
#: module global counts as a write to it.
MUTATOR_METHODS = frozenset({
    "append", "add", "update", "extend", "insert", "remove", "discard",
    "clear", "pop", "popitem", "setdefault", "appendleft", "sort",
})

#: Attribute names on pool-like objects whose first argument is
#: dispatched to worker processes.
DISPATCH_ATTRS = frozenset({
    "starmap", "starmap_async", "map", "map_async", "imap",
    "imap_unordered", "apply", "apply_async", "submit",
})

#: Parameter names that mark a callable argument as a dispatch target
#: when it is passed into a known project function or dataclass.
DISPATCH_PARAM_NAMES = frozenset({"fn", "target", "func", "worker"})


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body."""

    name: Optional[str]            # normalized dotted name, None if dynamic
    callees: Tuple[str, ...]       # resolved project function quals
    line: int
    caught: FrozenSet[str]         # exception names caught around the call
    n_args: int
    #: True when the callees came from name-only class-hierarchy
    #: analysis (receiver type unknown) — an over-approximation rules
    #: needing *proof* (exception-escape) must not lean on.
    via_cha: bool = False


@dataclass(frozen=True)
class AttrStore:
    """An attribute store ``recv.attr = …`` / ``recv.attr += …``."""

    base: str                      # receiver as written ("stats", "self.x")
    base_type: Optional[str]       # receiver class qual when inferred
    attr: str
    line: int


@dataclass(frozen=True)
class SourceEvent:
    """A syntactic nondeterminism pattern (beyond plain calls)."""

    kind: str                      # "id-ordering" | "set-iteration"
    detail: str
    line: int


@dataclass(frozen=True)
class WriteEvent:
    """A store or mutation hitting shared state."""

    target_qual: str               # global var qual or "Class.attr" qual
    kind: str                      # "global" | "class-attr"
    detail: str
    line: int


@dataclass(frozen=True)
class RaiseEvent:
    """A raise not provably caught inside the raising function."""

    name: str
    line: int


@dataclass(frozen=True)
class DispatchSite:
    """A multiprocessing dispatch candidate.

    ``channel`` says how confident the detection is: ``"pool"`` /
    ``"process"`` sites are real multiprocessing APIs; ``"param"``
    sites passed a callable into a dispatch-named parameter
    (``fn=``/``target=``) of a project function — the race rule only
    trusts those when the callee is a known work-unit constructor.
    """

    target: Optional[str]          # resolved function qual, if any
    kind: str                      # "function" | "nested" | "lambda"
    via: str                       # the API or parameter that took it
    channel: str                   # "pool" | "process" | "param"
    line: int
    callee: Optional[str] = None   # qual the callable was passed into


@dataclass
class FunctionFacts:
    """Everything the flow rules need to know about one function."""

    calls: List[CallSite] = field(default_factory=list)
    refs: List[Tuple[str, int]] = field(default_factory=list)
    sources: List[SourceEvent] = field(default_factory=list)
    writes: List[WriteEvent] = field(default_factory=list)
    attr_stores: List[AttrStore] = field(default_factory=list)
    raises_: List[RaiseEvent] = field(default_factory=list)
    dispatches: List[DispatchSite] = field(default_factory=list)

    def callees(self) -> Set[str]:
        out: Set[str] = set()
        for call in self.calls:
            out.update(call.callees)
        out.update(qual for qual, _ in self.refs)
        return out


class CallGraph:
    """Facts for every function, plus the induced call-edge relation."""

    def __init__(self, table: SymbolTable) -> None:
        self.table = table
        self.facts: Dict[str, FunctionFacts] = {}
        for qual in sorted(table.functions):
            self.facts[qual] = _FunctionAnalyzer(
                table, table.functions[qual]).run()

    def callees(self, qual: str) -> Set[str]:
        facts = self.facts.get(qual)
        return facts.callees() if facts else set()

    def dump(self) -> dict:
        """JSON-ready call-graph artifact (functions, edges, dispatches)."""
        functions = []
        for qual in sorted(self.facts):
            info = self.table.functions[qual]
            facts = self.facts[qual]
            functions.append({
                "qual": qual,
                "path": info.relpath,
                "line": info.lineno,
                "calls": sorted(facts.callees()),
                "dispatches": sorted(
                    d.target for d in facts.dispatches if d.target),
            })
        return {
            "schema": "repro-callgraph/1",
            "modules": sorted(self.table.modules),
            "functions": functions,
        }


class _FunctionAnalyzer:
    """One pass over a function body, collecting :class:`FunctionFacts`."""

    def __init__(self, table: SymbolTable, func: FunctionInfo) -> None:
        self.table = table
        self.func = func
        self.module = table.modules[func.module]
        self.facts = FunctionFacts()
        self.class_info = (table.classes.get(func.class_qual)
                           if func.class_qual else None)
        self.shadowed: Set[str] = set(func.params)
        self.local_types: Dict[str, str] = {}
        self.global_decls: Set[str] = set()

    # -- entry ------------------------------------------------------------

    def run(self) -> FunctionFacts:
        node = self.func.node
        self._collect_param_types(node)
        self._collect_locals(node)
        self._visit_block(node.body, frozenset(), None)
        return self.facts

    def _collect_param_types(self, node) -> None:
        args = node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.annotation is None:
                continue
            from .symbols import _annotation_names
            for candidate in _annotation_names(arg.annotation):
                qual = self._resolve(candidate, typed=True)
                if qual in self.table.classes:
                    self.local_types[arg.arg] = qual
                    break

    def _collect_locals(self, node) -> None:
        for child in _pruned_walk(node, skip_root_def=True):
            if isinstance(child, ast.Global):
                self.global_decls.update(child.names)
            elif isinstance(child, (ast.Assign, ast.AnnAssign)):
                targets = (child.targets if isinstance(child, ast.Assign)
                           else [child.target])
                for target in targets:
                    if isinstance(target, ast.Name):
                        if target.id not in self.global_decls:
                            self.shadowed.add(target.id)
                        self._maybe_type_local(target.id, child.value)
            elif isinstance(child, (ast.For, ast.AsyncFor)):
                for target in ast.walk(child.target):
                    if isinstance(target, ast.Name):
                        self.shadowed.add(target.id)
            elif isinstance(child, (ast.With, ast.AsyncWith)):
                for item in child.items:
                    if isinstance(item.optional_vars, ast.Name):
                        self.shadowed.add(item.optional_vars.id)

    def _maybe_type_local(self, name: str, value) -> None:
        if not isinstance(value, ast.Call):
            return
        dotted = _dotted(value.func)
        if dotted is None:
            return
        qual = self._resolve(dotted, typed=True)
        if qual in self.table.classes:
            self.local_types[name] = qual

    # -- statement walk with exception context ----------------------------

    def _visit_block(self, stmts, caught: FrozenSet[str],
                     handler_ctx: Optional[FrozenSet[str]]) -> None:
        for stmt in stmts:
            self._visit_stmt(stmt, caught, handler_ctx)

    def _visit_stmt(self, stmt, caught: FrozenSet[str],
                    handler_ctx: Optional[FrozenSet[str]]) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            # nested definitions are separate graph nodes; a reference
            # edge keeps them reachable from here
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.facts.refs.append(
                    (f"{self.func.qual}.{stmt.name}", stmt.lineno))
            return
        if isinstance(stmt, ast.Try) or (
                hasattr(ast, "TryStar")
                and isinstance(stmt, getattr(ast, "TryStar"))):
            names: Set[str] = set()
            for handler in stmt.handlers:
                names |= self._handler_names(handler)
            self._visit_block(stmt.body, caught | frozenset(names),
                              handler_ctx)
            for handler in stmt.handlers:
                self._visit_block(handler.body, caught,
                                  frozenset(self._handler_names(handler)))
            self._visit_block(stmt.orelse, caught, handler_ctx)
            self._visit_block(stmt.finalbody, caught, handler_ctx)
            return
        if isinstance(stmt, ast.Raise):
            self._record_raise(stmt, caught, handler_ctx)
            if stmt.exc is not None:
                self._visit_expr_tree(stmt.exc, caught)
            return
        if isinstance(stmt, (ast.If, ast.While)):
            self._visit_expr_tree(stmt.test, caught)
            self._visit_block(stmt.body, caught, handler_ctx)
            self._visit_block(stmt.orelse, caught, handler_ctx)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._check_set_iteration(stmt)
            self._visit_expr_tree(stmt.iter, caught)
            self._visit_block(stmt.body, caught, handler_ctx)
            self._visit_block(stmt.orelse, caught, handler_ctx)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._visit_expr_tree(item.context_expr, caught)
            self._visit_block(stmt.body, caught, handler_ctx)
            return
        if hasattr(ast, "Match") and isinstance(stmt, getattr(ast, "Match")):
            self._visit_expr_tree(stmt.subject, caught)
            for case in stmt.cases:
                self._visit_block(case.body, caught, handler_ctx)
            return
        # simple statement: writes, then every expression inside it
        self._check_writes(stmt)
        self._visit_expr_tree(stmt, caught)

    def _handler_names(self, handler: ast.ExceptHandler) -> Set[str]:
        if handler.type is None:
            return {"BaseException"}
        types = (handler.type.elts if isinstance(handler.type, ast.Tuple)
                 else [handler.type])
        names: Set[str] = set()
        for node in types:
            dotted = _dotted(node)
            if dotted:
                names.add(dotted.split(".")[-1])
        return names

    def _record_raise(self, stmt: ast.Raise, caught: FrozenSet[str],
                      handler_ctx: Optional[FrozenSet[str]]) -> None:
        if stmt.exc is None:
            # bare re-raise: the in-flight exception(s) of the handler
            for name in sorted(handler_ctx or ()):
                if not _covered(name, caught):
                    self.facts.raises_.append(RaiseEvent(name, stmt.lineno))
            return
        node = stmt.exc
        if isinstance(node, ast.Call):
            node = node.func
        dotted = _dotted(node)
        if dotted is None:
            return
        name = dotted.split(".")[-1]
        if not _covered(name, caught):
            self.facts.raises_.append(RaiseEvent(name, stmt.lineno))

    # -- expression walk --------------------------------------------------

    def _visit_expr_tree(self, node, caught: FrozenSet[str]) -> None:
        if node is None:
            return
        for child in _pruned_walk(node):
            if isinstance(child, ast.Call):
                self._handle_call(child, caught)
            elif isinstance(child, ast.Name) and isinstance(
                    child.ctx, ast.Load):
                self._handle_name_ref(child)

    def _handle_name_ref(self, node: ast.Name) -> None:
        if node.id in self.shadowed or node.id in self.global_decls:
            return
        # a nested function referenced by bare name
        nested = f"{self.func.qual}.{node.id}"
        if nested in self.table.functions:
            self.facts.refs.append((nested, node.lineno))
            return
        qual = self.module.functions.get(node.id)
        if qual is None:
            resolved = self.table.canonicalize(
                self.table.resolve(self.func.module, node.id,
                                   self.shadowed) or "")
            qual = resolved if resolved in self.table.functions else None
        if qual:
            self.facts.refs.append((qual, node.lineno))

    # -- calls ------------------------------------------------------------

    def _handle_call(self, call: ast.Call, caught: FrozenSet[str]) -> None:
        name, callees, via_cha = self._resolve_call(call.func)
        n_args = len(call.args) + len(call.keywords)
        self.facts.calls.append(CallSite(
            name=name, callees=tuple(sorted(callees)), line=call.lineno,
            caught=caught, n_args=n_args, via_cha=via_cha))
        self._check_ordering_key(call, name)
        self._check_dispatch(call, name, callees)

    def _resolve_call(self, func) -> Tuple[Optional[str], Set[str], bool]:
        """(normalized name, resolved project callee quals, via CHA?)."""
        callees: Set[str] = set()
        if isinstance(func, ast.Attribute):
            recv_type = self._type_of(func.value)
            if recv_type is not None:
                quals = self.table.resolve_method(recv_type, func.attr)
                callees.update(quals)
                return f"{recv_type}.{func.attr}", callees, False
        dotted = _dotted(func)
        if dotted is None:
            return None, callees, False
        resolved = self.table.canonicalize(
            self.table.resolve(self.func.module, dotted, self.shadowed)
            or "")
        if not resolved:
            # shadowed head — typed-receiver resolution already failed;
            # fall through to name-only CHA for attribute calls
            resolved = dotted
        if resolved in self.table.functions:
            callees.add(resolved)
            return resolved, callees, False
        if resolved in self.table.classes:
            init = self.table.classes[resolved].methods.get("__init__")
            if init:
                callees.add(init)
            return resolved, callees, False
        # Class.method spelled directly (Class resolved, method suffix)
        head, _, tail = resolved.rpartition(".")
        if head in self.table.classes and tail:
            callees.update(self.table.resolve_method(head, tail))
            return resolved, callees, False
        via_cha = False
        head = dotted.split(".")[0]
        if (isinstance(func, ast.Attribute) and "." in dotted
                and head not in self.module.imports):
            # unknown receiver: class-hierarchy analysis by method name.
            # Receivers rooted in an imported external module
            # (sys.stderr.flush, np.ndarray.sort, ...) are exempt — a
            # name collision there would fabricate project edges.
            candidates = self.table.methods_by_name.get(func.attr, [])
            if 0 < len(candidates) <= CHA_CANDIDATE_CAP:
                callees.update(candidates)
                via_cha = True
        return resolved, callees, via_cha

    def _type_of(self, node) -> Optional[str]:
        if isinstance(node, ast.Name):
            if node.id in ("self", "cls") and self.func.class_qual:
                return self.func.class_qual
            return self.local_types.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self._type_of(node.value)
            if base is None:
                return None
            for cq in self.table.mro(base):
                attr_type = self.table.classes[cq].attr_types.get(node.attr)
                if attr_type:
                    return attr_type
            return None
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted:
                qual = self._resolve(dotted, typed=True)
                if qual in self.table.classes:
                    return qual
        return None

    def _resolve(self, dotted: str, typed: bool = False) -> str:
        shadowed = () if typed else self.shadowed
        return self.table.canonicalize(
            self.table.resolve(self.func.module, dotted, shadowed)
            or dotted)

    # -- nondeterminism patterns ------------------------------------------

    def _check_ordering_key(self, call: ast.Call,
                            name: Optional[str]) -> None:
        """``sorted(xs, key=id)`` and friends: identity as an order."""
        is_sort = (name == "sorted"
                   or (isinstance(call.func, ast.Attribute)
                       and call.func.attr == "sort"))
        if not is_sort:
            return
        for keyword in call.keywords:
            if keyword.arg != "key":
                continue
            bad = None
            if (isinstance(keyword.value, ast.Name)
                    and keyword.value.id in ("id", "hash")):
                bad = keyword.value.id
            elif isinstance(keyword.value, ast.Lambda):
                for inner in ast.walk(keyword.value.body):
                    if (isinstance(inner, ast.Call)
                            and isinstance(inner.func, ast.Name)
                            and inner.func.id in ("id", "hash")):
                        bad = inner.func.id
                        break
            if bad:
                self.facts.sources.append(SourceEvent(
                    "id-ordering", f"sort key uses {bad}()", call.lineno))

    def _check_set_iteration(self, stmt) -> None:
        """``for x in {…} / set(…)``: iteration order is arbitrary."""
        it = stmt.iter
        is_set = isinstance(it, (ast.Set, ast.SetComp))
        if (isinstance(it, ast.Call) and isinstance(it.func, ast.Name)
                and it.func.id in ("set", "frozenset")):
            is_set = True
        if is_set:
            self.facts.sources.append(SourceEvent(
                "set-iteration", "iterating a set in order-sensitive code",
                stmt.lineno))

    # -- writes -----------------------------------------------------------

    def _check_writes(self, stmt) -> None:
        targets: List[Tuple[ast.AST, str]] = []
        if isinstance(stmt, ast.Assign):
            targets = [(t, "=") for t in stmt.targets]
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [(stmt.target, "=")]
        elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            self._check_mutator_call(stmt.value)
            return
        for target, op in targets:
            self._check_write_target(target, stmt.lineno)

    def _check_write_target(self, target, lineno: int) -> None:
        if isinstance(target, ast.Attribute):
            base_dotted = _dotted(target.value)
            if base_dotted is not None:
                self.facts.attr_stores.append(AttrStore(
                    base=base_dotted,
                    base_type=self._type_of(target.value),
                    attr=target.attr, line=lineno))
        if isinstance(target, ast.Name):
            if target.id in self.global_decls:
                var = self.module.globals_.get(target.id)
                qual = var.qual if var else f"{self.func.module}.{target.id}"
                self.facts.writes.append(WriteEvent(
                    qual, "global", f"assigns global '{target.id}'",
                    lineno))
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_write_target(element, lineno)
            return
        base, label = None, None
        if isinstance(target, ast.Attribute):
            base, label = target.value, f"attribute '.{target.attr}'"
        elif isinstance(target, ast.Subscript):
            base, label = target.value, "an item"
        if base is None:
            return
        owner = self._shared_owner(base)
        if owner is not None:
            qual, kind, name = owner
            self.facts.writes.append(WriteEvent(
                qual, kind, f"writes {label} of {kind} '{name}'", lineno))

    def _check_mutator_call(self, call: ast.Call) -> None:
        if not (isinstance(call.func, ast.Attribute)
                and call.func.attr in MUTATOR_METHODS):
            return
        owner = self._shared_owner(call.func.value)
        if owner is not None:
            qual, kind, name = owner
            self.facts.writes.append(WriteEvent(
                qual, kind, f"calls .{call.func.attr}() on {kind} '{name}'",
                call.lineno))

    def _shared_owner(self, node) -> Optional[Tuple[str, str, str]]:
        """(qual, kind, display name) when node denotes shared state."""
        dotted = _dotted(node)
        if dotted is None:
            return None
        head = dotted.split(".")[0]
        if head in self.shadowed or head in ("self", "cls"):
            return None
        resolved = self.table.canonicalize(
            self.table.resolve(self.func.module, dotted, self.shadowed)
            or "")
        if not resolved:
            return None
        if resolved in self.table.globals_:
            return resolved, "global", dotted
        head_resolved, _, attr = resolved.rpartition(".")
        if head_resolved in self.table.globals_:
            return head_resolved, "global", dotted.split(".")[0]
        if resolved in self.table.classes or (
                head_resolved in self.table.classes and attr):
            qual = resolved if resolved in self.table.classes \
                else head_resolved
            return qual, "class-attr", dotted
        return None

    # -- dispatch ---------------------------------------------------------

    def _check_dispatch(self, call: ast.Call, name: Optional[str],
                        callees: Set[str]) -> None:
        # pool.starmap(fn, ...), pool.apply_async(fn, ...)
        if (isinstance(call.func, ast.Attribute)
                and call.func.attr in DISPATCH_ATTRS and call.args):
            self._record_dispatch_arg(call.args[0], via=call.func.attr,
                                      channel="pool", line=call.lineno)
        # Process(target=fn)
        if name and name.split(".")[-1] == "Process":
            for keyword in call.keywords:
                if keyword.arg == "target":
                    self._record_dispatch_arg(
                        keyword.value, via="Process", channel="process",
                        line=call.lineno)
        # fn passed by (keyword or positional) dispatch-named parameter
        # into a known project function or dataclass constructor
        params = self._callee_params(callees, name)
        if params:
            callee = name if name in self.table.classes else (
                min(callees) if callees else name)
            for index, arg in enumerate(call.args):
                if (index < len(params)
                        and params[index] in DISPATCH_PARAM_NAMES):
                    self._record_dispatch_arg(
                        arg, via=params[index], channel="param",
                        line=call.lineno, callee=callee)
            for keyword in call.keywords:
                if keyword.arg in DISPATCH_PARAM_NAMES:
                    self._record_dispatch_arg(
                        keyword.value, via=keyword.arg, channel="param",
                        line=call.lineno, callee=callee)

    def _callee_params(self, callees: Set[str],
                       name: Optional[str]) -> Tuple[str, ...]:
        for qual in sorted(callees):
            info = self.table.functions.get(qual)
            if info is None:
                continue
            params = info.params
            if info.class_qual and params and params[0] in ("self", "cls"):
                params = params[1:]
            return params
        if name in self.table.classes:
            return self.table.classes[name].fields
        return ()

    def _record_dispatch_arg(self, node, via: str, channel: str,
                             line: int,
                             callee: Optional[str] = None) -> None:
        if isinstance(node, ast.Lambda):
            self.facts.dispatches.append(
                DispatchSite(None, "lambda", via, channel, line, callee))
            return
        dotted = _dotted(node)
        if dotted is None:
            return
        nested = f"{self.func.qual}.{dotted}"
        if nested in self.table.functions:
            self.facts.dispatches.append(
                DispatchSite(nested, "nested", via, channel, line, callee))
            return
        resolved = self.table.canonicalize(
            self.table.resolve(self.func.module, dotted, self.shadowed)
            or "")
        if resolved in self.table.functions:
            info = self.table.functions[resolved]
            kind = "nested" if info.parent_qual else "function"
            self.facts.dispatches.append(
                DispatchSite(resolved, kind, via, channel, line, callee))


def _covered(name: str, caught: FrozenSet[str]) -> bool:
    """Is an exception of this name caught by the surrounding handlers?"""
    return (name in caught or "Exception" in caught
            or "BaseException" in caught
            or (name == "SanitizerError" and "AssertionError" in caught))


def _pruned_walk(node, skip_root_def: bool = False) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested definitions.

    Lambda bodies ARE descended into: a lambda has no graph node of
    its own, so its calls conservatively belong to the enclosing
    function.
    """
    stack = [node]
    first = True
    while stack:
        current = stack.pop()
        if not (first and skip_root_def):
            yield current
        first = False
        for child in ast.iter_child_nodes(current):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                continue
            stack.append(child)
