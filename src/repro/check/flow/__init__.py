"""Whole-program flow analysis for reprolint (docs/FLOWCHECK.md).

Layers a project-wide symbol table, a class-hierarchy-aware call
graph, and interprocedural fixpoints on top of the per-file lint
framework, powering the ``--deep`` rules: ``determinism-taint``,
``shared-state-race``, and ``exception-escape``.  See docs/FLOWCHECK.md
for the engine design, the source/sink/boundary tables, and the
annotation + baseline workflow.
"""

from .engine import FlowProgram
from .rules import (DeterminismTaintRule, ExceptionEscapeRule, FlowRule,
                    SharedStateRaceRule, flow_rule_ids)
from .symbols import SymbolTable, comment_tokens

__all__ = [
    "FlowProgram",
    "FlowRule",
    "DeterminismTaintRule",
    "SharedStateRaceRule",
    "ExceptionEscapeRule",
    "flow_rule_ids",
    "SymbolTable",
    "comment_tokens",
]
