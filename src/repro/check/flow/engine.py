"""Interprocedural fixpoints over the call graph (docs/FLOWCHECK.md).

:class:`FlowProgram` bundles one symbol table + call graph build and
exposes the three analyses the flow rules are written against:

* :meth:`propagate` — a label-set fixpoint along call edges, used both
  forward-from-sources and backward-into-sinks.  Functions annotated
  ``# flowcheck: boundary(reason)`` are *cuts*: labels never propagate
  through them, which is exactly the "audited seeded-RNG / provenance
  interface" escape hatch the determinism rule allows.
* :meth:`raises_fixpoint` — which tracked exception names may escape
  each function, seeded from local ``raise`` statements and widened
  through call sites minus each site's caught-handler set.
* :meth:`reachable_from` — forward closure used to find everything a
  multiprocessing worker can execute.

Everything is deterministic: functions are processed in sorted order
and all result sets are sorted before findings are minted.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set

from .callgraph import CallGraph, _covered
from .symbols import Annotation, SymbolTable


class FlowProgram:
    """One whole-program analysis context (symbols + call graph)."""

    def __init__(self, root: Path, files: Sequence[Path]) -> None:
        self.root = Path(root)
        self.table = SymbolTable.build(self.root, files)
        self.graph = CallGraph(self.table)
        self._boundaries: Optional[Set[str]] = None

    # -- boundaries -------------------------------------------------------

    @property
    def boundaries(self) -> Set[str]:
        """Function quals annotated ``# flowcheck: boundary(...)``."""
        if self._boundaries is None:
            out: Set[str] = set()
            for qual, info in self.table.functions.items():
                note = self.table.annotation_at(
                    info.relpath, info.lineno, "boundary")
                if note is not None:
                    note.consumed = True
                    out.add(qual)
            self._boundaries = out
        return self._boundaries

    # -- generic label propagation ----------------------------------------

    def propagate(self, own: Dict[str, Set[str]],
                  cut: Iterable[str] = ()) -> Dict[str, Set[str]]:
        """Fixpoint: reach[f] = own[f] ∪ ⋃ reach[callee of f].

        Functions in ``cut`` always map to the empty set — nothing
        inside them is visible from their callers.
        """
        cut_set = set(cut)
        reach: Dict[str, Set[str]] = {
            qual: set() if qual in cut_set else set(own.get(qual, ()))
            for qual in self.graph.facts}
        changed = True
        while changed:
            changed = False
            for qual in sorted(self.graph.facts):
                if qual in cut_set:
                    continue
                bucket = reach[qual]
                before = len(bucket)
                for callee in self.graph.callees(qual):
                    bucket.update(reach.get(callee, ()))
                if len(bucket) != before:
                    changed = True
        return reach

    def witness_path(self, start: str, goal_labels: Set[str],
                     own: Dict[str, Set[str]],
                     reach: Dict[str, Set[str]]) -> List[str]:
        """A deterministic call chain from ``start`` to a function whose
        *own* labels intersect the goal — for human-readable messages."""
        if own.get(start, set()) & goal_labels:
            return [start]
        seen = {start}
        frontier = [[start]]
        while frontier:
            path = frontier.pop(0)
            for callee in sorted(self.graph.callees(path[-1])):
                if callee in seen:
                    continue
                seen.add(callee)
                if not (reach.get(callee, set()) & goal_labels):
                    continue
                extended = path + [callee]
                if own.get(callee, set()) & goal_labels:
                    return extended
                frontier.append(extended)
        return [start]

    # -- exception escape -------------------------------------------------

    def raises_fixpoint(self,
                        tracked: Sequence[str]) -> Dict[str, Set[str]]:
        """Which tracked exception names may escape each function.

        Only proof-grade call edges participate — sites resolved by
        name-only CHA (``via_cha``) are skipped, so an unlucky method
        name cannot fabricate an escape path.
        """
        tracked_set = set(tracked)
        raises: Dict[str, Set[str]] = {}
        for qual, facts in self.graph.facts.items():
            raises[qual] = {event.name for event in facts.raises_
                            if event.name in tracked_set}
        changed = True
        while changed:
            changed = False
            for qual in sorted(self.graph.facts):
                bucket = raises[qual]
                before = len(bucket)
                for call in self.graph.facts[qual].calls:
                    if call.via_cha:
                        continue
                    for callee in call.callees:
                        for name in raises.get(callee, ()):
                            if not _covered(name, call.caught):
                                bucket.add(name)
                if len(bucket) != before:
                    changed = True
        return raises

    # -- worker reachability ----------------------------------------------

    def dispatch_roots(self) -> Dict[str, str]:
        """Function qual -> description of the dispatch that roots it."""
        roots: Dict[str, str] = {}
        for qual in sorted(self.graph.facts):
            info = self.table.functions[qual]
            for site in self.graph.facts[qual].dispatches:
                if site.target and site.target not in roots:
                    roots[site.target] = (
                        f"{info.relpath}:{site.line} via {site.via}")
        return roots

    def reachable_from(self, roots: Iterable[str]) -> Dict[str, str]:
        """Forward closure; maps each reached function to its root."""
        out: Dict[str, str] = {}
        queue: List[str] = []
        for root in sorted(set(roots)):
            if root in self.graph.facts and root not in out:
                out[root] = root
                queue.append(root)
        while queue:
            current = queue.pop(0)
            for callee in sorted(self.graph.callees(current)):
                if callee in self.graph.facts and callee not in out:
                    out[callee] = out[current]
                    queue.append(callee)
        return out

    # -- annotation bookkeeping -------------------------------------------

    def unconsumed_annotations(self) -> List[tuple]:
        """(relpath, Annotation) for every marker that waived nothing."""
        out = []
        for relpath in sorted(self.table.by_relpath):
            mod = self.table.by_relpath[relpath]
            for line in sorted(mod.annotations):
                note: Annotation = mod.annotations[line]
                if not note.consumed:
                    out.append((relpath, note))
        return out

    # -- artifact ---------------------------------------------------------

    def dump_callgraph(self) -> dict:
        doc = self.graph.dump()
        doc["boundaries"] = sorted(self.boundaries)
        doc["dispatch_roots"] = self.dispatch_roots()
        return doc
